//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small subset of the `rand 0.8` API it actually uses: [`StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! not the upstream ChaCha12, but statistically strong and, crucially for
//! this workspace, fully deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` (subset of upstream).
pub trait SeedableRng: Sized {
    /// Creates the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a standard-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the "standard" distribution (full-range integers,
/// unit-interval floats, fair bools).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * (unit_f64(rng.next_u64()) as f32)
    }
}

/// One SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce four
        // zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named-generator module mirroring upstream's layout.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000");
    }
}
