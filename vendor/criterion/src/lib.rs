//! Offline stand-in for `criterion`: a minimal wall-clock benchmarking
//! harness exposing the subset this workspace uses — `Criterion`,
//! `bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs `sample_size` samples after a short warmup and
//! reports the per-iteration mean and min over the samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds sampling configuration and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warmup: Duration::from_millis(300),
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warmup: self.warmup,
            target_sample_time: self.target_sample_time,
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration nanoseconds for each sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: run until the warmup budget elapses, counting iterations
        // to size each timed sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((self.target_sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

/// Prints one benchmark's summary line.
fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples: Bencher::iter was not called)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<48} mean {:>12} min {:>12} ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        samples.len()
    );
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmarks, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn harness_runs_a_benchmark() {
        let mut c = Criterion::default().sample_size(2);
        c.warmup = Duration::from_millis(1);
        c.target_sample_time = Duration::from_micros(100);
        tiny(&mut c);
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
