//! The JSON value model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A JSON number, kept in its native width so `u64`/`i64` round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative (or any signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(Num::U(u)) => Some(*u),
            JsonValue::Num(Num::I(i)) if *i >= 0 => Some(*i as u64),
            JsonValue::Num(Num::F(f)) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.8446744e19 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(Num::I(i)) => Some(*i),
            JsonValue::Num(Num::U(u)) => i64::try_from(*u).ok(),
            JsonValue::Num(Num::F(f)) if f.fract() == 0.0 && f.abs() < 9.2233720e18 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric width).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(Num::F(f)) => Some(*f),
            JsonValue::Num(Num::U(u)) => Some(*u as f64),
            JsonValue::Num(Num::I(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human name of the value's JSON type.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// Standard "expected X, got Y" error.
    pub fn expected(what: &str, got: &JsonValue) -> DeError {
        DeError(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserializes one struct field from an object, honoring `if_missing`
/// semantics for absent keys (used by the derive macro).
///
/// # Errors
///
/// When the value is not an object, or the field's value mismatches.
pub fn get_field<T: crate::Deserialize>(v: &JsonValue, name: &str) -> Result<T, DeError> {
    if !matches!(v, JsonValue::Object(_)) {
        return Err(DeError::expected("object", v));
    }
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        None => T::if_missing(name),
    }
}
