//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serde: instead of upstream's visitor-based data model, types
//! convert to and from an in-memory [`json::JsonValue`] tree. The public
//! surface the workspace relies on — `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}` — is source-compatible; everything
//! else is intentionally small.
//!
//! Representation choices mirror upstream `serde_json` where the workspace
//! can observe them:
//!
//! * structs → JSON objects; fields serializing to `null` (i.e. `None`) are
//!   omitted and tolerated when absent, so adding optional fields keeps old
//!   exports readable;
//! * unit enum variants → `"Variant"`; data variants → externally tagged
//!   `{"Variant": ...}`;
//! * `u64`/`i64` round-trip exactly (no `f64` detour).

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{DeError, JsonValue, Num};

/// Serialization into the JSON value model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> JsonValue;
}

/// Deserialization from the JSON value model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// When the value's shape does not match `Self`.
    fn from_value(v: &JsonValue) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent; `None` for `Option`
    /// fields (mirroring `#[serde(default)]` on optionals), an error for
    /// everything else.
    ///
    /// # Errors
    ///
    /// By default, a "missing field" error.
    fn if_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> JsonValue {
                JsonValue::Num(Num::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &JsonValue) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> JsonValue {
                JsonValue::Num(Num::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &JsonValue) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Num(Num::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        // JSON has no NaN/Infinity literal; they serialize as null.
        if matches!(v, JsonValue::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Num(Num::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> JsonValue {
        (**self).to_value()
    }
}

impl Serialize for JsonValue {
    fn to_value(&self) -> JsonValue {
        self.clone()
    }
}

impl Deserialize for JsonValue {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            JsonValue::Array(items) => Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn if_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn options_and_vectors() {
        let v: Option<u32> = None;
        assert!(matches!(v.to_value(), JsonValue::Null));
        assert_eq!(Option::<u32>::from_value(&JsonValue::Null).unwrap(), None);
        assert_eq!(Option::<u32>::if_missing("x").unwrap(), None);
        assert!(u32::if_missing("x").is_err());
        let xs = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[u64; 4]>::from_value(&a.to_value()).is_err());
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.to_value();
        let back = f64::from_value(&JsonValue::Null).unwrap();
        assert!(back.is_nan());
        // as_f64 on the NaN Num still yields NaN; printing is serde_json's job.
        assert!(v.as_f64().unwrap().is_nan());
    }
}
