//! Offline stand-in for `proptest`, covering the API surface this workspace
//! uses: value strategies (`any`, ranges, tuples, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::sample::select`, simple `".{a,b}"` string
//! patterns), the `proptest!` test macro and the `prop_assert*` family.
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! generated inputs and the case number so it can be reproduced (generation
//! is deterministic, seeded from the test name).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failed property check; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value from the given RNG.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T` (integers span the full
/// domain of the type; floats and bools are uniform).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )+};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between several strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// String strategies parsed from a small regex-like pattern language.
///
/// Supported patterns: `".{a,b}"` (between `a` and `b` arbitrary chars) and
/// `".*"` (up to 64 arbitrary chars). Anything else generates the pattern
/// itself verbatim.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = match parse_dot_repeat(self) {
            Some(bounds) => bounds,
            None if *self == ".*" => (0, 64),
            None => return (*self).to_string(),
        };
        let len = rng.gen_range(lo..=hi);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(arbitrary_char(rng));
        }
        out
    }
}

/// Parses `".{a,b}"` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A character mix tuned for fuzzing text pipelines: mostly printable
/// ASCII, some whitespace/control, occasionally an arbitrary scalar.
fn arbitrary_char(rng: &mut StdRng) -> char {
    match rng.gen_range(0..10u32) {
        0 => *['\n', '\t', '\r', '\0']
            .get(rng.gen_range(0..4usize))
            .unwrap(),
        1 => char::from_u32(rng.gen_range(0x80u32..0xD800)).unwrap_or('?'),
        _ => char::from(rng.gen_range(0x20u8..0x7F)),
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies sampling from explicit value sets.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// A uniform choice from the given (non-empty) items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod prop {
    //! Namespace mirror of the real crate's `prop` module.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs `body` for `config.cases` deterministic cases; panics on the first
/// failure. The RNG is seeded from the test name so failures reproduce.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// FNV-1a over bytes; the deterministic per-test seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A uniform choice between the given strategies (all producing the same
/// value type); expands to a [`Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one expansion per test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __args = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result.map_err(|e| {
                    $crate::TestCaseError(::std::format!("{}\n  inputs: {}", e.0, __args))
                })
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless both sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                l,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_domain() {
        let mut rng = super::StdRng::seed_from_u64(7);
        use super::{SeedableRng, Strategy};
        for _ in 0..200 {
            let v = (0u64..5000).generate(&mut rng);
            assert!(v < 5000);
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let _ = any::<i8>().generate(&mut rng);
        }
    }

    #[test]
    fn string_pattern_respects_bounds() {
        use super::{SeedableRng, Strategy};
        let mut rng = super::StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            xs in prop::collection::vec(1.0f64..10.0, 1..20),
            which in prop_oneof![any::<u8>().prop_map(|v| v as u64), 0u64..4],
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (1.0..10.0).contains(x)), "bad {:?}", xs);
            prop_assert_ne!(xs.len(), 0);
            prop_assert_eq!(which, which);
        }
    }
}
