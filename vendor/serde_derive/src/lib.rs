//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` crate.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input item is hand-parsed from its token tree into a small shape model
//! (named-field structs; enums with unit, tuple and struct variants), and
//! the impls are emitted as source strings. Generic types and serde
//! attributes are intentionally unsupported — the workspace does not use
//! them, and hand-written impls cover the few custom layouts (e.g. the
//! telemetry event stream's flat tagging).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Fields of a struct or struct variant.
type Fields = Vec<String>;

enum Shape {
    Struct(Fields),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Fields),
}

/// Derives `serde::Serialize` for plain structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` for plain structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (#[...], including doc comments) and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` possibly followed by a `(crate)`-style group.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
            }
            other => panic!("serde_derive: unexpected token {other:?} before struct/enum"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    let body = tokens.next();
    let shape = if kind == "struct" {
        match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        }
    } else {
        match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        }
    };
    (name, shape)
}

/// Parses `{ attrs* vis? name : Type , ... }` field lists into field names,
/// skipping type tokens (tracking `<`/`>` depth so commas inside generics
/// don't split fields; bracketed types like `[u64; 8]` arrive as one group).
fn parse_named_fields(stream: TokenStream) -> Fields {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    } else {
                        break s;
                    }
                }
                other => panic!("serde_derive: unexpected field token {other:?}"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Counts comma-separated items at angle-bracket depth zero (tuple fields).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match tokens.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                other => panic!("serde_derive: unexpected variant token {other:?}"),
            }
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_items(g.stream());
                tokens.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                panic!("serde_derive (vendored): explicit discriminants are not supported");
            }
        }
        variants.push(Variant { name, kind });
    }
}

// ------------------------------------------------------------- generation

fn obj_push(fields: &Fields, access: impl Fn(&str) -> String) -> String {
    let mut body =
        String::from("let mut __fields: Vec<(String, ::serde::json::JsonValue)> = Vec::new();\n");
    for f in fields {
        body.push_str(&format!(
            "let __v = ::serde::Serialize::to_value({});\n\
             if !__v.is_null() {{ __fields.push((\"{f}\".to_string(), __v)); }}\n",
            access(f)
        ));
    }
    body.push_str("::serde::json::JsonValue::Object(__fields)");
    body
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => obj_push(fields, |f| format!("&self.{f}")),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            if *n == 1 {
                items[0].clone()
            } else {
                format!(
                    "::serde::json::JsonValue::Array(vec![{}])",
                    items.join(", ")
                )
            }
        }
        Shape::UnitStruct => "::serde::json::JsonValue::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::JsonValue::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::json::JsonValue::Array(vec![{}])",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::json::JsonValue::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inner = obj_push(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let __inner = {{ {inner} }};\n\
                             ::serde::json::JsonValue::Object(vec![(\"{vn}\".to_string(), __inner)]) }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::JsonValue {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::json::get_field(__v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::json::JsonValue::Array(__items) if __items.len() == {n} =>\n\
                             Ok({name}({})),\n\
                         __other => Err(::serde::json::DeError::expected(\"{n}-element array\", __other)),\n\
                     }}",
                    gets.join(", ")
                )
            }
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))")
                        } else {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match __inner {{\n\
                                     ::serde::json::JsonValue::Array(__items) if __items.len() == {n} =>\n\
                                         Ok({name}::{vn}({})),\n\
                                     __other => Err(::serde::json::DeError::expected(\"{n}-element array\", __other)),\n\
                                 }}",
                                gets.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {{ {build} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::json::get_field(__inner, \"{f}\")?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::json::JsonValue::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::json::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::json::JsonValue::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => Err(::serde::json::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::json::DeError::expected(\"{name} variant\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::json::JsonValue) -> Result<Self, ::serde::json::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
