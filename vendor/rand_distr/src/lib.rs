//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait plus [`Normal`] and [`LogNormal`]
//! (the only distributions this workspace samples), generated with the
//! Box-Muller transform for seed-deterministic output.

use rand::Rng;

/// Types that can sample values of type `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Draws one standard-normal variate via Box-Muller (two uniforms per draw;
/// no caching, so the consumed stream length is deterministic per sample).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > 0.0 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// If `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    mu: T,
    sigma: T,
}

impl LogNormal<f64> {
    /// Creates a log-normal distribution with the given parameters of the
    /// underlying normal.
    ///
    /// # Errors
    ///
    /// If `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !sigma.is_finite() || sigma < 0.0 || !mu.is_finite() {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Normal::new(10.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LogNormal::new(0.0, 0.035).unwrap();
        let mut xs: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|x| *x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
