//! Offline vendored stand-in for `serde_json`: a strict JSON parser and
//! printer over the vendored `serde` value model.
//!
//! Covers the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Error`] and [`Result`]. Numbers are
//! printed from their native width (`u64`/`i64` exactly; `f64` via Rust's
//! shortest round-trip formatting) and non-finite floats serialize as
//! `null`, matching upstream's lossy-float behavior closely enough for the
//! workspace's measurement exports.

use std::fmt;

pub use serde::json::JsonValue as Value;
use serde::json::{DeError, JsonValue, Num};
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.to_string())
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never in practice; the signature matches upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Never in practice; the signature matches upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Malformed JSON, or a shape mismatch against `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document().map_err(Error)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------ printing

fn write_value(v: &JsonValue, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Num(Num::U(u)) => out.push_str(&u.to_string()),
        JsonValue::Num(Num::I(i)) => out.push_str(&i.to_string()),
        JsonValue::Num(Num::F(f)) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Ensure floats stay floats across a round-trip.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        JsonValue::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> std::result::Result<JsonValue, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing characters at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<JsonValue, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                loop {
                    if self.peek() != Some(b'"') {
                        return Err(format!("expected object key at byte {}", self.pos));
                    }
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_keyword(
        &mut self,
        kw: &str,
        value: JsonValue,
    ) -> std::result::Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, String> {
        self.skip_ws();
        self.pos += 1; // opening quote, checked by caller
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                                } else {
                                    return Err("lone surrogate".to_string());
                                }
                            } else {
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            }
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input came from &str, so it
                    // is valid UTF-8).
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8")?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> std::result::Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
        u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())
    }

    fn parse_number(&mut self) -> std::result::Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::Num(Num::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Num(Num::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| JsonValue::Num(Num::F(f)))
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn u64_extremes_round_trip_exactly() {
        let v = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn vectors_and_options() {
        let xs = vec![1.5f64, 2.0, -0.25];
        let s = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), xs);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let xs = vec![vec![1.0f64, 2.0], vec![3.0]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), xs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<Vec<f64>>("[1 2]").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
