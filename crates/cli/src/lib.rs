//! Library backing the `rigor` command-line tool: argument parsing and the
//! implementation of every subcommand, separated from `main.rs` so the whole
//! surface is unit-testable.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, GlobalOpts, ParseError};

/// Runs the CLI with the given arguments (exclusive of the program name).
/// Returns the process exit code.
pub fn run(argv: &[String]) -> i32 {
    let parsed = match parse_args(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `rigor help` for usage");
            return 2;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
