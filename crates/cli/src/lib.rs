//! Library backing the `rigor` command-line tool: argument parsing and the
//! implementation of every subcommand, separated from `main.rs` so the whole
//! surface is unit-testable.

pub mod args;
pub mod commands;
pub mod error;

pub use args::{parse_args, Command, GlobalOpts, ParseError};
pub use error::CliError;

/// Runs the CLI with the given arguments (exclusive of the program name).
/// Returns the process exit code ([`CliError::exit_code`]: usage errors
/// exit 2, runtime errors exit 1).
pub fn run(argv: &[String]) -> i32 {
    let result = parse_args(argv)
        .map_err(CliError::from)
        .and_then(|parsed| commands::dispatch(&parsed));
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("run `rigor help` for usage");
            }
            e.exit_code()
        }
    }
}
