//! Implementation of the CLI subcommands.

use std::fs;
use std::sync::Arc;

use minipy::{Session, VmConfig};
use rigor::{
    compare, compare_suite, fmt_ci, fmt_ns, precision_of, sparkline, ExperimentConfig,
    ExperimentEvent, ExperimentObserver, JsonlTraceObserver, ProgressObserver, SteadyStateDetector,
    Table, WarmupClassifier,
};
use rigor_workloads::{characterize, find, suite, Workload};

use crate::args::{Command, GlobalOpts, USAGE};
use crate::error::{io_err, CliError};

type CliResult = Result<(), CliError>;

/// Dispatches a parsed command.
pub fn dispatch(parsed: &(Command, GlobalOpts)) -> CliResult {
    let (command, opts) = parsed;
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::List => cmd_list(),
        Command::Characterize { benchmark } => cmd_characterize(benchmark, opts),
        Command::Measure { benchmark } => cmd_measure(benchmark, opts),
        Command::Compare { benchmark } => cmd_compare(benchmark, opts),
        Command::Suite => cmd_suite(opts),
        Command::Warmup { benchmark } => cmd_warmup(benchmark, opts),
        Command::Run { path } => cmd_run(path, opts),
        Command::Disasm { path } => cmd_disasm(path),
        Command::TraceSummary { path } => cmd_trace_summary(path),
    }
}

fn lookup(benchmark: &str) -> Result<Workload, CliError> {
    find(benchmark).ok_or_else(|| CliError::UnknownBenchmark(benchmark.to_string()))
}

fn experiment_config(opts: &GlobalOpts) -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(opts.invocations)
        .with_iterations(opts.iterations)
        .with_size(opts.size)
        .with_seed(opts.seed)
        .with_engine(opts.engine)
        .with_confidence(opts.confidence)
}

/// Builds the observer set the flags ask for: `--progress` (unless
/// `--quiet`) and `--trace <path>`. The same observers are shared across
/// every experiment of a command, so a suite run streams one trace.
fn observers(opts: &GlobalOpts) -> Result<Vec<Arc<dyn ExperimentObserver>>, CliError> {
    let mut out: Vec<Arc<dyn ExperimentObserver>> = Vec::new();
    if opts.progress && !opts.quiet {
        out.push(Arc::new(ProgressObserver::new()));
    }
    if let Some(path) = &opts.trace {
        let obs = JsonlTraceObserver::create(std::path::Path::new(path)).map_err(io_err(path))?;
        out.push(Arc::new(obs));
    }
    Ok(out)
}

/// Measures one workload with the given observers attached.
fn measure_observed(
    workload: &Workload,
    cfg: &ExperimentConfig,
    observers: &[Arc<dyn ExperimentObserver>],
) -> Result<rigor::BenchmarkMeasurement, CliError> {
    let mut runner = rigor::Runner::new(cfg.clone());
    for obs in observers {
        runner = runner.observer(obs.clone());
    }
    Ok(runner.measure(workload)?)
}

fn export(opts: &GlobalOpts, measurements: &[rigor::BenchmarkMeasurement]) -> CliResult {
    if let Some(path) = &opts.json_out {
        fs::write(path, rigor::to_json(measurements)?).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    if let Some(path) = &opts.csv_out {
        fs::write(path, rigor::to_csv(measurements)).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_list() -> CliResult {
    let mut table = Table::new(vec!["benchmark", "category", "description"]);
    for w in suite() {
        table.row(vec![w.name, w.category.label(), w.description]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_characterize(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let c = characterize(&w, opts.size, opts.seed)?;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "bytecodes / iteration".to_string(),
        format!("{:.0}", c.bytecodes_per_iter),
    ]);
    table.row(vec![
        "arith fraction".to_string(),
        format!("{:.1}%", c.arith_frac * 100.0),
    ]);
    table.row(vec![
        "stack fraction".to_string(),
        format!("{:.1}%", c.stack_frac * 100.0),
    ]);
    table.row(vec![
        "name fraction".to_string(),
        format!("{:.1}%", c.name_frac * 100.0),
    ]);
    table.row(vec![
        "memory fraction".to_string(),
        format!("{:.1}%", c.memory_frac * 100.0),
    ]);
    table.row(vec![
        "branch fraction".to_string(),
        format!("{:.1}%", c.branch_frac * 100.0),
    ]);
    table.row(vec![
        "call fraction".to_string(),
        format!("{:.1}%", c.call_frac * 100.0),
    ]);
    table.row(vec![
        "allocations / iteration".to_string(),
        format!("{:.0}", c.allocations_per_iter),
    ]);
    table.row(vec![
        "dict probes / iteration".to_string(),
        format!("{:.0}", c.dict_probes_per_iter),
    ]);
    table.row(vec![
        "calls / iteration".to_string(),
        format!("{:.0}", c.calls_per_iter),
    ]);
    table.row(vec![
        "back-edges / iteration".to_string(),
        format!("{:.0}", c.backedges_per_iter),
    ]);
    table.row(vec!["startup time".to_string(), fmt_ns(c.startup_ns)]);
    table.row(vec![
        "iteration time (interp)".to_string(),
        fmt_ns(c.iter_ns_interp),
    ]);
    println!("{} ({})\n{table}", c.name, c.category);
    Ok(())
}

fn cmd_measure(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let obs = observers(opts)?;
    let m = measure_observed(&w, &cfg, &obs)?;
    let det = SteadyStateDetector::default();
    println!(
        "{} on {}: {} invocations x {} iterations",
        w.name,
        cfg.engine.name(),
        m.n_invocations(),
        m.n_iterations()
    );
    match precision_of(&m, &det, opts.confidence) {
        (Some(ci), Some(rel)) => println!(
            "steady-state mean: {} [{}, {}] at {:.0}% confidence (+/-{:.2}%)",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper),
            opts.confidence * 100.0,
            rel * 100.0
        ),
        _ => println!("no steady state reached — report the series, not a number"),
    }
    if let Some(ci) = rigor_stats::mean_ci(&m.startup_times(), opts.confidence) {
        println!(
            "startup (compile + module setup): {} [{}, {}]",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper)
        );
    }
    export(opts, std::slice::from_ref(&m))
}

fn cmd_compare(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let base = measure_observed(&w, &interp_cfg, &obs)?;
    let cand = measure_observed(&w, &jit_cfg, &obs)?;
    let result = compare(
        &base,
        &cand,
        &SteadyStateDetector::default(),
        opts.confidence,
    );
    if let Ok(r) = &result {
        println!(
            "{}: JIT speedup over interpreter: {}",
            w.name,
            fmt_ci(&r.speedup)
        );
        println!(
            "interp steady mean {} (from iter {}), jit {} (from iter {})",
            fmt_ns(r.base_mean_ns),
            r.base_steady_start,
            fmt_ns(r.cand_mean_ns),
            r.cand_steady_start
        );
        println!(
            "significant: {}   p = {:.2e}   Cohen's d = {:.1}",
            if r.significant { "yes" } else { "no" },
            r.p_value,
            r.effect_size
        );
    }
    // Export the raw measurements even when the comparison failed, then
    // surface the failure through the error path (exit 1).
    export(opts, &[base, cand])?;
    result.map(|_| ()).map_err(CliError::from)
}

fn cmd_suite(opts: &GlobalOpts) -> CliResult {
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let mut pairs = Vec::new();
    let mut all = Vec::new();
    for w in suite() {
        if !opts.quiet {
            eprintln!("measuring {} ...", w.name);
        }
        let base = measure_observed(&w, &interp_cfg, &obs)?;
        let cand = measure_observed(&w, &jit_cfg, &obs)?;
        all.push(base.clone());
        all.push(cand.clone());
        pairs.push((base, cand));
    }
    let s = compare_suite(&pairs, &SteadyStateDetector::default(), opts.confidence);
    let mut table = Table::new(vec!["benchmark", "JIT speedup", "significant"]);
    let mut sorted = s.per_benchmark.clone();
    sorted.sort_by(|a, b| {
        b.speedup
            .estimate
            .partial_cmp(&a.speedup.estimate)
            .expect("finite")
    });
    for r in &sorted {
        table.row(vec![
            r.benchmark.clone(),
            fmt_ci(&r.speedup),
            if r.significant { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{table}");
    for (name, e) in &s.failures {
        println!("not converged: {name}: {e}");
    }
    if let Some(g) = &s.geomean {
        println!("\ngeometric-mean speedup: {}", fmt_ci(g));
    }
    export(opts, &all)
}

fn cmd_warmup(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let m = measure_observed(&w, &cfg, &observers(opts)?)?;
    let classifier = WarmupClassifier::default();
    println!("{} on {}:", w.name, cfg.engine.name());
    for (i, series) in m.series().enumerate() {
        println!(
            "  inv {i}: {}  first {} last {}  [{}]",
            sparkline(series),
            fmt_ns(series[0]),
            fmt_ns(*series.last().expect("non-empty")),
            classifier.classify(series).label()
        );
    }
    for det in [
        SteadyStateDetector::cov_window(),
        SteadyStateDetector::changepoint(),
        SteadyStateDetector::robust_tail(),
    ] {
        let start = rigor::common_steady_start(m.series(), &det);
        println!(
            "  detector {:<12} steady from: {}",
            det.name(),
            start
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    export(opts, std::slice::from_ref(&m))
}

fn cmd_run(path: &str, opts: &GlobalOpts) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let mut vm_cfg = VmConfig {
        engine: opts.engine,
        ..VmConfig::default()
    };
    vm_cfg.capture_output = true;
    let mut session = Session::start(&source, opts.seed, vm_cfg)?;
    let stdout = session.vm_mut().take_stdout();
    print!("{stdout}");
    // If the module defines run(), time one iteration like the harness would.
    if session.vm().global("run").is_some() {
        let r = session.run_iteration()?;
        print!("{}", session.vm_mut().take_stdout());
        println!(
            "run() -> {}   [{} virtual, {} bytecodes]",
            session.render(r.value),
            fmt_ns(r.virtual_ns),
            r.counters.total_ops
        );
    }
    Ok(())
}

fn cmd_disasm(path: &str) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let program = minipy::compile(&source)?;
    print!("{program}");
    Ok(())
}

/// One slowest-iteration row kept while scanning a trace.
struct SlowIteration {
    benchmark: String,
    invocation: u32,
    iteration: u32,
    virtual_ns: f64,
    counters: rigor::IterationCounters,
}

/// Per-benchmark aggregates over a trace.
#[derive(Default)]
struct BenchmarkTotals {
    invocations: u32,
    failed: u32,
    iterations: u64,
    gc_cycles: u64,
    jit_compiles: u64,
    deopts: u64,
    virtual_ns: f64,
}

fn cmd_trace_summary(path: &str) -> CliResult {
    let text = fs::read_to_string(path).map_err(io_err(path))?;
    let events = rigor::parse_trace(&text).map_err(|e| CliError::Trace {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    if events.is_empty() {
        println!("{path}: empty trace");
        return Ok(());
    }

    // Event counts by kind, in stream order of first appearance.
    let mut kinds: Vec<(&'static str, u64)> = Vec::new();
    // Aggregates per benchmark, in order of first appearance.
    let mut totals: Vec<(String, BenchmarkTotals)> = Vec::new();
    let mut slowest: Vec<SlowIteration> = Vec::new();
    for ev in &events {
        match kinds.iter_mut().find(|(k, _)| *k == ev.name()) {
            Some((_, n)) => *n += 1,
            None => kinds.push((ev.name(), 1)),
        }
        let bench = ev.benchmark().to_string();
        let totals = match totals.iter_mut().find(|(b, _)| *b == bench) {
            Some((_, t)) => t,
            None => {
                totals.push((bench, BenchmarkTotals::default()));
                &mut totals.last_mut().expect("just pushed").1
            }
        };
        match ev {
            ExperimentEvent::IterationFinished {
                benchmark,
                invocation,
                iteration,
                virtual_ns,
                counters,
            } => {
                totals.iterations += 1;
                totals.gc_cycles += counters.gc_cycles;
                totals.jit_compiles += counters.jit_compiles;
                totals.deopts += counters.deopts;
                totals.virtual_ns += virtual_ns;
                slowest.push(SlowIteration {
                    benchmark: benchmark.clone(),
                    invocation: *invocation,
                    iteration: *iteration,
                    virtual_ns: *virtual_ns,
                    counters: *counters,
                });
                slowest.sort_by(|a, b| b.virtual_ns.partial_cmp(&a.virtual_ns).expect("finite"));
                slowest.truncate(5);
            }
            ExperimentEvent::InvocationFinished { error, .. } => {
                totals.invocations += 1;
                if error.is_some() {
                    totals.failed += 1;
                }
            }
            _ => {}
        }
    }

    let mut events_table = Table::new(vec!["event", "count"]).with_title("events");
    for (kind, n) in &kinds {
        events_table.row(vec![kind.to_string(), n.to_string()]);
    }
    println!("{events_table}");

    let mut bench_table = Table::new(vec![
        "benchmark",
        "invocations",
        "failed",
        "iterations",
        "gc cycles",
        "jit compiles",
        "deopts",
        "total time",
    ])
    .with_title("per-benchmark totals");
    for (bench, t) in &totals {
        bench_table.row(vec![
            bench.clone(),
            t.invocations.to_string(),
            t.failed.to_string(),
            t.iterations.to_string(),
            t.gc_cycles.to_string(),
            t.jit_compiles.to_string(),
            t.deopts.to_string(),
            fmt_ns(t.virtual_ns),
        ]);
    }
    println!("{bench_table}");

    if !slowest.is_empty() {
        let mut slow_table = Table::new(vec![
            "benchmark",
            "invocation",
            "iteration",
            "time",
            "gc",
            "jit",
            "deopts",
        ])
        .with_title("slowest iterations");
        for s in &slowest {
            slow_table.row(vec![
                s.benchmark.clone(),
                s.invocation.to_string(),
                s.iteration.to_string(),
                fmt_ns(s.virtual_ns),
                s.counters.gc_cycles.to_string(),
                s.counters.jit_compiles.to_string(),
                s.counters.deopts.to_string(),
            ]);
        }
        println!("{slow_table}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn list_and_help_run() {
        dispatch(&parse_args(&argv("list")).unwrap()).unwrap();
        dispatch(&parse_args(&argv("help")).unwrap()).unwrap();
    }

    #[test]
    fn characterize_runs() {
        dispatch(&parse_args(&argv("characterize sieve --size small")).unwrap()).unwrap();
    }

    #[test]
    fn measure_small_runs_and_exports() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("m.json");
        let cmd = format!(
            "measure leibniz -n 3 -i 10 --size small --json {}",
            json.display()
        );
        dispatch(&parse_args(&argv(&cmd)).unwrap()).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("leibniz"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let r = dispatch(&parse_args(&argv("measure nope")).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn run_and_disasm_a_minipy_file() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hello.mp");
        std::fs::write(&path, "print('hi')\ndef run():\n    return 41 + 1\n").unwrap();
        dispatch(&parse_args(&argv(&format!("run {}", path.display()))).unwrap()).unwrap();
        dispatch(&parse_args(&argv(&format!("disasm {}", path.display()))).unwrap()).unwrap();
    }
}
