//! Implementation of the CLI subcommands.

use std::fs;
use std::sync::Arc;
use std::time::Duration;

use minipy::{Session, VmConfig};
use rigor::{
    compare, compare_suite, compute_plan, fmt_ci, fmt_ns, precision_of, sparkline, CellEstimate,
    ExperimentConfig, ExperimentEvent, ExperimentObserver, FaultPlan, Journal, JsonlTraceObserver,
    PlannerConfig, ProgressObserver, SteadyStateDetector, Table, WarmupClassifier,
};
use rigor_serve::{ArchiveServer, RemoteStore, ServeError};
use rigor_store::{BaselineRef, ConfigFingerprint, RunRecord, Store};
use rigor_workloads::{characterize, find, suite, verify, Size, Workload};
use serde::json::JsonValue;
use serde::Serialize as _;

use crate::args::{Command, GlobalOpts, ParseError, USAGE};
use crate::error::{io_err, CliError};

type CliResult = Result<(), CliError>;

/// Dispatches a parsed command.
pub fn dispatch(parsed: &(Command, GlobalOpts)) -> CliResult {
    let (command, opts) = parsed;
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::List => cmd_list(),
        Command::Characterize { benchmark } => cmd_characterize(benchmark, opts),
        Command::Measure { benchmark } => cmd_measure(benchmark, opts),
        Command::Compare { benchmark } => cmd_compare(benchmark, opts),
        Command::Suite => cmd_suite(opts),
        Command::Warmup { benchmark } => cmd_warmup(benchmark, opts),
        Command::Run { path } => cmd_run(path, opts),
        Command::Disasm { path } => cmd_disasm(path),
        Command::TraceSummary { path } => cmd_trace_summary(path),
        Command::SelfTest => cmd_self_test(opts),
        Command::Archive { benchmark } => cmd_archive(benchmark.as_deref(), opts),
        Command::History { benchmark } => cmd_history(benchmark, opts),
        Command::Check { benchmark } => cmd_check(benchmark.as_deref(), opts),
        Command::Trend { benchmark } => cmd_trend(benchmark.as_deref(), opts),
        Command::Campaign => cmd_campaign(opts),
        Command::Plan => cmd_plan(opts),
        Command::Serve => cmd_serve(opts),
        Command::Verify => cmd_verify(opts),
    }
}

/// Serialize adapter for a borrowed raw [`JsonValue`] (the vendored serde
/// has no blanket impl on the value type itself).
struct RawJson<'a>(&'a JsonValue);

impl serde::Serialize for RawJson<'_> {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

fn lookup(benchmark: &str) -> Result<Workload, CliError> {
    Ok(rigor_workloads::lookup(benchmark)?)
}

/// Maps an invalid experiment shape onto the usage error surface (exit 2).
/// Argument parsing pre-validates the shape, so hitting this means a flag
/// combination slipped past that probe.
fn config_err(e: rigor::ConfigError) -> CliError {
    CliError::Usage(ParseError(e.to_string()))
}

fn experiment_config(opts: &GlobalOpts) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::interp()
        .with_invocations(opts.invocations)
        .with_iterations(opts.iterations)
        .with_size(opts.size)
        .with_seed(opts.seed)
        .with_engine(opts.engine)
        .with_confidence(opts.confidence);
    if let Some(d) = opts.deadline_ns {
        cfg = cfg.with_deadline_ns(d);
    }
    if let Some(f) = opts.fuel {
        cfg = cfg.with_step_budget(f);
    }
    if let Some(r) = opts.max_retries {
        cfg = cfg.with_max_retries(r);
    }
    if let Some(q) = opts.quarantine_threshold {
        cfg = cfg.with_quarantine_threshold(q);
    }
    cfg
}

/// `--journal`/`--resume` checkpoint a *single* measurement, so only
/// `measure` supports them; other measuring commands reject the flags
/// rather than silently ignoring them.
fn reject_checkpoint_flags(opts: &GlobalOpts, command: &str) -> Result<(), CliError> {
    if opts.journal.is_some() || opts.resume.is_some() {
        return Err(CliError::Usage(ParseError(format!(
            "--journal/--resume only apply to `measure`, not `{command}`"
        ))));
    }
    Ok(())
}

/// Prints a one-line fault summary to stderr when a measurement had
/// censored invocations (suite/compare context, where the full per-slot
/// detail of `measure` would be noise).
fn note_faults(m: &rigor::BenchmarkMeasurement, quiet: bool) {
    if quiet || m.censored.is_empty() {
        return;
    }
    eprintln!(
        "note: {} on {}: {} of {} invocations censored{}",
        m.benchmark,
        m.engine,
        m.censored.len(),
        m.n_requested(),
        if m.quarantined {
            " — QUARANTINED"
        } else {
            ""
        }
    );
}

/// Builds the observer set the flags ask for: `--progress` (unless
/// `--quiet`) and `--trace <path>`. The same observers are shared across
/// every experiment of a command, so a suite run streams one trace.
fn observers(opts: &GlobalOpts) -> Result<Vec<Arc<dyn ExperimentObserver>>, CliError> {
    let mut out: Vec<Arc<dyn ExperimentObserver>> = Vec::new();
    if opts.progress && !opts.quiet {
        out.push(Arc::new(ProgressObserver::new()));
    }
    if let Some(path) = &opts.trace {
        let obs = JsonlTraceObserver::create(std::path::Path::new(path)).map_err(io_err(path))?;
        out.push(Arc::new(obs));
    }
    Ok(out)
}

/// Measures one workload with the given observers attached.
fn measure_observed(
    workload: &Workload,
    cfg: &ExperimentConfig,
    observers: &[Arc<dyn ExperimentObserver>],
) -> Result<rigor::BenchmarkMeasurement, CliError> {
    let mut runner = rigor::Runner::new(cfg.clone()).map_err(config_err)?;
    for obs in observers {
        runner = runner.observer(obs.clone());
    }
    Ok(runner.measure(workload)?)
}

fn export(opts: &GlobalOpts, measurements: &[rigor::BenchmarkMeasurement]) -> CliResult {
    if let Some(path) = &opts.json_out {
        fs::write(path, rigor::to_json(measurements)?).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    if let Some(path) = &opts.csv_out {
        fs::write(path, rigor::to_csv(measurements)).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_list() -> CliResult {
    let mut table = Table::new(vec!["benchmark", "category", "description"]);
    for w in suite() {
        table.row(vec![w.name, w.category.label(), w.description]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_characterize(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let c = characterize(&w, opts.size, opts.seed)?;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "bytecodes / iteration".to_string(),
        format!("{:.0}", c.bytecodes_per_iter),
    ]);
    table.row(vec![
        "arith fraction".to_string(),
        format!("{:.1}%", c.arith_frac * 100.0),
    ]);
    table.row(vec![
        "stack fraction".to_string(),
        format!("{:.1}%", c.stack_frac * 100.0),
    ]);
    table.row(vec![
        "name fraction".to_string(),
        format!("{:.1}%", c.name_frac * 100.0),
    ]);
    table.row(vec![
        "memory fraction".to_string(),
        format!("{:.1}%", c.memory_frac * 100.0),
    ]);
    table.row(vec![
        "branch fraction".to_string(),
        format!("{:.1}%", c.branch_frac * 100.0),
    ]);
    table.row(vec![
        "call fraction".to_string(),
        format!("{:.1}%", c.call_frac * 100.0),
    ]);
    table.row(vec![
        "allocations / iteration".to_string(),
        format!("{:.0}", c.allocations_per_iter),
    ]);
    table.row(vec![
        "dict probes / iteration".to_string(),
        format!("{:.0}", c.dict_probes_per_iter),
    ]);
    table.row(vec![
        "calls / iteration".to_string(),
        format!("{:.0}", c.calls_per_iter),
    ]);
    table.row(vec![
        "back-edges / iteration".to_string(),
        format!("{:.0}", c.backedges_per_iter),
    ]);
    table.row(vec!["startup time".to_string(), fmt_ns(c.startup_ns)]);
    table.row(vec![
        "iteration time (interp)".to_string(),
        fmt_ns(c.iter_ns_interp),
    ]);
    println!("{} ({})\n{table}", c.name, c.category);
    Ok(())
}

fn cmd_measure(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let mut runner = rigor::Runner::new(cfg.clone()).map_err(config_err)?;
    for obs in observers(opts)? {
        runner = runner.observer(obs);
    }
    if let Some(path) = &opts.journal {
        runner = runner.journal(path.as_str());
    }
    if let Some(path) = &opts.resume {
        let journal = Journal::load(std::path::Path::new(path)).map_err(io_err(path))?;
        if journal.truncated && !opts.quiet {
            eprintln!("note: {path}: final journal line was truncated; ignoring it");
        }
        if !opts.quiet {
            eprintln!(
                "resuming from {path}: {} of {} invocations already journaled",
                journal.completed(),
                cfg.invocations
            );
        }
        runner = runner.resume(journal);
    }
    let m = runner.measure(&w)?;
    let det = SteadyStateDetector::default();
    println!(
        "{} on {}: {} invocations x {} iterations",
        w.name,
        cfg.engine.name(),
        m.n_invocations(),
        m.n_iterations()
    );
    match precision_of(&m, &det, opts.confidence) {
        (Some(ci), Some(rel)) => println!(
            "steady-state mean: {} [{}, {}] at {:.0}% confidence (+/-{:.2}%)",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper),
            opts.confidence * 100.0,
            rel * 100.0
        ),
        _ => println!("no steady state reached — report the series, not a number"),
    }
    if let Some(ci) = rigor_stats::mean_ci(&m.startup_times(), opts.confidence) {
        println!(
            "startup (compile + module setup): {} [{}, {}]",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper)
        );
    }
    if m.n_retried() > 0 {
        println!(
            "retried: {} invocations needed more than one attempt",
            m.n_retried()
        );
    }
    if !m.censored.is_empty() {
        println!(
            "censored: {} of {} invocations failed every attempt ({:.0}%)",
            m.censored.len(),
            m.n_requested(),
            m.censoring_rate() * 100.0
        );
        for c in &m.censored {
            println!(
                "  inv {}: {} after {} attempt(s): {}",
                c.invocation, c.failure, c.attempts, c.error
            );
        }
    }
    export(opts, std::slice::from_ref(&m))?;
    if m.quarantined {
        // The report and exports above still happened — quarantine is a
        // trust verdict on the numbers, surfaced as exit code 1.
        return Err(CliError::Quarantined {
            benchmark: w.name.to_string(),
            censored: m.censored.len() as u32,
            invocations: m.n_requested() as u32,
        });
    }
    Ok(())
}

fn cmd_compare(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "compare")?;
    let w = lookup(benchmark)?;
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let base = measure_observed(&w, &interp_cfg, &obs)?;
    let cand = measure_observed(&w, &jit_cfg, &obs)?;
    note_faults(&base, opts.quiet);
    note_faults(&cand, opts.quiet);
    let result = compare(
        &base,
        &cand,
        &SteadyStateDetector::default(),
        opts.confidence,
    );
    if let Ok(r) = &result {
        println!(
            "{}: JIT speedup over interpreter: {}",
            w.name,
            fmt_ci(&r.speedup)
        );
        println!(
            "interp steady mean {} (from iter {}), jit {} (from iter {})",
            fmt_ns(r.base_mean_ns),
            r.base_steady_start,
            fmt_ns(r.cand_mean_ns),
            r.cand_steady_start
        );
        println!(
            "significant: {}   p = {:.2e}   Cohen's d = {:.1}",
            if r.significant { "yes" } else { "no" },
            r.p_value,
            r.effect_size
        );
    }
    // Export the raw measurements even when the comparison failed, then
    // surface the failure through the error path (exit 1).
    export(opts, &[base, cand])?;
    result.map(|_| ()).map_err(CliError::from)
}

fn cmd_suite(opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "suite")?;
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let mut pairs = Vec::new();
    let mut all = Vec::new();
    for w in suite() {
        if !opts.quiet {
            eprintln!("measuring {} ...", w.name);
        }
        let base = measure_observed(&w, &interp_cfg, &obs)?;
        let cand = measure_observed(&w, &jit_cfg, &obs)?;
        note_faults(&base, opts.quiet);
        note_faults(&cand, opts.quiet);
        all.push(base.clone());
        all.push(cand.clone());
        pairs.push((base, cand));
    }
    let s = compare_suite(&pairs, &SteadyStateDetector::default(), opts.confidence);
    let mut table = Table::new(vec!["benchmark", "JIT speedup", "significant"]);
    let mut sorted = s.per_benchmark.clone();
    sorted.sort_by(|a, b| {
        b.speedup
            .estimate
            .partial_cmp(&a.speedup.estimate)
            .expect("finite")
    });
    for r in &sorted {
        table.row(vec![
            r.benchmark.clone(),
            fmt_ci(&r.speedup),
            if r.significant { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{table}");
    for (name, e) in &s.failures {
        println!("not converged: {name}: {e}");
    }
    if let Some(g) = &s.geomean {
        println!("\ngeometric-mean speedup: {}", fmt_ci(g));
    }
    export(opts, &all)
}

fn cmd_warmup(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "warmup")?;
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let m = measure_observed(&w, &cfg, &observers(opts)?)?;
    note_faults(&m, opts.quiet);
    let classifier = WarmupClassifier::default();
    println!("{} on {}:", w.name, cfg.engine.name());
    for (i, series) in m.series().enumerate() {
        println!(
            "  inv {i}: {}  first {} last {}  [{}]",
            sparkline(series),
            fmt_ns(series[0]),
            fmt_ns(*series.last().expect("non-empty")),
            classifier.classify(series).label()
        );
    }
    for det in [
        SteadyStateDetector::cov_window(),
        SteadyStateDetector::changepoint(),
        SteadyStateDetector::robust_tail(),
    ] {
        let start = rigor::common_steady_start(m.series(), &det);
        println!(
            "  detector {:<12} steady from: {}",
            det.name(),
            start
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    export(opts, std::slice::from_ref(&m))
}

fn cmd_run(path: &str, opts: &GlobalOpts) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let mut vm_cfg = VmConfig {
        engine: opts.engine,
        ..VmConfig::default()
    };
    vm_cfg.capture_output = true;
    let mut session = Session::start(&source, opts.seed, vm_cfg)?;
    let stdout = session.vm_mut().take_stdout();
    print!("{stdout}");
    // If the module defines run(), time one iteration like the harness would.
    if session.vm().global("run").is_some() {
        let r = session.run_iteration()?;
        print!("{}", session.vm_mut().take_stdout());
        println!(
            "run() -> {}   [{} virtual, {} bytecodes]",
            session.render(r.value),
            fmt_ns(r.virtual_ns),
            r.counters.total_ops
        );
    }
    Ok(())
}

fn cmd_disasm(path: &str) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let program = minipy::compile(&source)?;
    print!("{program}");
    Ok(())
}

/// One slowest-iteration row kept while scanning a trace.
struct SlowIteration {
    benchmark: String,
    invocation: u32,
    iteration: u32,
    virtual_ns: f64,
    counters: rigor::IterationCounters,
}

/// Per-benchmark aggregates over a trace.
#[derive(Default)]
struct BenchmarkTotals {
    invocations: u32,
    failed: u32,
    iterations: u64,
    gc_cycles: u64,
    jit_compiles: u64,
    deopts: u64,
    virtual_ns: f64,
}

fn cmd_trace_summary(path: &str) -> CliResult {
    let text = fs::read_to_string(path).map_err(io_err(path))?;
    let parsed = rigor::parse_trace(&text).map_err(|e| CliError::Trace {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    if let Some(warning) = &parsed.warning {
        eprintln!("warning: {path}: {warning}");
    }
    let events = parsed.events;
    if events.is_empty() {
        println!("{path}: empty trace");
        return Ok(());
    }

    // Event counts by kind, in stream order of first appearance.
    let mut kinds: Vec<(&'static str, u64)> = Vec::new();
    // Aggregates per benchmark, in order of first appearance.
    let mut totals: Vec<(String, BenchmarkTotals)> = Vec::new();
    let mut slowest: Vec<SlowIteration> = Vec::new();
    for ev in &events {
        match kinds.iter_mut().find(|(k, _)| *k == ev.name()) {
            Some((_, n)) => *n += 1,
            None => kinds.push((ev.name(), 1)),
        }
        let bench = ev.benchmark().to_string();
        if bench.is_empty() {
            // Run-level events (run_archived, regression_checked) belong to
            // no benchmark; they are counted by kind above but would pollute
            // the per-benchmark table as an unnamed row.
            continue;
        }
        let totals = match totals.iter_mut().find(|(b, _)| *b == bench) {
            Some((_, t)) => t,
            None => {
                totals.push((bench, BenchmarkTotals::default()));
                &mut totals.last_mut().expect("just pushed").1
            }
        };
        match ev {
            ExperimentEvent::IterationFinished {
                benchmark,
                invocation,
                iteration,
                virtual_ns,
                counters,
            } => {
                totals.iterations += 1;
                totals.gc_cycles += counters.gc_cycles;
                totals.jit_compiles += counters.jit_compiles;
                totals.deopts += counters.deopts;
                totals.virtual_ns += virtual_ns;
                slowest.push(SlowIteration {
                    benchmark: benchmark.clone(),
                    invocation: *invocation,
                    iteration: *iteration,
                    virtual_ns: *virtual_ns,
                    counters: *counters,
                });
                slowest.sort_by(|a, b| b.virtual_ns.partial_cmp(&a.virtual_ns).expect("finite"));
                slowest.truncate(5);
            }
            ExperimentEvent::InvocationFinished { error, .. } => {
                totals.invocations += 1;
                if error.is_some() {
                    totals.failed += 1;
                }
            }
            _ => {}
        }
    }

    let mut events_table = Table::new(vec!["event", "count"]).with_title("events");
    for (kind, n) in &kinds {
        events_table.row(vec![kind.to_string(), n.to_string()]);
    }
    println!("{events_table}");

    let mut bench_table = Table::new(vec![
        "benchmark",
        "invocations",
        "failed",
        "iterations",
        "gc cycles",
        "jit compiles",
        "deopts",
        "total time",
    ])
    .with_title("per-benchmark totals");
    for (bench, t) in &totals {
        bench_table.row(vec![
            bench.clone(),
            t.invocations.to_string(),
            t.failed.to_string(),
            t.iterations.to_string(),
            t.gc_cycles.to_string(),
            t.jit_compiles.to_string(),
            t.deopts.to_string(),
            fmt_ns(t.virtual_ns),
        ]);
    }
    println!("{bench_table}");

    if !slowest.is_empty() {
        let mut slow_table = Table::new(vec![
            "benchmark",
            "invocation",
            "iteration",
            "time",
            "gc",
            "jit",
            "deopts",
        ])
        .with_title("slowest iterations");
        for s in &slowest {
            slow_table.row(vec![
                s.benchmark.clone(),
                s.invocation.to_string(),
                s.iteration.to_string(),
                fmt_ns(s.virtual_ns),
                s.counters.gc_cycles.to_string(),
                s.counters.jit_compiles.to_string(),
                s.counters.deopts.to_string(),
            ]);
        }
        println!("{slow_table}");
    }
    Ok(())
}

/// Opens the results archive, mapping store failures onto the CLI error
/// surface.
fn open_store(dir: &str) -> Result<Store, CliError> {
    Store::open(dir).map_err(store_err(dir))
}

/// Attaches the store directory to a store error.
fn store_err(dir: &str) -> impl Fn(rigor_store::StoreError) -> CliError + '_ {
    move |e| CliError::Store {
        path: dir.to_string(),
        message: e.to_string(),
    }
}

/// Attaches the service URL to a remote-client error.
fn remote_err(url: &str) -> impl Fn(rigor_serve::RemoteError) -> CliError + '_ {
    move |source| CliError::Remote {
        url: url.to_string(),
        source,
    }
}

/// The resilient client `--store-url` asks for, with the command's
/// observers attached so retry/breaker/spool telemetry lands in the same
/// trace as the measurements. No network traffic happens here.
fn remote_client(url: &str, opts: &GlobalOpts, obs: &[Arc<dyn ExperimentObserver>]) -> RemoteStore {
    let mut client = RemoteStore::connect(url).with_seed(opts.seed);
    if let Some(r) = opts.max_retries {
        client = client.with_retries(r);
    }
    for o in obs {
        client = client.with_observer(o.clone());
    }
    client
}

/// The workloads an optional benchmark argument selects: one, or the whole
/// suite.
fn selected_workloads(benchmark: Option<&str>) -> Result<Vec<Workload>, CliError> {
    match benchmark {
        Some(b) => Ok(vec![lookup(b)?]),
        None => Ok(suite()),
    }
}

/// Measures `workloads` under `cfg`, streaming progress names to stderr
/// when more than one is measured.
fn measure_all(
    workloads: &[Workload],
    cfg: &ExperimentConfig,
    obs: &[Arc<dyn ExperimentObserver>],
    quiet: bool,
) -> Result<Vec<rigor::BenchmarkMeasurement>, CliError> {
    let mut out = Vec::with_capacity(workloads.len());
    for w in workloads {
        if !quiet && workloads.len() > 1 {
            eprintln!("measuring {} ...", w.name);
        }
        let m = measure_observed(w, cfg, obs)?;
        note_faults(&m, quiet);
        out.push(m);
    }
    Ok(out)
}

/// `rigor serve`: host the shared archive service over the local store
/// until killed. Every archive-touching command accepts `--store-url` to
/// talk to it instead of a local directory.
fn cmd_serve(opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "serve")?;
    if opts.store_url.is_some() {
        return Err(CliError::Usage(ParseError(
            "`serve` hosts the local --store; --store-url does not apply".to_string(),
        )));
    }
    let server = ArchiveServer::bind(&opts.listen, &opts.store).map_err(|e| match e {
        ServeError::Store(e) => store_err(&opts.store)(e),
        e @ ServeError::Io { .. } => CliError::Store {
            path: opts.listen.clone(),
            message: e.to_string(),
        },
    })?;
    println!(
        "rigor-serve: archive {} on http://{} — PUT /runs, GET /history, POST /check, POST /trend",
        opts.store,
        server.handle().addr()
    );
    server.serve().map_err(|e| CliError::Store {
        path: opts.listen.clone(),
        message: e.to_string(),
    })
}

/// `rigor archive --verify`: integrity-scan the local archive without
/// measuring anything, locating every corrupt line by line number and
/// byte offset. Unlike `Store::open`, this works on a damaged archive —
/// exactly when a located damage report matters most.
fn cmd_verify_store(opts: &GlobalOpts) -> CliResult {
    if opts.store_url.is_some() {
        return Err(CliError::Usage(ParseError(
            "--verify scans the local --store directory (the server verifies its own archive)"
                .to_string(),
        )));
    }
    let report = Store::verify_dir(&opts.store).map_err(store_err(&opts.store))?;
    for c in &report.corrupt {
        println!("corrupt: {c}");
    }
    if report.torn_tail {
        println!("note: torn final line (interrupted append) — dropped on the next open");
    }
    println!(
        "verified {}: {} intact run(s), {} corrupt line(s)",
        opts.store,
        report.intact,
        report.corrupt.len()
    );
    if report.corrupt.is_empty() {
        Ok(())
    } else {
        Err(CliError::Verify {
            path: opts.store.clone(),
            corrupt: report.corrupt.len(),
        })
    }
}

/// `rigor archive [benchmark]`: measure and persist one fsynced,
/// content-addressed run record to the results archive (local directory
/// or, with `--store-url`, the shared archive service).
fn cmd_archive(benchmark: Option<&str>, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "archive")?;
    if opts.verify {
        return cmd_verify_store(opts);
    }
    let workloads = selected_workloads(benchmark)?;
    let cfg = experiment_config(opts);
    let obs = observers(opts)?;

    if let Some(url) = opts.store_url.as_deref() {
        // Fail before measuring: a one-shot archive against a dead server
        // should exit 1 immediately (`campaign` spools instead).
        let client = remote_client(url, opts, &obs);
        client.ping().map_err(remote_err(url))?;
        let measurements = measure_all(&workloads, &cfg, &obs, opts.quiet)?;
        let receipt = client
            .archive_run(opts.label.clone(), &cfg, measurements.clone())
            .map_err(remote_err(url))?;
        println!(
            "archived run {} (seq {}, {} benchmark(s), engine {}) to {url}",
            receipt.run_id.chars().take(12).collect::<String>(),
            receipt.seq,
            measurements.len(),
            cfg.engine.name(),
        );
        let event = ExperimentEvent::RunArchived {
            store: url.to_string(),
            run_id: receipt.run_id.clone(),
            seq: receipt.seq,
            benchmarks: measurements.len() as u32,
        };
        for o in &obs {
            o.on_event(&event);
        }
        return export(opts, &measurements);
    }

    let measurements = measure_all(&workloads, &cfg, &obs, opts.quiet)?;

    let mut store = open_store(&opts.store)?;
    if store.recovered_torn_tail() && !opts.quiet {
        eprintln!(
            "note: {}: recovered from a torn final line (interrupted append)",
            opts.store
        );
    }
    let record = store
        .append(opts.label.clone(), &cfg, measurements.clone())
        .map_err(store_err(&opts.store))?;
    println!(
        "archived run {} (seq {}, {} benchmark(s), engine {}) to {}",
        record.short_id(),
        record.seq,
        record.measurements.len(),
        cfg.engine.name(),
        opts.store
    );
    let event = ExperimentEvent::RunArchived {
        store: opts.store.clone(),
        run_id: record.id.clone(),
        seq: record.seq,
        benchmarks: record.measurements.len() as u32,
    };
    for o in &obs {
        o.on_event(&event);
    }
    export(opts, &measurements)
}

/// Builds the per-run history trend table over `runs`; returns the table
/// and how many runs measured `benchmark`.
fn history_table<'a>(
    runs: impl Iterator<Item = &'a RunRecord>,
    benchmark: &str,
    opts: &GlobalOpts,
    source: &str,
) -> (Table, usize) {
    let det = SteadyStateDetector::default();
    let mut table = Table::new(vec![
        "seq",
        "run",
        "label",
        "engine",
        "shape",
        "steady mean",
        "precision",
        "censored",
    ])
    .with_title(format!("history of {benchmark} in {source}"));
    let mut rows = 0usize;
    for r in runs {
        let Some(m) = r.benchmark(benchmark) else {
            continue;
        };
        let mean = match precision_of(m, &det, opts.confidence) {
            (Some(ci), _) => format!(
                "{} [{}, {}]",
                fmt_ns(ci.estimate),
                fmt_ns(ci.lower),
                fmt_ns(ci.upper)
            ),
            _ => "no steady state".to_string(),
        };
        table.row(vec![
            r.seq.to_string(),
            r.short_id().to_string(),
            r.label.clone().unwrap_or_default(),
            r.fingerprint.engine.clone(),
            format!(
                "{}x{} {}",
                r.fingerprint.invocations, r.fingerprint.iterations, r.fingerprint.size
            ),
            mean,
            // Adaptive-campaign cells carry their precision attainment;
            // fixed runs leave the column blank.
            match &r.precision {
                Some(p) => format!(
                    "{} @ n={} ({} +/-{:.1}%)",
                    p.rel_half_width
                        .map_or("no CI".to_string(), |rel| format!("+/-{:.2}%", rel * 100.0)),
                    p.invocations_used,
                    if p.target_met { "met" } else { "MISSED" },
                    p.target_rel_half_width * 100.0,
                ),
                None => String::new(),
            },
            if m.censored.is_empty() {
                String::new()
            } else {
                format!("{}/{}", m.censored.len(), m.n_requested())
            },
        ]);
        rows += 1;
    }
    (table, rows)
}

/// `rigor history <benchmark> --store-url`: the same trend table, fed from
/// the shared service. Every fetched line is integrity-checked locally.
fn cmd_history_remote(benchmark: &str, opts: &GlobalOpts, url: &str) -> CliResult {
    let obs = observers(opts)?;
    let client = remote_client(url, opts, &obs);
    let records = client.history(None).map_err(remote_err(url))?;
    let (table, rows) = history_table(records.iter(), benchmark, opts, url);
    if rows == 0 {
        println!(
            "no archived runs measure '{benchmark}' at {url} ({} run(s) archived)",
            records.len()
        );
        return Ok(());
    }
    println!("{table}");
    Ok(())
}

/// `rigor history <benchmark>`: trend table over the archived runs of one
/// benchmark, with per-run steady-state CIs.
fn cmd_history(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    if let Some(url) = opts.store_url.as_deref() {
        return cmd_history_remote(benchmark, opts, url);
    }
    let store = open_store(&opts.store)?;
    let (table, rows) = history_table(store.runs(), benchmark, opts, &opts.store);
    if rows == 0 {
        println!(
            "no archived runs measure '{benchmark}' in {} ({} run(s) archived)",
            opts.store,
            store.len()
        );
        return Ok(());
    }
    println!("{table}");
    // `--alerts` annotates the table with a changepoint analysis of this
    // one history. Informational only: unlike `rigor trend`, a detected
    // shift does not change the exit code.
    if opts.alerts {
        let det = SteadyStateDetector::default();
        let config = trend_config(opts);
        let points = rigor_store::benchmark_history(&store, benchmark, &det);
        let trend = rigor::analyze_trend(benchmark, &points, &config);
        let shifts = trend.significant_shifts();
        if let Some(note) = &trend.note {
            println!("trend: {note}");
        } else if shifts.is_empty() {
            println!(
                "trend: stable — no significant level shift across {} run(s)",
                trend.runs
            );
        } else {
            for cp in shifts {
                println!(
                    "trend: {} from seq {} (run {}): {} -> {} ({}){}",
                    cp.direction.name(),
                    cp.seq,
                    cp.run_id.chars().take(12).collect::<String>(),
                    fmt_ns(cp.before_mean),
                    fmt_ns(cp.after_mean),
                    cp.magnitude.as_ref().map(fmt_ci).unwrap_or_default(),
                    if cp.at_head { " — at HEAD" } else { "" }
                );
            }
        }
    }
    Ok(())
}

/// The trend configuration the flags ask for. The bootstrap seed is left
/// at its fixed default (not `--seed`, which shapes measurements) so the
/// same archive always yields byte-identical trend reports.
fn trend_config(opts: &GlobalOpts) -> rigor::TrendConfig {
    let mut cfg = rigor::TrendConfig::default().with_confidence(opts.confidence);
    if let Some(m) = opts.min_segment {
        cfg = cfg.with_min_segment(m);
    }
    if let Some(p) = opts.penalty {
        cfg = cfg.with_penalty(p);
    }
    if let Some(q) = opts.fdr {
        cfg = cfg.with_fdr_q(q);
    }
    if let Some(c) = &opts.correction {
        cfg = cfg.with_correction(
            rigor::Correction::parse(c).expect("correction validated at argument parsing"),
        );
    }
    cfg
}

/// `rigor trend [benchmark]`: changepoint analysis over the archived
/// history — pure archive reading, nothing is measured. Exit 0 = every
/// history is stable at HEAD; exit 1 = a statistically significant shift
/// was newly detected at the head of at least one history.
fn cmd_trend(benchmark: Option<&str>, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "trend")?;
    if let Some(url) = opts.store_url.as_deref() {
        return cmd_trend_remote(benchmark, opts, url);
    }
    let store = open_store(&opts.store)?;
    // The archive, not the current suite, defines what can be analyzed:
    // benchmarks that left the suite still have histories worth watching.
    let names: Vec<String> = match benchmark {
        Some(b) => vec![b.to_string()],
        None => rigor_store::benchmark_names(&store),
    };
    if names.is_empty() {
        println!("no archived runs in {} — nothing to analyze", opts.store);
        return Ok(());
    }
    let det = SteadyStateDetector::default();
    let config = trend_config(opts);
    let report = rigor_store::trend_report(&store, &names, &det, &config);

    let mut table = Table::new(vec![
        "benchmark",
        "runs",
        "status",
        "penalty",
        "segments",
        "shifts",
        "note",
    ])
    .with_title(format!(
        "trend analysis of {} ({} run(s), min-segment {}, penalty {}, correction {}, q {})",
        opts.store,
        store.len(),
        config.min_segment,
        config.penalty,
        config.correction,
        config.fdr_q
    ));
    for b in &report.benchmarks {
        table.row(vec![
            b.benchmark.clone(),
            b.runs.to_string(),
            b.status.name().to_string(),
            b.penalty_factor
                .map(|f| format!("{f:.2}"))
                .unwrap_or_default(),
            b.segments.len().to_string(),
            b.significant_shifts().len().to_string(),
            b.note.clone().unwrap_or_default(),
        ]);
    }
    println!("{table}");

    if report.changepoint_count() > 0 {
        let mut shifts = Table::new(vec![
            "benchmark",
            "seq",
            "run",
            "direction",
            "magnitude",
            "p (adj)",
            "significant",
            "at HEAD",
        ])
        .with_title("detected level shifts (magnitude = time ratio after/before)");
        for b in &report.benchmarks {
            for cp in &b.changepoints {
                shifts.row(vec![
                    b.benchmark.clone(),
                    cp.seq.to_string(),
                    cp.run_id.chars().take(12).collect(),
                    cp.direction.name().to_string(),
                    cp.magnitude.as_ref().map(fmt_ci).unwrap_or_default(),
                    cp.p_adjusted.map(|p| format!("{p:.3}")).unwrap_or_default(),
                    if cp.significant { "yes" } else { "no" }.to_string(),
                    if cp.at_head { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
        println!("{shifts}");
    }

    let alerts: Vec<String> = report
        .alerts()
        .iter()
        .map(|b| b.benchmark.clone())
        .collect();
    println!(
        "analyzed {} benchmark(s) over {} archived run(s): {} changepoint(s), {} significant, {}",
        report.benchmarks.len(),
        store.len(),
        report.changepoint_count(),
        report.significant_count(),
        if alerts.is_empty() {
            "no shift at HEAD".to_string()
        } else {
            format!("{} ALERT(S) ({})", alerts.len(), alerts.join(", "))
        }
    );

    // `--json` exports the full typed report — what a dashboard or CI
    // pipeline consumes.
    if let Some(path) = &opts.json_out {
        fs::write(path, serde_json::to_string_pretty(&report)?).map_err(io_err(path))?;
        println!("wrote {path}");
    }

    let obs = observers(opts)?;
    for b in &report.benchmarks {
        for cp in b.significant_shifts() {
            let event = ExperimentEvent::ChangepointDetected {
                benchmark: b.benchmark.clone(),
                run_id: cp.run_id.clone(),
                seq: cp.seq,
                direction: cp.direction.name().to_string(),
                magnitude: cp
                    .magnitude
                    .as_ref()
                    .map(|ci| ci.estimate)
                    .unwrap_or(cp.after_mean / cp.before_mean),
                p_adjusted: cp.p_adjusted.unwrap_or(cp.p_raw),
                at_head: cp.at_head,
            };
            for o in &obs {
                o.on_event(&event);
            }
        }
    }
    let event = ExperimentEvent::TrendAnalyzed {
        store: opts.store.clone(),
        benchmarks: report.benchmarks.len() as u32,
        runs: store.len() as u32,
        changepoints: report.changepoint_count() as u32,
        alerts: alerts.len() as u32,
    };
    for o in &obs {
        o.on_event(&event);
    }

    if alerts.is_empty() {
        Ok(())
    } else {
        Err(CliError::TrendShift { benchmarks: alerts })
    }
}

/// Reads a `u64`-ish field out of a server response, defaulting to 0.
fn response_u64(v: &JsonValue, name: &str) -> u64 {
    v.get(name).and_then(|x| x.as_u64()).unwrap_or(0)
}

/// Reads a string-array field out of a server response.
fn response_names(v: &JsonValue, name: &str) -> Vec<String> {
    match v.get(name) {
        Some(JsonValue::Array(xs)) => xs
            .iter()
            .filter_map(|x| x.as_str().map(String::from))
            .collect(),
        _ => Vec::new(),
    }
}

/// Writes a raw server-side report (`"report"` in the response) to the
/// `--json` path.
fn export_response_report(response: &JsonValue, opts: &GlobalOpts) -> CliResult {
    if let Some(path) = &opts.json_out {
        let report = response.get("report").cloned().unwrap_or(JsonValue::Null);
        fs::write(path, serde_json::to_string_pretty(&RawJson(&report))?).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The trend-shape fields of a server request body, from whichever flags
/// were given; unset flags stay at the server's defaults.
fn trend_request_fields(opts: &GlobalOpts) -> Vec<(String, JsonValue)> {
    let mut fields: Vec<(String, JsonValue)> =
        vec![("confidence".into(), opts.confidence.to_value())];
    if let Some(m) = opts.min_segment {
        fields.push(("min_segment".into(), m.to_value()));
    }
    if let Some(p) = opts.penalty {
        // `Penalty` round-trips through its display form ("auto", "bic",
        // or a factor), which is what the server parses back.
        fields.push(("penalty".into(), p.to_string().to_value()));
    }
    if let Some(q) = opts.fdr {
        fields.push(("fdr".into(), q.to_value()));
    }
    if let Some(c) = &opts.correction {
        fields.push(("correction".into(), c.to_value()));
    }
    fields
}

/// `rigor trend --store-url`: changepoint analysis executed server-side
/// over the service's authoritative archive.
fn cmd_trend_remote(benchmark: Option<&str>, opts: &GlobalOpts, url: &str) -> CliResult {
    let obs = observers(opts)?;
    let client = remote_client(url, opts, &obs);
    let mut fields = trend_request_fields(opts);
    if let Some(b) = benchmark {
        fields.push(("benchmark".into(), b.to_value()));
    }
    let response = client
        .trend(&JsonValue::Object(fields))
        .map_err(remote_err(url))?;

    let alerts = response_names(&response, "alerts");
    println!(
        "analyzed {} benchmark(s) over {} archived run(s) at {url}: \
         {} changepoint(s), {} significant, {}",
        response_u64(&response, "benchmarks"),
        response_u64(&response, "runs"),
        response_u64(&response, "changepoints"),
        response_u64(&response, "significant"),
        if alerts.is_empty() {
            "no shift at HEAD".to_string()
        } else {
            format!("{} ALERT(S) ({})", alerts.len(), alerts.join(", "))
        }
    );
    export_response_report(&response, opts)?;

    let event = ExperimentEvent::TrendAnalyzed {
        store: url.to_string(),
        benchmarks: response_u64(&response, "benchmarks") as u32,
        runs: response_u64(&response, "runs") as u32,
        changepoints: response_u64(&response, "changepoints") as u32,
        alerts: alerts.len() as u32,
    };
    for o in &obs {
        o.on_event(&event);
    }
    if alerts.is_empty() {
        Ok(())
    } else {
        Err(CliError::TrendShift { benchmarks: alerts })
    }
}

/// `rigor check --store-url`: measure locally, gate server-side. The
/// service's archive is the authoritative baseline, so everyone gating
/// against it agrees on what `last` means.
fn cmd_check_remote(benchmark: Option<&str>, opts: &GlobalOpts, url: &str) -> CliResult {
    let obs = observers(opts)?;
    let client = remote_client(url, opts, &obs);
    // Fail before measuring: an unreachable service should exit 1 now,
    // not after minutes of measurement.
    client.ping().map_err(remote_err(url))?;

    // What to measure: the named benchmark, or every benchmark in the
    // server's history still present in the suite.
    let names: Vec<String> = match benchmark {
        Some(b) => vec![b.to_string()],
        None => {
            let records = client.history(None).map_err(remote_err(url))?;
            let mut names: Vec<String> = Vec::new();
            for r in &records {
                for n in r.benchmark_names() {
                    if !names.iter().any(|have| have == n) {
                        names.push(n.to_string());
                    }
                }
            }
            let (known, unknown): (Vec<String>, Vec<String>) =
                names.into_iter().partition(|n| find(n).is_some());
            if !unknown.is_empty() && !opts.quiet {
                eprintln!(
                    "note: skipping archived benchmark(s) no longer in the suite: {}",
                    unknown.join(", ")
                );
            }
            known
        }
    };
    let workloads: Result<Vec<Workload>, CliError> = names.iter().map(|n| lookup(n)).collect();
    let cfg = experiment_config(opts);
    let current = measure_all(&workloads?, &cfg, &obs, opts.quiet)?;

    let mut fields = trend_request_fields(opts);
    fields.push(("measurements".into(), current.to_value()));
    fields.push((
        "baseline".into(),
        opts.baseline
            .clone()
            .unwrap_or_else(|| "last".to_string())
            .to_value(),
    ));
    if let Some(pct) = opts.max_regression_pct {
        fields.push(("max_regression_pct".into(), pct.to_value()));
    }
    let response = client
        .check(&JsonValue::Object(fields))
        .map_err(remote_err(url))?;

    // The verdict table, rebuilt from the server's report (the typed
    // report is serialize-only, so the response is read generically).
    let baseline = response
        .get("baseline")
        .and_then(|v| v.as_str())
        .unwrap_or("last")
        .to_string();
    let mut table = Table::new(vec![
        "benchmark",
        "verdict",
        "speedup (base/cur)",
        "p (adj)",
        "note",
    ])
    .with_title(format!(
        "regression gate vs baseline `{baseline}` at {url} ({} run(s) pooled server-side)",
        response_u64(&response, "baseline_runs")
    ));
    if let Some(JsonValue::Array(gates)) = response.get("report").and_then(|r| r.get("benchmarks"))
    {
        for g in gates {
            let speedup = g
                .get("result")
                .and_then(|r| r.get("speedup"))
                .and_then(|s| {
                    Some(format!(
                        "{:.3} [{:.3}, {:.3}]",
                        s.get("estimate")?.as_f64()?,
                        s.get("lower")?.as_f64()?,
                        s.get("upper")?.as_f64()?
                    ))
                })
                .unwrap_or_default();
            table.row(vec![
                g.get("benchmark")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
                g.get("status")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
                speedup,
                g.get("p_adjusted")
                    .and_then(|v| v.as_f64())
                    .map(|p| format!("{p:.3}"))
                    .unwrap_or_default(),
                g.get("note")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
            ]);
        }
    }
    println!("{table}");

    let regressed = response_names(&response, "regressed");
    println!(
        "checked {} benchmark(s): {}",
        response_u64(&response, "checked"),
        if regressed.is_empty() {
            "no significant regression".to_string()
        } else {
            format!("{} REGRESSED ({})", regressed.len(), regressed.join(", "))
        }
    );
    export_response_report(&response, opts)?;
    if let Some(path) = &opts.csv_out {
        fs::write(path, rigor::to_csv(&current)).map_err(io_err(path))?;
        println!("wrote {path}");
    }

    let event = ExperimentEvent::RegressionChecked {
        store: url.to_string(),
        baseline,
        checked: response_u64(&response, "checked") as u32,
        regressed: regressed.len() as u32,
        passed: regressed.is_empty(),
    };
    for o in &obs {
        o.on_event(&event);
    }
    if regressed.is_empty() {
        Ok(())
    } else {
        Err(CliError::Regression {
            benchmarks: regressed,
        })
    }
}

/// `rigor check [benchmark]`: measure the current engine and gate it
/// against an archived baseline. Exit 0 = no FDR-significant regression
/// beyond the tolerance; exit 1 = regressed (with the verdict table
/// printed first).
fn cmd_check(benchmark: Option<&str>, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "check")?;
    if let Some(path) = opts.baseline_json.as_deref() {
        return cmd_check_json(benchmark, opts, path);
    }
    if let Some(url) = opts.store_url.as_deref() {
        return cmd_check_remote(benchmark, opts, url);
    }
    let store = open_store(&opts.store)?;
    let base_ref = BaselineRef::parse(opts.baseline.as_deref().unwrap_or("last"));
    let baseline_runs = base_ref.select(&store).map_err(store_err(&opts.store))?;

    let cfg = experiment_config(opts);
    let fp = ConfigFingerprint::of(&cfg);
    if !opts.quiet {
        for r in &baseline_runs {
            if !r.fingerprint.shape_matches(&fp) {
                eprintln!(
                    "warning: baseline run {} was measured with shape {}x{} {} seed {}, \
                     current shape is {}x{} {} seed {} — the samples estimate \
                     different quantities",
                    r.short_id(),
                    r.fingerprint.invocations,
                    r.fingerprint.iterations,
                    r.fingerprint.size,
                    r.fingerprint.seed,
                    fp.invocations,
                    fp.iterations,
                    fp.size,
                    fp.seed
                );
            }
        }
    }

    // What to measure: the named benchmark, or every baseline benchmark
    // still present in the suite (in baseline order, first appearance).
    let names: Vec<String> = match benchmark {
        Some(b) => vec![b.to_string()],
        None => {
            let mut names: Vec<String> = Vec::new();
            for r in &baseline_runs {
                for n in r.benchmark_names() {
                    if !names.iter().any(|have| have == n) {
                        names.push(n.to_string());
                    }
                }
            }
            let (known, unknown): (Vec<String>, Vec<String>) =
                names.into_iter().partition(|n| find(n).is_some());
            if !unknown.is_empty() && !opts.quiet {
                eprintln!(
                    "note: skipping archived benchmark(s) no longer in the suite: {}",
                    unknown.join(", ")
                );
            }
            known
        }
    };
    let workloads: Result<Vec<Workload>, CliError> = names.iter().map(|n| lookup(n)).collect();
    let obs = observers(opts)?;
    let current = measure_all(&workloads?, &cfg, &obs, opts.quiet)?;

    // `--baseline segment` pools, per benchmark, only the runs of the
    // current trend segment; every other reference pools its selected runs
    // wholesale (equivalent to the old direct pooling).
    let pooled = base_ref
        .pooled_measurements(&store, &SteadyStateDetector::default(), &trend_config(opts))
        .map_err(store_err(&opts.store))?;

    let policy = gate_policy(opts);
    let report =
        rigor::check_regressions(&pooled, &current, &SteadyStateDetector::default(), &policy);
    finish_check(
        &report,
        format!(
            "regression gate vs baseline `{base_ref}` ({} run(s), correction {}, q {}, tolerance {:.1}%)",
            baseline_runs.len(),
            policy.correction,
            policy.fdr_q,
            policy.max_regression * 100.0
        ),
        (opts.store.clone(), base_ref.to_string()),
        &current,
        &obs,
        opts,
    )
}

/// `rigor check --baseline-json <file>`: the same regression gate, but the
/// baseline is a measurement export (`--json` of an earlier run) instead of
/// an archived store run — what a CI job uses to gate against a committed
/// reference file without shipping the whole archive.
fn cmd_check_json(benchmark: Option<&str>, opts: &GlobalOpts, path: &str) -> CliResult {
    let text = fs::read_to_string(path).map_err(io_err(path))?;
    let baseline = rigor::from_json(&text)?;

    // What to measure: the named benchmark, or every baseline benchmark
    // still present in the suite (in file order, first appearance).
    let names: Vec<String> = match benchmark {
        Some(b) => vec![b.to_string()],
        None => {
            let mut names: Vec<String> = Vec::new();
            for m in &baseline {
                if !names.iter().any(|have| have == &m.benchmark) {
                    names.push(m.benchmark.clone());
                }
            }
            let (known, unknown): (Vec<String>, Vec<String>) =
                names.into_iter().partition(|n| find(n).is_some());
            if !unknown.is_empty() && !opts.quiet {
                eprintln!(
                    "note: skipping baseline benchmark(s) not in the suite: {}",
                    unknown.join(", ")
                );
            }
            known
        }
    };
    let workloads: Result<Vec<Workload>, CliError> = names.iter().map(|n| lookup(n)).collect();
    let cfg = experiment_config(opts);
    let obs = observers(opts)?;
    let current = measure_all(&workloads?, &cfg, &obs, opts.quiet)?;

    let policy = gate_policy(opts);
    let report = rigor::check_regressions(
        &baseline,
        &current,
        &SteadyStateDetector::default(),
        &policy,
    );
    finish_check(
        &report,
        format!(
            "regression gate vs baseline file {path} ({} measurement(s), correction {}, q {}, tolerance {:.1}%)",
            baseline.len(),
            policy.correction,
            policy.fdr_q,
            policy.max_regression * 100.0
        ),
        (path.to_string(), format!("json:{path}")),
        &current,
        &obs,
        opts,
    )
}

/// The regression-gate policy the flags ask for.
fn gate_policy(opts: &GlobalOpts) -> rigor::GatePolicy {
    let mut policy = rigor::GatePolicy::default().with_confidence(opts.confidence);
    if let Some(q) = opts.fdr {
        policy = policy.with_fdr_q(q);
    }
    if let Some(pct) = opts.max_regression_pct {
        policy = policy.with_max_regression(pct / 100.0);
    }
    if let Some(c) = &opts.correction {
        policy = policy.with_correction(
            rigor::Correction::parse(c).expect("correction validated at argument parsing"),
        );
    }
    policy
}

/// Prints a gate report's verdict table and summary, handles `--json`/
/// `--csv` export, emits the `regression_checked` event, and converts
/// regressions into the exit-1 error. `source` is the (store-or-file,
/// baseline reference) pair recorded in the event.
fn finish_check(
    report: &rigor::GateReport,
    title: String,
    source: (String, String),
    current: &[rigor::BenchmarkMeasurement],
    obs: &[Arc<dyn ExperimentObserver>],
    opts: &GlobalOpts,
) -> CliResult {
    let mut table = Table::new(vec![
        "benchmark",
        "verdict",
        "change",
        "speedup (base/cur)",
        "p (adj)",
        "note",
    ])
    .with_title(title);
    for g in &report.benchmarks {
        let change = g
            .change_frac()
            .map(|c| format!("{:+.2}%", c * 100.0))
            .unwrap_or_default();
        let speedup = g
            .result
            .as_ref()
            .map(|r| fmt_ci(&r.speedup))
            .unwrap_or_default();
        let p_adj = g.p_adjusted.map(|p| format!("{p:.3}")).unwrap_or_default();
        table.row(vec![
            g.benchmark.clone(),
            g.status.name().to_string(),
            change,
            speedup,
            p_adj,
            g.note.clone().unwrap_or_default(),
        ]);
    }
    println!("{table}");

    let regressed: Vec<String> = report
        .regressed()
        .iter()
        .map(|g| g.benchmark.clone())
        .collect();
    println!(
        "checked {} benchmark(s): {}",
        report.benchmarks.len(),
        if regressed.is_empty() {
            "no significant regression".to_string()
        } else {
            format!("{} REGRESSED ({})", regressed.len(), regressed.join(", "))
        }
    );

    // `--json` exports the gate report here (not raw measurements): the
    // verdicts are what a CI pipeline consumes. `--csv` still exports the
    // current measurements for archaeology.
    if let Some(path) = &opts.json_out {
        fs::write(path, serde_json::to_string_pretty(report)?).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    if let Some(path) = &opts.csv_out {
        fs::write(path, rigor::to_csv(current)).map_err(io_err(path))?;
        println!("wrote {path}");
    }

    let event = ExperimentEvent::RegressionChecked {
        store: source.0,
        baseline: source.1,
        checked: report.benchmarks.len() as u32,
        regressed: regressed.len() as u32,
        passed: regressed.is_empty(),
    };
    for o in obs {
        o.on_event(&event);
    }

    if regressed.is_empty() {
        Ok(())
    } else {
        Err(CliError::Regression {
            benchmarks: regressed,
        })
    }
}

/// The campaign grid the flags ask for. Unset axes fall back to the widest
/// sensible default: every suite benchmark, both engines, the `-n`/`-i`
/// shape, the single `--seed`.
fn campaign_spec(opts: &GlobalOpts) -> rigor::CampaignSpec {
    let base = experiment_config(opts);
    let benchmarks: Vec<String> = match &opts.benchmarks {
        Some(names) => names.clone(),
        None => suite().iter().map(|w| w.name.to_string()).collect(),
    };
    let engines = opts.engines.clone().unwrap_or_else(|| {
        vec![
            minipy::EngineKind::Interp,
            minipy::EngineKind::Jit(minipy::JitConfig::default()),
        ]
    });
    let seeds = match (&opts.seeds, opts.repeats) {
        (Some(seeds), _) => seeds.clone(),
        (None, Some(r)) => (0..u64::from(r))
            .map(|i| opts.seed.wrapping_add(i))
            .collect(),
        (None, None) => vec![opts.seed],
    };
    let mut spec = rigor::CampaignSpec::new(base)
        .with_benchmarks(benchmarks)
        .with_engines(engines)
        .with_seeds(seeds)
        .with_arrival(opts.arrival);
    if let Some(variants) = &opts.variants {
        spec = spec.with_variants(variants.clone());
    }
    if let Some(planner) = planner_config(opts) {
        spec = spec.with_planner(planner);
    }
    spec
}

/// The adaptive-precision planner the flags ask for; `None` when none of
/// `--precision`/`--budget`/`--plan-only` were given (fixed-grid campaign).
/// `-n` doubles as the pilot size; the per-cell ceiling keeps at least the
/// planner default so the pilot has room to grow.
fn planner_config(opts: &GlobalOpts) -> Option<PlannerConfig> {
    if opts.precision.is_none() && opts.budget.is_none() && !opts.plan_only {
        return None;
    }
    let default_max = PlannerConfig::default().max_invocations;
    let mut cfg = PlannerConfig::default()
        .with_min_invocations(opts.invocations)
        .with_max_invocations(opts.invocations.max(default_max));
    if let Some(p) = opts.precision {
        cfg = cfg.with_target(p);
    }
    if let Some(b) = opts.budget {
        cfg = cfg.with_budget(b);
    }
    Some(cfg)
}

/// `rigor campaign`: execute a benchmarks × engines × variants × seeds
/// grid on a work-stealing worker pool, streaming every completed cell
/// into the results archive as its own labeled run. A killed campaign is
/// resumed with `--resume <journal>`: cells already archived are skipped
/// and the final archive holds the same content-id set as an uninterrupted
/// run.
fn cmd_campaign(opts: &GlobalOpts) -> CliResult {
    if opts.journal.is_some() {
        return Err(CliError::Usage(ParseError(
            "--journal does not apply to `campaign` (its journal lives at <store>/campaign.jsonl)"
                .to_string(),
        )));
    }
    let spec = campaign_spec(opts);
    let cells = spec.cells()?;

    if opts.plan {
        let mut table = Table::new(vec!["index", "benchmark", "engine", "shape", "seed"])
            .with_title(format!(
                "campaign plan: {} cell(s), fingerprint {}, arrival {}",
                cells.len(),
                spec.fingerprint(),
                spec.arrival
            ));
        for c in &cells {
            table.row(vec![
                c.index.to_string(),
                c.id.benchmark.clone(),
                c.id.engine.clone(),
                c.id.variant.clone(),
                c.id.seed.to_string(),
            ]);
        }
        println!("{table}");
        return Ok(());
    }

    if opts.plan_only {
        return cmd_plan_only(&spec, &cells);
    }

    let journal_path = opts
        .resume
        .clone()
        .unwrap_or_else(|| format!("{}/campaign.jsonl", opts.store));
    let obs = observers(opts)?;

    if let Some(url) = opts.store_url.as_deref() {
        // The spool rides in the store directory by default: a campaign
        // may legitimately start — and finish — with the server down, and
        // nothing measured may be lost.
        let spool_dir = opts
            .spool
            .clone()
            .unwrap_or_else(|| format!("{}/spool", opts.store));
        let client = remote_client(url, opts, &obs)
            .with_spool(&spool_dir)
            .map_err(remote_err(url))?;
        let report = run_campaign(opts, spec, &client, &journal_path, &obs)?;
        let (_, remaining) = client.flush().map_err(remote_err(url))?;
        print_campaign_summary(&report, url, &journal_path, opts);
        if remaining > 0 {
            println!(
                "{remaining} run(s) spooled at {spool_dir} — replayed automatically on the \
                 next campaign or successful exchange against {url}"
            );
        }
        if opts.json_out.is_some() || opts.csv_out.is_some() {
            // Grid-order export, resolved from the server archive plus
            // anything still spooled (the server may be down again).
            let mut archived = client.history(None).unwrap_or_default();
            archived.extend(client.spool_records());
            let all: Vec<rigor::BenchmarkMeasurement> = cells
                .iter()
                .filter_map(|c| {
                    let label = c.id.canonical();
                    archived
                        .iter()
                        .find(|r| r.label.as_deref() == Some(label.as_str()))
                        .map(|r| r.measurements.clone())
                })
                .flatten()
                .collect();
            export(opts, &all)?;
        }
        return campaign_verdict(&report);
    }

    let sink = rigor_store::SharedStore::open(&opts.store).map_err(store_err(&opts.store))?;
    let report = run_campaign(opts, spec, &sink, &journal_path, &obs)?;
    print_campaign_summary(&report, &opts.store, &journal_path, opts);

    // `--json`/`--csv` export every archived cell of the grid, flattened in
    // grid order — deterministic however the workers interleaved.
    if opts.json_out.is_some() || opts.csv_out.is_some() {
        let all: Vec<rigor::BenchmarkMeasurement> = sink.with(|store| {
            cells
                .iter()
                .filter_map(|c| {
                    let label = c.id.canonical();
                    store
                        .runs()
                        .find(|r| r.label.as_deref() == Some(label.as_str()))
                        .map(|r| r.measurements.clone())
                })
                .flatten()
                .collect()
        });
        export(opts, &all)?;
    }

    campaign_verdict(&report)
}

/// Renders a relative half-width for the allocation tables ("no CI" when
/// none is computable — the planner treats those as infinitely wide).
fn fmt_rel(rel: f64) -> String {
    if rel.is_finite() {
        format!("+/-{:.2}%", rel * 100.0)
    } else {
        "no CI".to_string()
    }
}

/// `rigor campaign --plan-only`: run the pilot round in-process and print
/// the allocation the planner would make — where the invocation budget
/// would go — without archiving anything or writing a journal.
fn cmd_plan_only(spec: &rigor::CampaignSpec, cells: &[rigor::campaign::Cell]) -> CliResult {
    let planner = spec.planner.unwrap_or_default();
    planner
        .validate()
        .map_err(|e| CliError::from(rigor::CampaignError::Planner(e)))?;
    let det = SteadyStateDetector::default();
    let mut estimates = Vec::with_capacity(cells.len());
    for cell in cells {
        let cfg = cell.config.clone().with_invocations(planner.pilot());
        let m = rigor::Runner::new(cfg)
            .map_err(config_err)?
            .measure(&cell.workload)?;
        estimates.push(CellEstimate::from_measurement(
            cell.index,
            &m,
            &det,
            cell.config.confidence,
        ));
    }
    let plan = compute_plan(&estimates, 0, &planner, 1);
    print_allocation(
        cells.iter().map(|c| c.id.canonical()),
        &estimates,
        &plan,
        &planner,
        &format!("pilot of {} cell(s)", cells.len()),
    );
    Ok(())
}

/// `rigor plan`: precision attainment of the archived campaign cells plus
/// the refinement allocation one more adaptive round would make. Reads the
/// archive (or the shared service) only — nothing is measured or written.
fn cmd_plan(opts: &GlobalOpts) -> CliResult {
    let planner = planner_config(opts).unwrap_or_default();
    planner
        .validate()
        .map_err(|e| CliError::from(rigor::CampaignError::Planner(e)))?;
    let records: Vec<RunRecord> = if let Some(url) = opts.store_url.as_deref() {
        let obs = observers(opts)?;
        remote_client(url, opts, &obs)
            .history(None)
            .map_err(remote_err(url))?
    } else {
        let store = open_store(&opts.store)?;
        store.runs().cloned().collect()
    };
    let source = opts.store_url.clone().unwrap_or_else(|| opts.store.clone());

    // Campaign cells are labeled single-measurement runs; everything else
    // in the archive (suite runs, ad-hoc archives) is out of scope here.
    let det = SteadyStateDetector::default();
    let mut labels = Vec::new();
    let mut estimates = Vec::new();
    for r in &records {
        let (Some(label), [m]) = (&r.label, r.measurements.as_slice()) else {
            continue;
        };
        labels.push(label.clone());
        estimates.push(CellEstimate::from_measurement(
            estimates.len(),
            m,
            &det,
            opts.confidence,
        ));
    }
    if estimates.is_empty() {
        println!(
            "no campaign cells in {source} ({} run(s) archived) — run `rigor campaign` first",
            records.len()
        );
        return Ok(());
    }
    let plan = compute_plan(&estimates, 0, &planner, 1);
    print_allocation(
        labels.into_iter(),
        &estimates,
        &plan,
        &planner,
        &format!("{} archived cell(s) in {source}", estimates.len()),
    );
    Ok(())
}

/// Prints the per-cell attainment/allocation table plus the plan summary
/// line shared by `rigor plan` and `campaign --plan-only`.
fn print_allocation(
    names: impl Iterator<Item = String>,
    estimates: &[CellEstimate],
    plan: &rigor::Plan,
    planner: &PlannerConfig,
    subject: &str,
) {
    let grants: std::collections::BTreeMap<usize, &rigor::RefineTask> =
        plan.tasks.iter().map(|t| (t.index, t)).collect();
    let mut table = Table::new(vec![
        "cell",
        "n",
        "achieved",
        "status",
        "next n",
        "predicted",
    ])
    .with_title(format!(
        "adaptive plan over {subject}: target +/-{:.2}%, budget {}",
        planner.target_rel_half_width * 100.0,
        planner
            .budget
            .map_or("unbounded".to_string(), |b| format!("{b} invocation(s)")),
    ));
    let mut met = 0usize;
    for (name, est) in names.zip(estimates) {
        let status = if est.target_met(planner.target_rel_half_width) {
            met += 1;
            "met"
        } else if grants.contains_key(&est.index) {
            "refine"
        } else if est.invocations >= planner.max_invocations {
            "at ceiling"
        } else {
            "short (no budget)"
        };
        let (next, predicted) = match grants.get(&est.index) {
            Some(t) => (t.invocations.to_string(), fmt_rel(t.predicted_rel)),
            None => (String::new(), String::new()),
        };
        table.row(vec![
            name,
            est.invocations.to_string(),
            fmt_rel(est.rel_half_width.unwrap_or(f64::INFINITY)),
            status.to_string(),
            next,
            predicted,
        ]);
    }
    println!("{table}");
    println!(
        "{met} of {} cell(s) at target; {} invocation(s) spent; next round grants {} more \
         across {} cell(s){}",
        estimates.len(),
        plan.spent,
        plan.planned,
        plan.tasks.len(),
        if plan.exhausted {
            " — budget exhausted or all unmet cells at their ceiling"
        } else {
            ""
        },
    );
}

/// Builds and runs the campaign over any cell sink (the local shared
/// store, or the remote client).
fn run_campaign(
    opts: &GlobalOpts,
    spec: rigor::CampaignSpec,
    sink: &dyn rigor::campaign::CellSink,
    journal_path: &str,
    obs: &[Arc<dyn ExperimentObserver>],
) -> Result<rigor::CampaignReport, CliError> {
    let mut campaign = rigor::Campaign::new(spec)
        .workers(opts.workers)
        .journal(journal_path)
        .resume(opts.resume.is_some());
    for o in obs {
        campaign = campaign.observer(o.clone());
    }
    if let Some(m) = opts.max_cells {
        campaign = campaign.max_cells(m);
    }
    Ok(campaign.run(sink)?)
}

/// Prints the campaign summary lines shared by the local and remote paths.
fn print_campaign_summary(
    report: &rigor::CampaignReport,
    dest: &str,
    journal_path: &str,
    opts: &GlobalOpts,
) {
    println!(
        "campaign {}: {} of {} cell(s) archived in {dest} \
         ({} skipped as already archived, {} executed, {} stolen between workers)",
        report.fingerprint,
        report.completed(),
        report.total,
        report.skipped,
        report.executed,
        report.stolen,
    );
    if report.rounds > 0 {
        println!(
            "adaptive precision: {} invocation(s) spent over {} refinement round(s); \
             {} cell(s) short of target",
            report.invocations,
            report.rounds,
            report.unmet.len(),
        );
        if !report.unmet.is_empty() && !opts.quiet {
            eprintln!("note: cells short of target: {}", report.unmet.join(", "));
        }
    }
    if report.remaining > 0 {
        println!(
            "{} cell(s) not yet scheduled — continue with \
             `rigor campaign --resume {journal_path}` (same grid flags)",
            report.remaining
        );
    }
    if !report.quarantined.is_empty() && !opts.quiet {
        eprintln!(
            "note: {} cell(s) quarantined: {}",
            report.quarantined.len(),
            report.quarantined.join(", ")
        );
    }
}

/// Converts a campaign report's failed cells into the exit-1 error, after
/// printing them.
fn campaign_verdict(report: &rigor::CampaignReport) -> CliResult {
    if report.failures.is_empty() {
        return Ok(());
    }
    let mut table = Table::new(vec!["cell", "error"]).with_title("failed cells");
    for (cell, error) in &report.failures {
        table.row(vec![cell.clone(), error.clone()]);
    }
    println!("{table}");
    Err(CliError::CampaignCells {
        failed: report.failures.iter().map(|(c, _)| c.clone()).collect(),
    })
}

/// A workload that never finishes an iteration — only a deadline or fuel
/// budget can stop it.
const DIVERGENT_SRC: &str = "def run():\n    while True:\n        pass\n";

/// Small, fast experiment shape shared by the self-test scenarios.
fn self_test_config() -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(5)
        .with_size(Size::Small)
        .with_seed(7)
}

fn expect(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

/// A divergent workload under a virtual-time deadline must end up censored
/// with the `timeout` taxonomy — and quarantined — rather than hanging.
fn self_test_deadline() -> Result<(), String> {
    let cfg = self_test_config()
        .with_invocations(2)
        .with_deadline_ns(5.0e7)
        .with_max_retries(0);
    let m = rigor::Runner::new(cfg)
        .map_err(|e| format!("bad config: {e}"))?
        .measure_source(DIVERGENT_SRC, "divergent")
        .map_err(|e| format!("measurement errored instead of censoring: {e}"))?;
    expect(m.invocations.is_empty(), "no invocation should succeed")?;
    expect(m.censored.len() == 2, "both invocations should be censored")?;
    expect(
        m.censored
            .iter()
            .all(|c| c.failure == rigor::FailureKind::Timeout),
        "censoring taxonomy should be `timeout`",
    )?;
    expect(
        m.quarantined,
        "a fully-censored benchmark must be quarantined",
    )
}

/// The same divergent workload under a step budget must censor with the
/// `fuel_exhausted` taxonomy.
fn self_test_fuel() -> Result<(), String> {
    let cfg = self_test_config()
        .with_invocations(1)
        .with_step_budget(50_000)
        .with_max_retries(0);
    let m = rigor::Runner::new(cfg)
        .map_err(|e| format!("bad config: {e}"))?
        .measure_source(DIVERGENT_SRC, "divergent")
        .map_err(|e| format!("measurement errored instead of censoring: {e}"))?;
    expect(m.censored.len() == 1, "the invocation should be censored")?;
    expect(
        m.censored[0].failure == rigor::FailureKind::FuelExhausted,
        "censoring taxonomy should be `fuel_exhausted`",
    )
}

/// Injected transient panics must be retried onto clean attempts; the
/// experiment recovers a full measurement.
fn self_test_retry() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config().with_invocations(8).with_max_retries(6);
    let m = rigor::Runner::new(cfg)
        .map_err(|e| format!("bad config: {e}"))?
        .fault_plan(FaultPlan::new(13).with_panic_rate(0.5))
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.n_invocations() + m.censored.len() == 8,
        "every invocation slot must resolve",
    )?;
    expect(
        m.invocations.iter().any(|r| r.attempts > 1),
        "a 50% panic rate should force at least one retry",
    )?;
    expect(
        m.censored.is_empty(),
        "6 retries should recover every invocation from 50% transient faults",
    )
}

/// Invocations that fail every attempt trip the quarantine threshold.
fn self_test_quarantine() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config().with_invocations(2).with_max_retries(0);
    let m = rigor::Runner::new(cfg)
        .map_err(|e| format!("bad config: {e}"))?
        .fault_plan(FaultPlan::new(5).with_panic_rate(1.0))
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.censored.len() == 2,
        "all attempts panic, all slots censor",
    )?;
    expect(
        m.censored
            .iter()
            .all(|c| c.failure == rigor::FailureKind::Panic),
        "censoring taxonomy should be `panic`",
    )?;
    expect(m.quarantined, "2/2 censored must quarantine")
}

/// Killing an experiment after a checkpoint and resuming must reproduce the
/// uninterrupted measurement byte-for-byte.
fn self_test_resume() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("rigor-self-test-{}.jsonl", std::process::id()));
    let cleanup = |r: Result<(), String>| {
        std::fs::remove_file(&path).ok();
        r
    };
    let full = match rigor::Runner::new(cfg.clone())
        .map_err(|e| e.to_string())
        .and_then(|r| r.journal(&path).measure(&w).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => return cleanup(Err(format!("journaled run errored: {e}"))),
    };
    // Keep the meta line + 2 records: a simulated mid-experiment crash.
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return cleanup(Err(format!("cannot read journal: {e}"))),
    };
    let prefix: Vec<&str> = text.lines().take(3).collect();
    if let Err(e) = std::fs::write(&path, format!("{}\n", prefix.join("\n"))) {
        return cleanup(Err(format!("cannot truncate journal: {e}")));
    }
    let journal = match Journal::load(&path) {
        Ok(j) => j,
        Err(e) => return cleanup(Err(format!("cannot load journal: {e}"))),
    };
    if journal.completed() != 2 {
        return cleanup(Err(format!(
            "expected 2 journaled invocations, found {}",
            journal.completed()
        )));
    }
    let resumed = match rigor::Runner::new(cfg)
        .map_err(|e| e.to_string())
        .and_then(|r| r.resume(journal).measure(&w).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => return cleanup(Err(format!("resumed run errored: {e}"))),
    };
    let full_json = rigor::to_json(std::slice::from_ref(&full));
    let resumed_json = rigor::to_json(std::slice::from_ref(&resumed));
    cleanup(match (full_json, resumed_json) {
        (Ok(a), Ok(b)) if a == b => Ok(()),
        (Ok(_), Ok(_)) => Err("resumed export differs from the uninterrupted run".into()),
        (Err(e), _) | (_, Err(e)) => Err(format!("export failed: {e}")),
    })
}

/// A panicking observer must be disabled without losing the measurement or
/// the rest of the event stream.
fn self_test_observer_isolation() -> Result<(), String> {
    struct Grenade;
    impl ExperimentObserver for Grenade {
        fn on_event(&self, _event: &ExperimentEvent) {
            panic!("self-test observer bomb");
        }
    }
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let collector = Arc::new(rigor::CollectingObserver::new());
    let cfg = self_test_config().with_invocations(2).with_iterations(3);
    let m = rigor::Runner::new(cfg)
        .map_err(|e| format!("bad config: {e}"))?
        .observer(Arc::new(Grenade))
        .observer(collector.clone())
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.n_invocations() == 2,
        "the measurement must survive the observer panic",
    )?;
    expect(
        collector.len() == 2 + 2 * 2 + 2 * 3,
        "the healthy observer must still see the complete stream",
    )
}

/// A placeholder measurement for the network scenarios — the uploads under
/// test carry content, not timings.
fn self_test_measurement() -> rigor::BenchmarkMeasurement {
    rigor::BenchmarkMeasurement {
        benchmark: "sieve".to_string(),
        engine: "interp".to_string(),
        invocations: vec![],
        censored: vec![],
        quarantined: false,
    }
}

/// Spins up an in-process archive server over a scratch store; returns
/// `(url, handle, join, store_dir)`.
#[allow(clippy::type_complexity)]
fn self_test_server(
    tag: &str,
    faults: Option<rigor::NetFaultPlan>,
) -> Result<
    (
        String,
        rigor_serve::ServerHandle,
        std::thread::JoinHandle<()>,
        std::path::PathBuf,
    ),
    String,
> {
    let dir = std::env::temp_dir().join(format!("rigor-self-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut server = ArchiveServer::bind("127.0.0.1:0", &dir)
        .map_err(|e| format!("cannot start server: {e}"))?;
    if let Some(plan) = faults {
        server = server.with_fault_plan(plan);
    }
    let handle = server.handle();
    let url = format!("127.0.0.1:{}", handle.addr().port());
    let join = std::thread::spawn(move || {
        let _ = server.serve();
    });
    Ok((url, handle, join, dir))
}

/// A client tuned for the scenarios: short timeouts, tight backoff.
fn self_test_client(url: &str, retries: u32) -> RemoteStore {
    RemoteStore::connect(url)
        .with_timeout(Duration::from_millis(500))
        .with_retries(retries)
        .with_backoff_base(Duration::from_millis(1))
        .with_seed(7)
}

/// A port that nothing listens on (bound once, then released).
fn dead_port() -> Result<u16, String> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let port = listener.local_addr().map_err(|e| e.to_string())?.port();
    drop(listener);
    Ok(port)
}

/// Under refused connections and dropped acks, every upload must land
/// exactly once: retries recover the transport, content-id dedup absorbs
/// the replays of writes whose ack was withheld.
fn self_test_net_retry() -> Result<(), String> {
    let plan = rigor::NetFaultPlan::new(11)
        .with_refuse_rate(0.2)
        .with_drop_rate(0.25);
    let (url, handle, join, dir) = self_test_server("net-retry", Some(plan))?;
    let client = self_test_client(&url, 8);
    let cfg = self_test_config();
    let result = (|| -> Result<(), String> {
        for seq in 0..6u64 {
            let record = RunRecord::new(
                seq,
                Some(format!("net/{seq}")),
                &cfg,
                vec![self_test_measurement()],
            );
            let receipt = client
                .upload(&record)
                .map_err(|e| format!("upload {seq}: {e}"))?;
            let again = client
                .upload(&record)
                .map_err(|e| format!("re-upload {seq}: {e}"))?;
            expect(
                receipt == again,
                "a replayed upload must dedup to the original receipt",
            )?;
        }
        let runs = client.ping().map_err(|e| format!("ping: {e}"))?;
        expect(
            runs == 6,
            "exactly 6 runs must land — no loss, no duplicates",
        )
    })();
    handle.stop();
    let _ = join.join();
    let verify = Store::verify_dir(&dir).map_err(|e| format!("verify: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();
    result?;
    expect(verify.is_clean(), "the served archive must verify clean")
}

/// With the server gone, the circuit breaker must open after the
/// configured threshold and fail fast instead of re-timing-out.
fn self_test_net_breaker() -> Result<(), String> {
    let port = dead_port()?;
    let observer = Arc::new(rigor::CollectingObserver::new());
    let client = self_test_client(&format!("127.0.0.1:{port}"), 0)
        .with_timeout(Duration::from_millis(200))
        .with_breaker_threshold(2)
        .with_probe_every(1000)
        .with_observer(observer.clone());
    expect(client.ping().is_err(), "a dead port must fail")?;
    expect(
        client.ping().is_err(),
        "the second failure crosses the threshold",
    )?;
    let start = std::time::Instant::now();
    for _ in 0..20 {
        match client.ping() {
            Err(rigor_serve::RemoteError::CircuitOpen { .. }) => {}
            other => return Err(format!("expected CircuitOpen, got {other:?}")),
        }
    }
    expect(
        start.elapsed() < Duration::from_millis(100),
        "an open breaker must fail fast, not re-run the connect timeout",
    )?;
    expect(
        observer
            .events()
            .iter()
            .any(|e| matches!(e, ExperimentEvent::CircuitOpened { failures: 2, .. })),
        "opening the breaker must emit `circuit_opened`",
    )
}

/// Cells archived while the service is down must spool locally and, once
/// the server returns, replay to the exact archive a direct local run
/// produces — same content ids at the same seqs.
fn self_test_net_spool() -> Result<(), String> {
    use rigor::campaign::CellSink as _;
    let port = dead_port()?;
    let base = std::env::temp_dir().join(format!("rigor-self-test-spool-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let cfg = self_test_config();
    let cells = rigor::CampaignSpec::new(cfg)
        .with_benchmarks(["sieve"])
        .with_seeds(vec![1, 2, 3])
        .cells()
        .map_err(|e| e.to_string())?;
    let m = self_test_measurement();

    let client = self_test_client(&format!("127.0.0.1:{port}"), 0)
        .with_timeout(Duration::from_millis(200))
        .with_breaker_threshold(1)
        .with_spool(base.join("spool"))
        .map_err(|e| format!("spool: {e}"))?;
    for c in &cells {
        client
            .archive_cell(c, &m)
            .map_err(|e| format!("offline cell: {e}"))?;
    }
    expect(
        client.spooled() == cells.len(),
        "every offline cell must spool",
    )?;

    // Ground truth: the same cells written directly to a local store.
    let local = rigor_store::SharedStore::open(base.join("local")).map_err(|e| e.to_string())?;
    for c in &cells {
        local.archive_cell(c, &m).map_err(|e| e.to_string())?;
    }

    // The server comes up on the very port that was refusing connections.
    let server_dir = base.join("server");
    let server = ArchiveServer::bind(&format!("127.0.0.1:{port}"), &server_dir)
        .map_err(|e| format!("restart: {e}"))?;
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let _ = server.serve();
    });
    // The breaker is open; flush until a half-open probe gets through.
    let mut drained = false;
    for _ in 0..200 {
        client.flush().map_err(|e| format!("flush: {e}"))?;
        if client.spooled() == 0 {
            drained = true;
            break;
        }
    }
    handle.stop();
    let _ = join.join();
    let result = (|| -> Result<(), String> {
        expect(drained, "the spool must drain once the server is back")?;
        let mut local_runs: Vec<(u64, String)> =
            local.with(|s| s.runs().map(|r| (r.seq, r.id.clone())).collect());
        local_runs.sort();
        let server_store = Store::open(&server_dir).map_err(|e| e.to_string())?;
        let mut server_runs: Vec<(u64, String)> =
            server_store.runs().map(|r| (r.seq, r.id.clone())).collect();
        server_runs.sort();
        expect(
            server_runs == local_runs,
            "the replayed archive must hold the same content ids at the same seqs \
             as a direct local run",
        )
    })();
    std::fs::remove_dir_all(&base).ok();
    result
}

/// 5xx responses and non-HTTP garbage must be retried away without ever
/// corrupting the archive or duplicating a run.
fn self_test_net_garbage() -> Result<(), String> {
    let plan = rigor::NetFaultPlan::new(9)
        .with_error_rate(0.25)
        .with_garbage_rate(0.25);
    let (url, handle, join, dir) = self_test_server("net-garbage", Some(plan))?;
    let client = self_test_client(&url, 8);
    let cfg = self_test_config();
    let result = (|| -> Result<(), String> {
        for seq in 0..5u64 {
            let record = RunRecord::new(
                seq,
                Some(format!("garbage/{seq}")),
                &cfg,
                vec![self_test_measurement()],
            );
            client
                .upload(&record)
                .map_err(|e| format!("upload {seq}: {e}"))?;
        }
        let history = client.history(None).map_err(|e| format!("history: {e}"))?;
        expect(
            history.len() == 5,
            "every upload must land despite 5xx and garbage responses",
        )
    })();
    handle.stop();
    let _ = join.join();
    let verify = Store::verify_dir(&dir).map_err(|e| format!("verify: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();
    result?;
    expect(verify.is_clean(), "the served archive must verify clean")
}

/// Default path of the committed golden checksum manifest, relative to
/// the repository root (where CI and developers run `rigor verify`).
const DEFAULT_MANIFEST: &str = "tests/fixtures/suite_checksums.json";

/// `rigor verify`: run the differential verification grid — every workload
/// × size × engine × seed — against the golden checksum manifest. With
/// `BLESS=1` in the environment the manifest is (re)generated from a clean
/// run instead of being compared against.
fn cmd_verify(opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "verify")?;
    let manifest_path = opts
        .manifest
        .clone()
        .unwrap_or_else(|| DEFAULT_MANIFEST.to_string());
    let sizes = opts
        .sizes
        .clone()
        .unwrap_or_else(|| verify::ALL_SIZES.to_vec());
    let seeds = opts.seeds.clone().unwrap_or_else(|| vec![1, 2, 3]);
    let bless = std::env::var("BLESS").is_ok_and(|v| v == "1");

    let cells = verify::grid(&sizes, &seeds);
    if !opts.quiet {
        eprintln!(
            "verify: {} cells ({} workloads x {} sizes x 2 engines x {} seeds) on {} workers",
            cells.len(),
            suite().len(),
            sizes.len(),
            seeds.len(),
            opts.workers
        );
    }

    if bless {
        // A bless run still cross-checks the engines: a divergent suite
        // must never be pinned as golden.
        let report = rigor::run_grid(cells, opts.workers, None);
        if let Some(path) = &opts.json_out {
            fs::write(path, report.to_json()).map_err(io_err(path))?;
        }
        if !report.passed() {
            return fail_verify(&report);
        }
        let manifest = report.to_manifest().map_err(|msg| CliError::Store {
            path: manifest_path.clone(),
            message: msg,
        })?;
        fs::write(&manifest_path, manifest.to_json()).map_err(io_err(&manifest_path))?;
        if !opts.quiet {
            eprintln!(
                "verify: blessed {} manifest entries to {manifest_path}",
                manifest.entries.len()
            );
        }
        println!("{}", report.summary());
        return Ok(());
    }

    let text = fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
    let manifest = verify::Manifest::from_json(&text).map_err(|msg| CliError::Store {
        path: manifest_path.clone(),
        message: msg,
    })?;
    let report = rigor::run_grid(cells, opts.workers, Some(&manifest));
    if let Some(path) = &opts.json_out {
        fs::write(path, report.to_json()).map_err(io_err(path))?;
    }
    if report.passed() {
        println!("{}", report.summary());
        Ok(())
    } else {
        fail_verify(&report)
    }
}

/// Prints the failing cells of a verification report and surfaces the
/// typed error (exit 1).
fn fail_verify(report: &verify::VerifyReport) -> CliResult {
    let failures = report.failures();
    let mut table =
        Table::new(vec!["cell", "outcome", "detail"]).with_title("suite verification failures");
    for f in &failures {
        let detail = match &f.outcome {
            verify::CellOutcome::ChecksumMismatch { expected, actual } => {
                format!("expected {expected}, got {actual}")
            }
            verify::CellOutcome::EngineDivergence { interp, jit } => {
                format!("interp {interp}, jit {jit}")
            }
            verify::CellOutcome::MissingEntry { actual } => {
                format!("no manifest entry (computed {actual})")
            }
            verify::CellOutcome::Error(e) => e.to_string(),
            verify::CellOutcome::Ok => String::new(),
        };
        table.row(vec![f.cell.id(), f.outcome.label().to_string(), detail]);
    }
    println!("{table}");
    println!("{}", report.summary());
    Err(CliError::VerifySuite {
        failed: failures.iter().map(|f| f.cell.id()).collect(),
    })
}

/// One named self-test scenario.
type Scenario = (&'static str, fn() -> Result<(), String>);

/// Runs every fault-tolerance scenario under deterministic fault injection
/// and reports a pass/fail table; any failure exits 1.
fn cmd_self_test(opts: &GlobalOpts) -> CliResult {
    let scenarios: Vec<Scenario> = vec![
        ("deadline censors a divergent workload", self_test_deadline),
        ("fuel budget censors a divergent workload", self_test_fuel),
        ("transient panics are retried to recovery", self_test_retry),
        ("total failure trips quarantine", self_test_quarantine),
        ("checkpoint resume is byte-identical", self_test_resume),
        ("observer panics are isolated", self_test_observer_isolation),
        (
            "dropped acks are retried without duplication",
            self_test_net_retry,
        ),
        (
            "circuit breaker opens and fails fast",
            self_test_net_breaker,
        ),
        (
            "offline spool replays losslessly on reconnect",
            self_test_net_spool,
        ),
        (
            "5xx and garbage responses never corrupt the archive",
            self_test_net_garbage,
        ),
    ];
    let mut table = Table::new(vec!["scenario", "result"]).with_title("fault-tolerance self-test");
    let mut failed = Vec::new();
    // Injected panics are expected here; keep their default backtraces out
    // of the report. The previous hook is restored before returning.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (name, scenario) in &scenarios {
        if !opts.quiet {
            eprintln!("self-test: {name} ...");
        }
        match scenario() {
            Ok(()) => {
                table.row(vec![name.to_string(), "ok".to_string()]);
            }
            Err(msg) => {
                table.row(vec![name.to_string(), format!("FAILED: {msg}")]);
                failed.push(name.to_string());
            }
        }
    }
    std::panic::set_hook(previous_hook);
    println!("{table}");
    if failed.is_empty() {
        println!("self-test: all {} scenarios passed", scenarios.len());
        Ok(())
    } else {
        Err(CliError::SelfTest { failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn list_and_help_run() {
        dispatch(&parse_args(&argv("list")).unwrap()).unwrap();
        dispatch(&parse_args(&argv("help")).unwrap()).unwrap();
    }

    #[test]
    fn characterize_runs() {
        dispatch(&parse_args(&argv("characterize sieve --size small")).unwrap()).unwrap();
    }

    #[test]
    fn measure_small_runs_and_exports() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("m.json");
        let cmd = format!(
            "measure leibniz -n 3 -i 10 --size small --json {}",
            json.display()
        );
        dispatch(&parse_args(&argv(&cmd)).unwrap()).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("leibniz"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let r = dispatch(&parse_args(&argv("measure nope")).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn quarantined_measure_surfaces_as_an_error() {
        let r = dispatch(
            &parse_args(&argv(
                "measure sieve -n 2 -i 3 --size small --deadline-ns 100 --max-retries 0",
            ))
            .unwrap(),
        );
        match r {
            Err(CliError::Quarantined {
                censored,
                invocations,
                ..
            }) => {
                assert_eq!(censored, 2);
                assert_eq!(invocations, 2);
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_flags_rejected_outside_measure() {
        for cmd in ["suite --journal j.jsonl", "compare sieve --resume j.jsonl"] {
            let r = dispatch(&parse_args(&argv(cmd)).unwrap());
            assert!(
                matches!(r, Err(CliError::Usage(_))),
                "{cmd} must be a usage error"
            );
        }
    }

    #[test]
    fn campaign_plan_and_run_archive_every_cell() {
        let dir = std::env::temp_dir().join(format!("rigor-cli-campaign-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = dir.join("store");
        let base = format!(
            "campaign --benchmarks sieve,leibniz --engines interp --seeds 1,2 \
             -n 2 -i 3 --size small --workers 2 --quiet --store {}",
            store.display()
        );
        dispatch(&parse_args(&argv(&format!("{base} --plan"))).unwrap()).unwrap();
        assert!(!store.exists(), "--plan must not touch the store");
        dispatch(&parse_args(&argv(&base)).unwrap()).unwrap();
        let opened = rigor_store::Store::open(&store).unwrap();
        assert_eq!(opened.len(), 4, "every cell becomes one archived run");
        // Rerunning the same grid is a no-op: every cell is already archived.
        dispatch(&parse_args(&argv(&base)).unwrap()).unwrap();
        assert_eq!(rigor_store::Store::open(&store).unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_rejects_journal_flag() {
        let r = dispatch(&parse_args(&argv("campaign --journal j.jsonl")).unwrap());
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn run_and_disasm_a_minipy_file() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hello.mp");
        std::fs::write(&path, "print('hi')\ndef run():\n    return 41 + 1\n").unwrap();
        dispatch(&parse_args(&argv(&format!("run {}", path.display()))).unwrap()).unwrap();
        dispatch(&parse_args(&argv(&format!("disasm {}", path.display()))).unwrap()).unwrap();
    }
}
