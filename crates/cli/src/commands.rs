//! Implementation of the CLI subcommands.

use std::fs;
use std::sync::Arc;

use minipy::{Session, VmConfig};
use rigor::{
    compare, compare_suite, fmt_ci, fmt_ns, precision_of, sparkline, ExperimentConfig,
    ExperimentEvent, ExperimentObserver, FaultPlan, Journal, JsonlTraceObserver, ProgressObserver,
    SteadyStateDetector, Table, WarmupClassifier,
};
use rigor_workloads::{characterize, find, suite, Size, Workload};

use crate::args::{Command, GlobalOpts, ParseError, USAGE};
use crate::error::{io_err, CliError};

type CliResult = Result<(), CliError>;

/// Dispatches a parsed command.
pub fn dispatch(parsed: &(Command, GlobalOpts)) -> CliResult {
    let (command, opts) = parsed;
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::List => cmd_list(),
        Command::Characterize { benchmark } => cmd_characterize(benchmark, opts),
        Command::Measure { benchmark } => cmd_measure(benchmark, opts),
        Command::Compare { benchmark } => cmd_compare(benchmark, opts),
        Command::Suite => cmd_suite(opts),
        Command::Warmup { benchmark } => cmd_warmup(benchmark, opts),
        Command::Run { path } => cmd_run(path, opts),
        Command::Disasm { path } => cmd_disasm(path),
        Command::TraceSummary { path } => cmd_trace_summary(path),
        Command::SelfTest => cmd_self_test(opts),
    }
}

fn lookup(benchmark: &str) -> Result<Workload, CliError> {
    find(benchmark).ok_or_else(|| CliError::UnknownBenchmark(benchmark.to_string()))
}

fn experiment_config(opts: &GlobalOpts) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::interp()
        .with_invocations(opts.invocations)
        .with_iterations(opts.iterations)
        .with_size(opts.size)
        .with_seed(opts.seed)
        .with_engine(opts.engine)
        .with_confidence(opts.confidence);
    if let Some(d) = opts.deadline_ns {
        cfg = cfg.with_deadline_ns(d);
    }
    if let Some(f) = opts.fuel {
        cfg = cfg.with_step_budget(f);
    }
    if let Some(r) = opts.max_retries {
        cfg = cfg.with_max_retries(r);
    }
    if let Some(q) = opts.quarantine_threshold {
        cfg = cfg.with_quarantine_threshold(q);
    }
    cfg
}

/// `--journal`/`--resume` checkpoint a *single* measurement, so only
/// `measure` supports them; other measuring commands reject the flags
/// rather than silently ignoring them.
fn reject_checkpoint_flags(opts: &GlobalOpts, command: &str) -> Result<(), CliError> {
    if opts.journal.is_some() || opts.resume.is_some() {
        return Err(CliError::Usage(ParseError(format!(
            "--journal/--resume only apply to `measure`, not `{command}`"
        ))));
    }
    Ok(())
}

/// Prints a one-line fault summary to stderr when a measurement had
/// censored invocations (suite/compare context, where the full per-slot
/// detail of `measure` would be noise).
fn note_faults(m: &rigor::BenchmarkMeasurement, quiet: bool) {
    if quiet || m.censored.is_empty() {
        return;
    }
    eprintln!(
        "note: {} on {}: {} of {} invocations censored{}",
        m.benchmark,
        m.engine,
        m.censored.len(),
        m.n_requested(),
        if m.quarantined {
            " — QUARANTINED"
        } else {
            ""
        }
    );
}

/// Builds the observer set the flags ask for: `--progress` (unless
/// `--quiet`) and `--trace <path>`. The same observers are shared across
/// every experiment of a command, so a suite run streams one trace.
fn observers(opts: &GlobalOpts) -> Result<Vec<Arc<dyn ExperimentObserver>>, CliError> {
    let mut out: Vec<Arc<dyn ExperimentObserver>> = Vec::new();
    if opts.progress && !opts.quiet {
        out.push(Arc::new(ProgressObserver::new()));
    }
    if let Some(path) = &opts.trace {
        let obs = JsonlTraceObserver::create(std::path::Path::new(path)).map_err(io_err(path))?;
        out.push(Arc::new(obs));
    }
    Ok(out)
}

/// Measures one workload with the given observers attached.
fn measure_observed(
    workload: &Workload,
    cfg: &ExperimentConfig,
    observers: &[Arc<dyn ExperimentObserver>],
) -> Result<rigor::BenchmarkMeasurement, CliError> {
    let mut runner = rigor::Runner::new(cfg.clone());
    for obs in observers {
        runner = runner.observer(obs.clone());
    }
    Ok(runner.measure(workload)?)
}

fn export(opts: &GlobalOpts, measurements: &[rigor::BenchmarkMeasurement]) -> CliResult {
    if let Some(path) = &opts.json_out {
        fs::write(path, rigor::to_json(measurements)?).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    if let Some(path) = &opts.csv_out {
        fs::write(path, rigor::to_csv(measurements)).map_err(io_err(path))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_list() -> CliResult {
    let mut table = Table::new(vec!["benchmark", "category", "description"]);
    for w in suite() {
        table.row(vec![w.name, w.category.label(), w.description]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_characterize(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let c = characterize(&w, opts.size, opts.seed)?;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "bytecodes / iteration".to_string(),
        format!("{:.0}", c.bytecodes_per_iter),
    ]);
    table.row(vec![
        "arith fraction".to_string(),
        format!("{:.1}%", c.arith_frac * 100.0),
    ]);
    table.row(vec![
        "stack fraction".to_string(),
        format!("{:.1}%", c.stack_frac * 100.0),
    ]);
    table.row(vec![
        "name fraction".to_string(),
        format!("{:.1}%", c.name_frac * 100.0),
    ]);
    table.row(vec![
        "memory fraction".to_string(),
        format!("{:.1}%", c.memory_frac * 100.0),
    ]);
    table.row(vec![
        "branch fraction".to_string(),
        format!("{:.1}%", c.branch_frac * 100.0),
    ]);
    table.row(vec![
        "call fraction".to_string(),
        format!("{:.1}%", c.call_frac * 100.0),
    ]);
    table.row(vec![
        "allocations / iteration".to_string(),
        format!("{:.0}", c.allocations_per_iter),
    ]);
    table.row(vec![
        "dict probes / iteration".to_string(),
        format!("{:.0}", c.dict_probes_per_iter),
    ]);
    table.row(vec![
        "calls / iteration".to_string(),
        format!("{:.0}", c.calls_per_iter),
    ]);
    table.row(vec![
        "back-edges / iteration".to_string(),
        format!("{:.0}", c.backedges_per_iter),
    ]);
    table.row(vec!["startup time".to_string(), fmt_ns(c.startup_ns)]);
    table.row(vec![
        "iteration time (interp)".to_string(),
        fmt_ns(c.iter_ns_interp),
    ]);
    println!("{} ({})\n{table}", c.name, c.category);
    Ok(())
}

fn cmd_measure(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let mut runner = rigor::Runner::new(cfg.clone());
    for obs in observers(opts)? {
        runner = runner.observer(obs);
    }
    if let Some(path) = &opts.journal {
        runner = runner.journal(path.as_str());
    }
    if let Some(path) = &opts.resume {
        let journal = Journal::load(std::path::Path::new(path)).map_err(io_err(path))?;
        if journal.truncated && !opts.quiet {
            eprintln!("note: {path}: final journal line was truncated; ignoring it");
        }
        if !opts.quiet {
            eprintln!(
                "resuming from {path}: {} of {} invocations already journaled",
                journal.completed(),
                cfg.invocations
            );
        }
        runner = runner.resume(journal);
    }
    let m = runner.measure(&w)?;
    let det = SteadyStateDetector::default();
    println!(
        "{} on {}: {} invocations x {} iterations",
        w.name,
        cfg.engine.name(),
        m.n_invocations(),
        m.n_iterations()
    );
    match precision_of(&m, &det, opts.confidence) {
        (Some(ci), Some(rel)) => println!(
            "steady-state mean: {} [{}, {}] at {:.0}% confidence (+/-{:.2}%)",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper),
            opts.confidence * 100.0,
            rel * 100.0
        ),
        _ => println!("no steady state reached — report the series, not a number"),
    }
    if let Some(ci) = rigor_stats::mean_ci(&m.startup_times(), opts.confidence) {
        println!(
            "startup (compile + module setup): {} [{}, {}]",
            fmt_ns(ci.estimate),
            fmt_ns(ci.lower),
            fmt_ns(ci.upper)
        );
    }
    if m.n_retried() > 0 {
        println!(
            "retried: {} invocations needed more than one attempt",
            m.n_retried()
        );
    }
    if !m.censored.is_empty() {
        println!(
            "censored: {} of {} invocations failed every attempt ({:.0}%)",
            m.censored.len(),
            m.n_requested(),
            m.censoring_rate() * 100.0
        );
        for c in &m.censored {
            println!(
                "  inv {}: {} after {} attempt(s): {}",
                c.invocation, c.failure, c.attempts, c.error
            );
        }
    }
    export(opts, std::slice::from_ref(&m))?;
    if m.quarantined {
        // The report and exports above still happened — quarantine is a
        // trust verdict on the numbers, surfaced as exit code 1.
        return Err(CliError::Quarantined {
            benchmark: w.name.to_string(),
            censored: m.censored.len() as u32,
            invocations: m.n_requested() as u32,
        });
    }
    Ok(())
}

fn cmd_compare(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "compare")?;
    let w = lookup(benchmark)?;
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let base = measure_observed(&w, &interp_cfg, &obs)?;
    let cand = measure_observed(&w, &jit_cfg, &obs)?;
    note_faults(&base, opts.quiet);
    note_faults(&cand, opts.quiet);
    let result = compare(
        &base,
        &cand,
        &SteadyStateDetector::default(),
        opts.confidence,
    );
    if let Ok(r) = &result {
        println!(
            "{}: JIT speedup over interpreter: {}",
            w.name,
            fmt_ci(&r.speedup)
        );
        println!(
            "interp steady mean {} (from iter {}), jit {} (from iter {})",
            fmt_ns(r.base_mean_ns),
            r.base_steady_start,
            fmt_ns(r.cand_mean_ns),
            r.cand_steady_start
        );
        println!(
            "significant: {}   p = {:.2e}   Cohen's d = {:.1}",
            if r.significant { "yes" } else { "no" },
            r.p_value,
            r.effect_size
        );
    }
    // Export the raw measurements even when the comparison failed, then
    // surface the failure through the error path (exit 1).
    export(opts, &[base, cand])?;
    result.map(|_| ()).map_err(CliError::from)
}

fn cmd_suite(opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "suite")?;
    let interp_cfg = experiment_config(opts).with_engine(minipy::EngineKind::Interp);
    let jit_cfg =
        experiment_config(opts).with_engine(minipy::EngineKind::Jit(minipy::JitConfig::default()));
    let obs = observers(opts)?;
    let mut pairs = Vec::new();
    let mut all = Vec::new();
    for w in suite() {
        if !opts.quiet {
            eprintln!("measuring {} ...", w.name);
        }
        let base = measure_observed(&w, &interp_cfg, &obs)?;
        let cand = measure_observed(&w, &jit_cfg, &obs)?;
        note_faults(&base, opts.quiet);
        note_faults(&cand, opts.quiet);
        all.push(base.clone());
        all.push(cand.clone());
        pairs.push((base, cand));
    }
    let s = compare_suite(&pairs, &SteadyStateDetector::default(), opts.confidence);
    let mut table = Table::new(vec!["benchmark", "JIT speedup", "significant"]);
    let mut sorted = s.per_benchmark.clone();
    sorted.sort_by(|a, b| {
        b.speedup
            .estimate
            .partial_cmp(&a.speedup.estimate)
            .expect("finite")
    });
    for r in &sorted {
        table.row(vec![
            r.benchmark.clone(),
            fmt_ci(&r.speedup),
            if r.significant { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{table}");
    for (name, e) in &s.failures {
        println!("not converged: {name}: {e}");
    }
    if let Some(g) = &s.geomean {
        println!("\ngeometric-mean speedup: {}", fmt_ci(g));
    }
    export(opts, &all)
}

fn cmd_warmup(benchmark: &str, opts: &GlobalOpts) -> CliResult {
    reject_checkpoint_flags(opts, "warmup")?;
    let w = lookup(benchmark)?;
    let cfg = experiment_config(opts);
    let m = measure_observed(&w, &cfg, &observers(opts)?)?;
    note_faults(&m, opts.quiet);
    let classifier = WarmupClassifier::default();
    println!("{} on {}:", w.name, cfg.engine.name());
    for (i, series) in m.series().enumerate() {
        println!(
            "  inv {i}: {}  first {} last {}  [{}]",
            sparkline(series),
            fmt_ns(series[0]),
            fmt_ns(*series.last().expect("non-empty")),
            classifier.classify(series).label()
        );
    }
    for det in [
        SteadyStateDetector::cov_window(),
        SteadyStateDetector::changepoint(),
        SteadyStateDetector::robust_tail(),
    ] {
        let start = rigor::common_steady_start(m.series(), &det);
        println!(
            "  detector {:<12} steady from: {}",
            det.name(),
            start
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    export(opts, std::slice::from_ref(&m))
}

fn cmd_run(path: &str, opts: &GlobalOpts) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let mut vm_cfg = VmConfig {
        engine: opts.engine,
        ..VmConfig::default()
    };
    vm_cfg.capture_output = true;
    let mut session = Session::start(&source, opts.seed, vm_cfg)?;
    let stdout = session.vm_mut().take_stdout();
    print!("{stdout}");
    // If the module defines run(), time one iteration like the harness would.
    if session.vm().global("run").is_some() {
        let r = session.run_iteration()?;
        print!("{}", session.vm_mut().take_stdout());
        println!(
            "run() -> {}   [{} virtual, {} bytecodes]",
            session.render(r.value),
            fmt_ns(r.virtual_ns),
            r.counters.total_ops
        );
    }
    Ok(())
}

fn cmd_disasm(path: &str) -> CliResult {
    let source = fs::read_to_string(path).map_err(io_err(path))?;
    let program = minipy::compile(&source)?;
    print!("{program}");
    Ok(())
}

/// One slowest-iteration row kept while scanning a trace.
struct SlowIteration {
    benchmark: String,
    invocation: u32,
    iteration: u32,
    virtual_ns: f64,
    counters: rigor::IterationCounters,
}

/// Per-benchmark aggregates over a trace.
#[derive(Default)]
struct BenchmarkTotals {
    invocations: u32,
    failed: u32,
    iterations: u64,
    gc_cycles: u64,
    jit_compiles: u64,
    deopts: u64,
    virtual_ns: f64,
}

fn cmd_trace_summary(path: &str) -> CliResult {
    let text = fs::read_to_string(path).map_err(io_err(path))?;
    let parsed = rigor::parse_trace(&text).map_err(|e| CliError::Trace {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    if let Some(warning) = &parsed.warning {
        eprintln!("warning: {path}: {warning}");
    }
    let events = parsed.events;
    if events.is_empty() {
        println!("{path}: empty trace");
        return Ok(());
    }

    // Event counts by kind, in stream order of first appearance.
    let mut kinds: Vec<(&'static str, u64)> = Vec::new();
    // Aggregates per benchmark, in order of first appearance.
    let mut totals: Vec<(String, BenchmarkTotals)> = Vec::new();
    let mut slowest: Vec<SlowIteration> = Vec::new();
    for ev in &events {
        match kinds.iter_mut().find(|(k, _)| *k == ev.name()) {
            Some((_, n)) => *n += 1,
            None => kinds.push((ev.name(), 1)),
        }
        let bench = ev.benchmark().to_string();
        let totals = match totals.iter_mut().find(|(b, _)| *b == bench) {
            Some((_, t)) => t,
            None => {
                totals.push((bench, BenchmarkTotals::default()));
                &mut totals.last_mut().expect("just pushed").1
            }
        };
        match ev {
            ExperimentEvent::IterationFinished {
                benchmark,
                invocation,
                iteration,
                virtual_ns,
                counters,
            } => {
                totals.iterations += 1;
                totals.gc_cycles += counters.gc_cycles;
                totals.jit_compiles += counters.jit_compiles;
                totals.deopts += counters.deopts;
                totals.virtual_ns += virtual_ns;
                slowest.push(SlowIteration {
                    benchmark: benchmark.clone(),
                    invocation: *invocation,
                    iteration: *iteration,
                    virtual_ns: *virtual_ns,
                    counters: *counters,
                });
                slowest.sort_by(|a, b| b.virtual_ns.partial_cmp(&a.virtual_ns).expect("finite"));
                slowest.truncate(5);
            }
            ExperimentEvent::InvocationFinished { error, .. } => {
                totals.invocations += 1;
                if error.is_some() {
                    totals.failed += 1;
                }
            }
            _ => {}
        }
    }

    let mut events_table = Table::new(vec!["event", "count"]).with_title("events");
    for (kind, n) in &kinds {
        events_table.row(vec![kind.to_string(), n.to_string()]);
    }
    println!("{events_table}");

    let mut bench_table = Table::new(vec![
        "benchmark",
        "invocations",
        "failed",
        "iterations",
        "gc cycles",
        "jit compiles",
        "deopts",
        "total time",
    ])
    .with_title("per-benchmark totals");
    for (bench, t) in &totals {
        bench_table.row(vec![
            bench.clone(),
            t.invocations.to_string(),
            t.failed.to_string(),
            t.iterations.to_string(),
            t.gc_cycles.to_string(),
            t.jit_compiles.to_string(),
            t.deopts.to_string(),
            fmt_ns(t.virtual_ns),
        ]);
    }
    println!("{bench_table}");

    if !slowest.is_empty() {
        let mut slow_table = Table::new(vec![
            "benchmark",
            "invocation",
            "iteration",
            "time",
            "gc",
            "jit",
            "deopts",
        ])
        .with_title("slowest iterations");
        for s in &slowest {
            slow_table.row(vec![
                s.benchmark.clone(),
                s.invocation.to_string(),
                s.iteration.to_string(),
                fmt_ns(s.virtual_ns),
                s.counters.gc_cycles.to_string(),
                s.counters.jit_compiles.to_string(),
                s.counters.deopts.to_string(),
            ]);
        }
        println!("{slow_table}");
    }
    Ok(())
}

/// A workload that never finishes an iteration — only a deadline or fuel
/// budget can stop it.
const DIVERGENT_SRC: &str = "def run():\n    while True:\n        pass\n";

/// Small, fast experiment shape shared by the self-test scenarios.
fn self_test_config() -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(5)
        .with_size(Size::Small)
        .with_seed(7)
}

fn expect(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

/// A divergent workload under a virtual-time deadline must end up censored
/// with the `timeout` taxonomy — and quarantined — rather than hanging.
fn self_test_deadline() -> Result<(), String> {
    let cfg = self_test_config()
        .with_invocations(2)
        .with_deadline_ns(5.0e7)
        .with_max_retries(0);
    let m = rigor::measure_source(DIVERGENT_SRC, "divergent", &cfg)
        .map_err(|e| format!("measurement errored instead of censoring: {e}"))?;
    expect(m.invocations.is_empty(), "no invocation should succeed")?;
    expect(m.censored.len() == 2, "both invocations should be censored")?;
    expect(
        m.censored
            .iter()
            .all(|c| c.failure == rigor::FailureKind::Timeout),
        "censoring taxonomy should be `timeout`",
    )?;
    expect(
        m.quarantined,
        "a fully-censored benchmark must be quarantined",
    )
}

/// The same divergent workload under a step budget must censor with the
/// `fuel_exhausted` taxonomy.
fn self_test_fuel() -> Result<(), String> {
    let cfg = self_test_config()
        .with_invocations(1)
        .with_step_budget(50_000)
        .with_max_retries(0);
    let m = rigor::measure_source(DIVERGENT_SRC, "divergent", &cfg)
        .map_err(|e| format!("measurement errored instead of censoring: {e}"))?;
    expect(m.censored.len() == 1, "the invocation should be censored")?;
    expect(
        m.censored[0].failure == rigor::FailureKind::FuelExhausted,
        "censoring taxonomy should be `fuel_exhausted`",
    )
}

/// Injected transient panics must be retried onto clean attempts; the
/// experiment recovers a full measurement.
fn self_test_retry() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config().with_invocations(8).with_max_retries(6);
    let m = rigor::Runner::new(cfg)
        .fault_plan(FaultPlan::new(13).with_panic_rate(0.5))
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.n_invocations() + m.censored.len() == 8,
        "every invocation slot must resolve",
    )?;
    expect(
        m.invocations.iter().any(|r| r.attempts > 1),
        "a 50% panic rate should force at least one retry",
    )?;
    expect(
        m.censored.is_empty(),
        "6 retries should recover every invocation from 50% transient faults",
    )
}

/// Invocations that fail every attempt trip the quarantine threshold.
fn self_test_quarantine() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config().with_invocations(2).with_max_retries(0);
    let m = rigor::Runner::new(cfg)
        .fault_plan(FaultPlan::new(5).with_panic_rate(1.0))
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.censored.len() == 2,
        "all attempts panic, all slots censor",
    )?;
    expect(
        m.censored
            .iter()
            .all(|c| c.failure == rigor::FailureKind::Panic),
        "censoring taxonomy should be `panic`",
    )?;
    expect(m.quarantined, "2/2 censored must quarantine")
}

/// Killing an experiment after a checkpoint and resuming must reproduce the
/// uninterrupted measurement byte-for-byte.
fn self_test_resume() -> Result<(), String> {
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let cfg = self_test_config();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("rigor-self-test-{}.jsonl", std::process::id()));
    let cleanup = |r: Result<(), String>| {
        std::fs::remove_file(&path).ok();
        r
    };
    let full = match rigor::Runner::new(cfg.clone()).journal(&path).measure(&w) {
        Ok(m) => m,
        Err(e) => return cleanup(Err(format!("journaled run errored: {e}"))),
    };
    // Keep the meta line + 2 records: a simulated mid-experiment crash.
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return cleanup(Err(format!("cannot read journal: {e}"))),
    };
    let prefix: Vec<&str> = text.lines().take(3).collect();
    if let Err(e) = std::fs::write(&path, format!("{}\n", prefix.join("\n"))) {
        return cleanup(Err(format!("cannot truncate journal: {e}")));
    }
    let journal = match Journal::load(&path) {
        Ok(j) => j,
        Err(e) => return cleanup(Err(format!("cannot load journal: {e}"))),
    };
    if journal.completed() != 2 {
        return cleanup(Err(format!(
            "expected 2 journaled invocations, found {}",
            journal.completed()
        )));
    }
    let resumed = match rigor::Runner::new(cfg).resume(journal).measure(&w) {
        Ok(m) => m,
        Err(e) => return cleanup(Err(format!("resumed run errored: {e}"))),
    };
    let full_json = rigor::to_json(std::slice::from_ref(&full));
    let resumed_json = rigor::to_json(std::slice::from_ref(&resumed));
    cleanup(match (full_json, resumed_json) {
        (Ok(a), Ok(b)) if a == b => Ok(()),
        (Ok(_), Ok(_)) => Err("resumed export differs from the uninterrupted run".into()),
        (Err(e), _) | (_, Err(e)) => Err(format!("export failed: {e}")),
    })
}

/// A panicking observer must be disabled without losing the measurement or
/// the rest of the event stream.
fn self_test_observer_isolation() -> Result<(), String> {
    struct Grenade;
    impl ExperimentObserver for Grenade {
        fn on_event(&self, _event: &ExperimentEvent) {
            panic!("self-test observer bomb");
        }
    }
    let w = find("sieve").ok_or("sieve missing from suite")?;
    let collector = Arc::new(rigor::CollectingObserver::new());
    let cfg = self_test_config().with_invocations(2).with_iterations(3);
    let m = rigor::Runner::new(cfg)
        .observer(Arc::new(Grenade))
        .observer(collector.clone())
        .measure(&w)
        .map_err(|e| format!("measurement errored: {e}"))?;
    expect(
        m.n_invocations() == 2,
        "the measurement must survive the observer panic",
    )?;
    expect(
        collector.len() == 2 + 2 * 2 + 2 * 3,
        "the healthy observer must still see the complete stream",
    )
}

/// One named self-test scenario.
type Scenario = (&'static str, fn() -> Result<(), String>);

/// Runs every fault-tolerance scenario under deterministic fault injection
/// and reports a pass/fail table; any failure exits 1.
fn cmd_self_test(opts: &GlobalOpts) -> CliResult {
    let scenarios: Vec<Scenario> = vec![
        ("deadline censors a divergent workload", self_test_deadline),
        ("fuel budget censors a divergent workload", self_test_fuel),
        ("transient panics are retried to recovery", self_test_retry),
        ("total failure trips quarantine", self_test_quarantine),
        ("checkpoint resume is byte-identical", self_test_resume),
        ("observer panics are isolated", self_test_observer_isolation),
    ];
    let mut table = Table::new(vec!["scenario", "result"]).with_title("fault-tolerance self-test");
    let mut failed = Vec::new();
    // Injected panics are expected here; keep their default backtraces out
    // of the report. The previous hook is restored before returning.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (name, scenario) in &scenarios {
        if !opts.quiet {
            eprintln!("self-test: {name} ...");
        }
        match scenario() {
            Ok(()) => {
                table.row(vec![name.to_string(), "ok".to_string()]);
            }
            Err(msg) => {
                table.row(vec![name.to_string(), format!("FAILED: {msg}")]);
                failed.push(name.to_string());
            }
        }
    }
    std::panic::set_hook(previous_hook);
    println!("{table}");
    if failed.is_empty() {
        println!("self-test: all {} scenarios passed", scenarios.len());
        Ok(())
    } else {
        Err(CliError::SelfTest { failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn list_and_help_run() {
        dispatch(&parse_args(&argv("list")).unwrap()).unwrap();
        dispatch(&parse_args(&argv("help")).unwrap()).unwrap();
    }

    #[test]
    fn characterize_runs() {
        dispatch(&parse_args(&argv("characterize sieve --size small")).unwrap()).unwrap();
    }

    #[test]
    fn measure_small_runs_and_exports() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("m.json");
        let cmd = format!(
            "measure leibniz -n 3 -i 10 --size small --json {}",
            json.display()
        );
        dispatch(&parse_args(&argv(&cmd)).unwrap()).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("leibniz"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let r = dispatch(&parse_args(&argv("measure nope")).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn quarantined_measure_surfaces_as_an_error() {
        let r = dispatch(
            &parse_args(&argv(
                "measure sieve -n 2 -i 3 --size small --deadline-ns 100 --max-retries 0",
            ))
            .unwrap(),
        );
        match r {
            Err(CliError::Quarantined {
                censored,
                invocations,
                ..
            }) => {
                assert_eq!(censored, 2);
                assert_eq!(invocations, 2);
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_flags_rejected_outside_measure() {
        for cmd in ["suite --journal j.jsonl", "compare sieve --resume j.jsonl"] {
            let r = dispatch(&parse_args(&argv(cmd)).unwrap());
            assert!(
                matches!(r, Err(CliError::Usage(_))),
                "{cmd} must be a usage error"
            );
        }
    }

    #[test]
    fn run_and_disasm_a_minipy_file() {
        let dir = std::env::temp_dir().join("rigor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hello.mp");
        std::fs::write(&path, "print('hi')\ndef run():\n    return 41 + 1\n").unwrap();
        dispatch(&parse_args(&argv(&format!("run {}", path.display()))).unwrap()).unwrap();
        dispatch(&parse_args(&argv(&format!("disasm {}", path.display()))).unwrap()).unwrap();
    }
}
