//! `rigor` — the command-line front end (see `rigor help`).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(rigor_cli::run(&argv));
}
