//! Hand-rolled argument parsing for the `rigor` CLI (no external parser
//! dependency, per the workspace's dependency policy).

use std::fmt;

use minipy::EngineKind;
use rigor_workloads::Size;

/// Options shared by the measuring subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalOpts {
    /// VM invocations.
    pub invocations: u32,
    /// Iterations per invocation.
    pub iterations: u32,
    /// Workload size preset.
    pub size: Size,
    /// Master experiment seed.
    pub seed: u64,
    /// Engine for single-engine commands.
    pub engine: EngineKind,
    /// Confidence level.
    pub confidence: f64,
    /// Optional path to write measurements as JSON.
    pub json_out: Option<String>,
    /// Optional path to write measurements as CSV.
    pub csv_out: Option<String>,
    /// Stream live per-invocation progress to stderr.
    pub progress: bool,
    /// Suppress progress and advisory stderr output.
    pub quiet: bool,
    /// Optional path to stream an event trace (JSONL) to.
    pub trace: Option<String>,
    /// Optional per-attempt virtual-time deadline (ns).
    pub deadline_ns: Option<f64>,
    /// Optional per-attempt step budget ("fuel", bytecode ops).
    pub fuel: Option<u64>,
    /// Retries after a failed invocation (None = library default).
    pub max_retries: Option<u32>,
    /// Censored fraction above which a benchmark is quarantined.
    pub quarantine_threshold: Option<f64>,
    /// Optional checkpoint-journal path to stream finished invocations to.
    pub journal: Option<String>,
    /// Optional checkpoint journal to resume a measurement from.
    pub resume: Option<String>,
    /// Results-archive directory for archive/history/check.
    pub store: String,
    /// Optional human label recorded with an archived run.
    pub label: Option<String>,
    /// Baseline reference for `check` (`last`, `last-N`, id prefix, label).
    pub baseline: Option<String>,
    /// FDR level q applied to corrected p-values (`check`).
    pub fdr: Option<f64>,
    /// Tolerated slowdown in percent before a significant change regresses
    /// the gate (`check`).
    pub max_regression_pct: Option<f64>,
    /// Multiple-comparison correction name (`bh` or `holm`, `check`).
    pub correction: Option<String>,
    /// Minimum runs per trend segment (`trend`, `history --alerts`).
    pub min_segment: Option<usize>,
    /// Segmentation penalty: `auto`, `bic`, or a positive factor (`trend`).
    pub penalty: Option<rigor::Penalty>,
    /// Annotate `history` output with trend shift alerts.
    pub alerts: bool,
    /// Benchmark axis of a campaign grid (`campaign`; default: the suite).
    pub benchmarks: Option<Vec<String>>,
    /// Engine axis of a campaign grid (default: interp and jit).
    pub engines: Option<Vec<EngineKind>>,
    /// Config-variant axis (`NxM` shapes) of a campaign grid.
    pub variants: Option<Vec<rigor::ConfigVariant>>,
    /// Explicit seed axis of a campaign grid.
    pub seeds: Option<Vec<u64>>,
    /// Seed-axis shorthand: `N` consecutive seeds from `--seed`.
    pub repeats: Option<u32>,
    /// Campaign worker threads.
    pub workers: usize,
    /// Campaign inter-cell arrival process.
    pub arrival: rigor::ArrivalProcess,
    /// Print the campaign's cell grid without executing it.
    pub plan: bool,
    /// Adaptive-precision target: relative CI half-width per cell
    /// (`--precision 0.02` = ±2%); enables the precision planner.
    pub precision: Option<f64>,
    /// Global invocation budget across the campaign grid; enables the
    /// precision planner.
    pub budget: Option<u64>,
    /// Run only the pilot round and print the allocation table, without
    /// refining or archiving anything.
    pub plan_only: bool,
    /// Execute at most this many cells, then stop (resumable).
    pub max_cells: Option<usize>,
    /// Gate `check` against measurements exported as JSON instead of an
    /// archived baseline.
    pub baseline_json: Option<String>,
    /// Shared archive service URL; archive/history/check/trend/campaign
    /// talk to it instead of the local `--store` directory.
    pub store_url: Option<String>,
    /// Local write-ahead spool directory for undeliverable uploads
    /// (campaign with `--store-url`; default `<store>/spool`).
    pub spool: Option<String>,
    /// Listen address for `rigor serve`.
    pub listen: String,
    /// Verify the archive's integrity instead of measuring (`archive`).
    pub verify: bool,
    /// Size axis of the verification grid (`verify`; default: all three).
    pub sizes: Option<Vec<Size>>,
    /// Golden checksum manifest path (`verify`).
    pub manifest: Option<String>,
}

impl Default for GlobalOpts {
    fn default() -> Self {
        GlobalOpts {
            invocations: 10,
            iterations: 30,
            size: Size::Default,
            seed: 0xC0FFEE,
            engine: EngineKind::Interp,
            confidence: 0.95,
            json_out: None,
            csv_out: None,
            progress: false,
            quiet: false,
            trace: None,
            deadline_ns: None,
            fuel: None,
            max_retries: None,
            quarantine_threshold: None,
            journal: None,
            resume: None,
            store: ".rigor-store".to_string(),
            label: None,
            baseline: None,
            fdr: None,
            max_regression_pct: None,
            correction: None,
            min_segment: None,
            penalty: None,
            alerts: false,
            benchmarks: None,
            engines: None,
            variants: None,
            seeds: None,
            repeats: None,
            workers: 4,
            arrival: rigor::ArrivalProcess::Immediate,
            plan: false,
            precision: None,
            budget: None,
            plan_only: false,
            max_cells: None,
            baseline_json: None,
            store_url: None,
            spool: None,
            listen: "127.0.0.1:7878".to_string(),
            verify: false,
            sizes: None,
            manifest: None,
        }
    }
}

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `rigor list` — print the workload suite.
    List,
    /// `rigor characterize <benchmark>` — dynamic-profile table.
    Characterize { benchmark: String },
    /// `rigor measure <benchmark>` — steady-state mean with CI on one engine.
    Measure { benchmark: String },
    /// `rigor compare <benchmark>` — interp vs JIT speedup with CI.
    Compare { benchmark: String },
    /// `rigor suite` — the headline experiment over the whole suite.
    Suite,
    /// `rigor warmup <benchmark>` — per-invocation series + classification.
    Warmup { benchmark: String },
    /// `rigor run <file>` — execute a MiniPy source file.
    Run { path: String },
    /// `rigor disasm <file>` — print a MiniPy file's bytecode.
    Disasm { path: String },
    /// `rigor trace-summary <file>` — summarize an event trace (JSONL).
    TraceSummary { path: String },
    /// `rigor self-test` — exercise the fault-tolerance machinery under
    /// deterministic fault injection.
    SelfTest,
    /// `rigor archive [benchmark]` — measure (one benchmark or the whole
    /// suite) and persist the run to the results archive.
    Archive { benchmark: Option<String> },
    /// `rigor history <benchmark>` — trend table over archived runs.
    History { benchmark: String },
    /// `rigor check [benchmark]` — regression gate against an archived
    /// baseline (exit 0 = pass, 1 = regressed).
    Check { benchmark: Option<String> },
    /// `rigor trend [benchmark]` — changepoint analysis over the archived
    /// history (exit 0 = stable, 1 = significant shift at HEAD).
    Trend { benchmark: Option<String> },
    /// `rigor campaign` — execute a benchmarks × engines × variants × seeds
    /// cell grid on a work-stealing worker pool, streaming each cell into
    /// the results archive.
    Campaign,
    /// `rigor plan` — precision-attainment report over an archived
    /// campaign: what each cell achieved and what a refinement round would
    /// allocate next.
    Plan,
    /// `rigor serve` — run the shared archive service over one store.
    Serve,
    /// `rigor verify` — run the differential verification grid (workload ×
    /// size × engine × seed) against the golden checksum manifest (exit 0 =
    /// every cell matches, 1 = mismatch/divergence, naming the cell).
    Verify,
    /// `rigor help`.
    Help,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses argv (without the program name) into a command + options.
pub fn parse_args(argv: &[String]) -> Result<(Command, GlobalOpts), ParseError> {
    let mut opts = GlobalOpts::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = argv.iter().peekable();

    let next_value = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| err(format!("flag {flag} requires a value")))
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--invocations" | "-n" => {
                opts.invocations = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--invocations requires an integer"))?;
            }
            "--iterations" | "-i" => {
                opts.iterations = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--iterations requires an integer"))?;
            }
            "--seed" => {
                let v = next_value(arg, &mut it)?;
                opts.seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|_| err("bad hex seed"))?
                } else {
                    v.parse().map_err(|_| err("--seed requires an integer"))?
                };
            }
            "--size" => {
                opts.size = match next_value(arg, &mut it)?.as_str() {
                    "small" => Size::Small,
                    "default" => Size::Default,
                    "large" => Size::Large,
                    other => return Err(err(format!("unknown size '{other}'"))),
                };
            }
            "--engine" => {
                opts.engine = match next_value(arg, &mut it)?.as_str() {
                    "interp" => EngineKind::Interp,
                    "jit" => EngineKind::Jit(minipy::JitConfig::default()),
                    other => return Err(err(format!("unknown engine '{other}'"))),
                };
            }
            "--confidence" => {
                let c: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--confidence requires a number"))?;
                if !(0.5..1.0).contains(&c) {
                    return Err(err("--confidence must be in [0.5, 1.0)"));
                }
                opts.confidence = c;
            }
            "--json" => opts.json_out = Some(next_value(arg, &mut it)?),
            "--csv" => opts.csv_out = Some(next_value(arg, &mut it)?),
            "--progress" => opts.progress = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--trace" => opts.trace = Some(next_value(arg, &mut it)?),
            "--deadline-ns" => {
                let d: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--deadline-ns requires a number"))?;
                if !(d.is_finite() && d > 0.0) {
                    return Err(err("--deadline-ns must be a positive number"));
                }
                opts.deadline_ns = Some(d);
            }
            "--fuel" => {
                let f: u64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--fuel requires an integer (bytecode ops)"))?;
                if f == 0 {
                    return Err(err("--fuel must be positive"));
                }
                opts.fuel = Some(f);
            }
            "--max-retries" => {
                opts.max_retries = Some(
                    next_value(arg, &mut it)?
                        .parse()
                        .map_err(|_| err("--max-retries requires an integer"))?,
                );
            }
            "--quarantine-threshold" => {
                let q: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--quarantine-threshold requires a number"))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(err("--quarantine-threshold must be in [0, 1]"));
                }
                opts.quarantine_threshold = Some(q);
            }
            "--journal" => opts.journal = Some(next_value(arg, &mut it)?),
            "--resume" => opts.resume = Some(next_value(arg, &mut it)?),
            "--store" => opts.store = next_value(arg, &mut it)?,
            "--label" => opts.label = Some(next_value(arg, &mut it)?),
            "--baseline" => opts.baseline = Some(next_value(arg, &mut it)?),
            "--fdr" => {
                let q: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--fdr requires a number"))?;
                if !(q > 0.0 && q <= 1.0) {
                    return Err(err("--fdr must be in (0, 1]"));
                }
                opts.fdr = Some(q);
            }
            "--max-regression" => {
                let pct: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--max-regression requires a percentage"))?;
                if !(pct.is_finite() && pct >= 0.0) {
                    return Err(err("--max-regression must be a non-negative percentage"));
                }
                opts.max_regression_pct = Some(pct);
            }
            "--correction" => {
                let c = next_value(arg, &mut it)?;
                if rigor::Correction::parse(&c).is_none() {
                    return Err(err(format!("unknown correction '{c}' (use bh or holm)")));
                }
                opts.correction = Some(c);
            }
            "--min-segment" => {
                let m: usize = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--min-segment requires an integer"))?;
                if m == 0 {
                    return Err(err("--min-segment must be at least 1"));
                }
                opts.min_segment = Some(m);
            }
            "--penalty" => {
                let p = next_value(arg, &mut it)?;
                opts.penalty = Some(rigor::Penalty::parse(&p).ok_or_else(|| {
                    err(format!(
                        "unknown penalty '{p}' (use auto, bic, or a positive factor)"
                    ))
                })?);
            }
            "--alerts" => opts.alerts = true,
            "--benchmarks" => {
                let list: Vec<String> = next_value(arg, &mut it)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if list.is_empty() {
                    return Err(err("--benchmarks requires a comma-separated list"));
                }
                opts.benchmarks = Some(list);
            }
            "--engines" => {
                let mut engines = Vec::new();
                for name in next_value(arg, &mut it)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    engines.push(match name {
                        "interp" => EngineKind::Interp,
                        "jit" => EngineKind::Jit(minipy::JitConfig::default()),
                        other => return Err(err(format!("unknown engine '{other}'"))),
                    });
                }
                if engines.is_empty() {
                    return Err(err("--engines requires a comma-separated list"));
                }
                opts.engines = Some(engines);
            }
            "--variants" => {
                let mut variants = Vec::new();
                for shape in next_value(arg, &mut it)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    variants.push(rigor::ConfigVariant::parse(shape).map_err(err)?);
                }
                if variants.is_empty() {
                    return Err(err("--variants requires a comma-separated list"));
                }
                opts.variants = Some(variants);
            }
            "--seeds" => {
                let mut seeds = Vec::new();
                for s in next_value(arg, &mut it)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    seeds.push(if let Some(hex) = s.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16).map_err(|_| err("bad hex seed in --seeds"))?
                    } else {
                        s.parse().map_err(|_| err("--seeds requires integers"))?
                    });
                }
                if seeds.is_empty() {
                    return Err(err("--seeds requires a comma-separated list"));
                }
                opts.seeds = Some(seeds);
            }
            "--repeats" => {
                let r: u32 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--repeats requires an integer"))?;
                if r == 0 {
                    return Err(err("--repeats must be at least 1"));
                }
                opts.repeats = Some(r);
            }
            "--workers" => {
                let w: usize = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--workers requires an integer"))?;
                if w == 0 {
                    return Err(err("--workers must be at least 1"));
                }
                opts.workers = w;
            }
            "--arrival" => {
                let a = next_value(arg, &mut it)?;
                opts.arrival = rigor::ArrivalProcess::parse(&a).map_err(err)?;
            }
            "--plan" => opts.plan = true,
            "--precision" => {
                let p: f64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--precision requires a number (e.g. 0.02 for ±2%)"))?;
                if !(p > 0.0 && p < 1.0) {
                    return Err(err("--precision must be in (0, 1)"));
                }
                opts.precision = Some(p);
            }
            "--budget" => {
                let b: u64 = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--budget requires an integer (total invocations)"))?;
                if b == 0 {
                    return Err(err("--budget must be at least 1"));
                }
                opts.budget = Some(b);
            }
            "--plan-only" => opts.plan_only = true,
            "--max-cells" => {
                let m: usize = next_value(arg, &mut it)?
                    .parse()
                    .map_err(|_| err("--max-cells requires an integer"))?;
                if m == 0 {
                    return Err(err("--max-cells must be at least 1"));
                }
                opts.max_cells = Some(m);
            }
            "--baseline-json" => opts.baseline_json = Some(next_value(arg, &mut it)?),
            "--store-url" => {
                let url = next_value(arg, &mut it)?;
                if url
                    .trim()
                    .trim_start_matches("http://")
                    .trim_end_matches('/')
                    .is_empty()
                {
                    return Err(err("--store-url requires a host:port address"));
                }
                opts.store_url = Some(url);
            }
            "--spool" => opts.spool = Some(next_value(arg, &mut it)?),
            "--listen" => opts.listen = next_value(arg, &mut it)?,
            "--verify" => opts.verify = true,
            "--sizes" => {
                let mut sizes = Vec::new();
                for s in next_value(arg, &mut it)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    sizes.push(match s {
                        "small" => Size::Small,
                        "default" => Size::Default,
                        "large" => Size::Large,
                        other => return Err(err(format!("unknown size '{other}' in --sizes"))),
                    });
                }
                if sizes.is_empty() {
                    return Err(err("--sizes requires a comma-separated list"));
                }
                opts.sizes = Some(sizes);
            }
            "--manifest" => opts.manifest = Some(next_value(arg, &mut it)?),
            "--help" | "-h" => positional.push("help".to_string()),
            other if other.starts_with('-') => {
                return Err(err(format!("unknown flag '{other}'")));
            }
            _ => positional.push(arg.clone()),
        }
    }

    let mut pos = positional.into_iter();
    let command = match pos.next().as_deref() {
        None | Some("help") | Some("--help") => Command::Help,
        Some("list") => Command::List,
        Some("suite") => Command::Suite,
        Some("characterize") => Command::Characterize {
            benchmark: pos
                .next()
                .ok_or_else(|| err("characterize needs a benchmark name"))?,
        },
        Some("measure") => Command::Measure {
            benchmark: pos
                .next()
                .ok_or_else(|| err("measure needs a benchmark name"))?,
        },
        Some("compare") => Command::Compare {
            benchmark: pos
                .next()
                .ok_or_else(|| err("compare needs a benchmark name"))?,
        },
        Some("warmup") => Command::Warmup {
            benchmark: pos
                .next()
                .ok_or_else(|| err("warmup needs a benchmark name"))?,
        },
        Some("run") => Command::Run {
            path: pos.next().ok_or_else(|| err("run needs a file path"))?,
        },
        Some("disasm") => Command::Disasm {
            path: pos.next().ok_or_else(|| err("disasm needs a file path"))?,
        },
        Some("trace-summary") => Command::TraceSummary {
            path: pos
                .next()
                .ok_or_else(|| err("trace-summary needs a trace file path"))?,
        },
        Some("self-test") => Command::SelfTest,
        Some("archive") => Command::Archive {
            benchmark: pos.next(),
        },
        Some("history") => Command::History {
            benchmark: pos
                .next()
                .ok_or_else(|| err("history needs a benchmark name"))?,
        },
        Some("check") => Command::Check {
            benchmark: pos.next(),
        },
        Some("trend") => Command::Trend {
            benchmark: pos.next(),
        },
        Some("campaign") => Command::Campaign,
        Some("plan") => Command::Plan,
        Some("serve") => Command::Serve,
        Some("verify") => Command::Verify,
        Some(other) => return Err(err(format!("unknown command '{other}'"))),
    };
    if let Some(extra) = pos.next() {
        return Err(err(format!("unexpected argument '{extra}'")));
    }
    if opts.seeds.is_some() && opts.repeats.is_some() {
        return Err(err("--seeds and --repeats are mutually exclusive"));
    }
    if opts.store_url.is_some() && opts.baseline_json.is_some() {
        return Err(err(
            "--baseline-json and --store-url are mutually exclusive (the server owns the baseline)",
        ));
    }
    if opts.store_url.is_some() && opts.alerts {
        return Err(err(
            "--alerts needs the local archive; use `trend` against --store-url instead",
        ));
    }
    // Reject invalid experiment shapes at the CLI boundary (exit 2) instead
    // of letting Runner::new fail later with exit 1.
    let probe = {
        let mut cfg = rigor::ExperimentConfig::default()
            .with_invocations(opts.invocations)
            .with_iterations(opts.iterations)
            .with_confidence(opts.confidence);
        if let Some(q) = opts.quarantine_threshold {
            cfg = cfg.with_quarantine_threshold(q);
        }
        cfg
    };
    probe.validate().map_err(|e| err(e.to_string()))?;
    Ok((command, opts))
}

/// The usage text printed by `rigor help`.
pub const USAGE: &str = "\
rigor — rigorous benchmarking for Python-like workloads

USAGE:
    rigor <command> [options]

COMMANDS:
    list                      list the benchmark suite
    characterize <benchmark>  dynamic-execution profile of one benchmark
    measure <benchmark>       steady-state mean with CI on one engine
    compare <benchmark>       interp-vs-JIT speedup with CI
    suite                     full-suite comparison (the headline experiment)
    warmup <benchmark>        per-invocation warmup curves + classification
    run <file>                execute a MiniPy source file
    disasm <file>             show a MiniPy file's bytecode
    trace-summary <file>      summarize an event trace written by --trace
    self-test                 exercise the fault-tolerance machinery under
                              deterministic fault injection
    archive [benchmark]       measure (default: whole suite) and persist the
                              run to the results archive
    history <benchmark>       trend table over the archived runs of one
                              benchmark
    check [benchmark]         regression gate against an archived baseline;
                              exit 0 = no significant regression, 1 = regressed
    trend [benchmark]         changepoint analysis over the archived history;
                              exit 0 = stable, 1 = significant shift at HEAD
    campaign                  execute a benchmarks × engines × variants ×
                              seeds grid on a worker pool, streaming every
                              cell into the results archive
    plan                      precision-attainment report over an archived
                              campaign: achieved half-widths and the next
                              refinement allocation
    serve                     run the shared archive service over one store
    verify                    run the differential verification grid
                              (workload × size × engine × seed) against the
                              golden checksum manifest; exit 0 = all cells
                              match, 1 = a mismatch or engine divergence
    help                      this message

OPTIONS:
    -n, --invocations <N>     VM invocations (default 10)
    -i, --iterations <M>      iterations per invocation (default 30)
    --engine <interp|jit>     engine for measure/warmup/run (default interp)
    --size <small|default|large>
    --seed <N|0xHEX>          master experiment seed
    --confidence <0.xx>       confidence level (default 0.95)
    --json <file>             export measurements as JSON
    --csv <file>              export measurements as CSV
    --progress                live per-invocation progress on stderr
    -q, --quiet               suppress progress and advisory output
    --trace <file>            stream experiment events as JSONL

FAULT TOLERANCE:
    --deadline-ns <N>         virtual-time deadline per invocation attempt
    --fuel <N>                step budget (bytecode ops) per attempt
    --max-retries <N>         retries before censoring a failed invocation
    --quarantine-threshold <0.xx>
                              censored fraction that quarantines a benchmark
    --journal <file>          checkpoint finished invocations as JSONL
                              (measure only)
    --resume <file>           replay a checkpoint journal, run only the
                              missing invocations (measure only)

RESULTS ARCHIVE:
    --store <dir>             archive directory (default .rigor-store)
    --label <text>            label recorded with an archived run
    --baseline <ref>          baseline for check: last (default), last-N
                              (pooled), segment (current trend segment),
                              a run id prefix, or a label
    --fdr <q>                 FDR level on corrected p-values (default 0.05)
    --max-regression <pct>    tolerated slowdown in percent (default 0)
    --correction <bh|holm>    multiple-comparison correction (default bh)
    --baseline-json <file>    gate against measurements exported as JSON
                              instead of an archived baseline (check)
    --verify                  check archive integrity instead of measuring
                              (archive); reports line and byte offset of
                              every corrupt record

SHARED ARCHIVE SERVICE:
    --listen <host:port>      serve's listen address (default 127.0.0.1:7878)
    --store-url <host:port>   talk to a shared archive service instead of
                              the local --store directory (archive, history,
                              check, trend, campaign)
    --spool <dir>             write-ahead spool for uploads the server could
                              not take (campaign; default <store>/spool)

CAMPAIGN ORCHESTRATION:
    --benchmarks <a,b,...>    benchmark axis (default: the whole suite)
    --engines <interp,jit>    engine axis (default: interp,jit)
    --variants <NxM,...>      invocations-x-iterations axis (default: -n/-i)
    --seeds <a,b,...>         explicit seed axis (default: --seed)
    --repeats <N>             N consecutive seeds from --seed (excludes
                              --seeds)
    --workers <N>             worker threads (default 4)
    --arrival <spec>          inter-cell arrival process: immediate (default),
                              uniform:MS, or poisson:MS mean delay
    --plan                    print the cell grid without executing it
    --max-cells <N>           stop after N cells (campaign stays resumable)
    --resume <file>           resume a torn campaign from its journal

ADAPTIVE PRECISION:
    --precision <0.xx>        target relative CI half-width per cell (0.02 =
                              ±2%); turns the campaign into a feedback-driven
                              scheduler that pilots every cell, then grants
                              invocations where the CI is widest
    --budget <N>              global invocation budget across the grid;
                              when it binds, remaining invocations are split
                              σ-proportionally (Neyman) across unmet cells
    --plan-only               run only the pilot round and print the
                              allocation table; nothing is archived

TREND ANALYSIS:
    --min-segment <N>         minimum runs per trend segment (default 2)
    --penalty <auto|bic|F>    segmentation penalty: stability-swept (auto,
                              the default), plain BIC, or an explicit factor
    --alerts                  annotate `history` output with detected shifts

DIFFERENTIAL VERIFICATION:
    --manifest <file>         golden checksum manifest (default
                              tests/fixtures/suite_checksums.json; regenerate
                              with BLESS=1 rigor verify)
    --sizes <small,default,large>
                              size axis of the grid (default: all three)
    --seeds <a,b,...>         seed axis of the grid (default: 1,2,3)
    --workers <N>             worker threads (default 4)
    --json <file>             write the verification report as JSON
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_measure_with_flags() {
        let (cmd, opts) = parse_args(&argv(
            "measure sieve -n 5 -i 12 --engine jit --size small --seed 0xff",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Measure {
                benchmark: "sieve".into()
            }
        );
        assert_eq!(opts.invocations, 5);
        assert_eq!(opts.iterations, 12);
        assert!(matches!(opts.engine, EngineKind::Jit(_)));
        assert_eq!(opts.size, Size::Small);
        assert_eq!(opts.seed, 0xff);
    }

    #[test]
    fn flags_may_precede_the_command() {
        let (cmd, opts) = parse_args(&argv("--seed 9 compare leibniz")).unwrap();
        assert_eq!(
            cmd,
            Command::Compare {
                benchmark: "leibniz".into()
            }
        );
        assert_eq!(opts.seed, 9);
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_args(&argv("")).unwrap().0, Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap().0, Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap().0, Command::Help);
    }

    #[test]
    fn missing_values_and_unknowns_error() {
        assert!(parse_args(&argv("measure")).is_err());
        assert!(parse_args(&argv("measure sieve --invocations")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("measure sieve --engine pypy")).is_err());
        assert!(parse_args(&argv("measure sieve extra")).is_err());
        assert!(parse_args(&argv("measure sieve --wat 3")).is_err());
    }

    #[test]
    fn confidence_bounds() {
        assert!(parse_args(&argv("suite --confidence 0.99")).is_ok());
        assert!(parse_args(&argv("suite --confidence 1.5")).is_err());
        assert!(parse_args(&argv("suite --confidence 0.2")).is_err());
    }

    #[test]
    fn export_flags() {
        let (_, opts) = parse_args(&argv("measure sieve --json out.json --csv out.csv")).unwrap();
        assert_eq!(opts.json_out.as_deref(), Some("out.json"));
        assert_eq!(opts.csv_out.as_deref(), Some("out.csv"));
    }

    #[test]
    fn observability_flags() {
        let (cmd, opts) =
            parse_args(&argv("measure sieve --progress --trace t.jsonl --quiet")).unwrap();
        assert_eq!(
            cmd,
            Command::Measure {
                benchmark: "sieve".into()
            }
        );
        assert!(opts.progress);
        assert!(opts.quiet);
        assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
        assert!(parse_args(&argv("measure sieve --trace")).is_err());
    }

    #[test]
    fn trace_summary_takes_a_path() {
        assert_eq!(
            parse_args(&argv("trace-summary t.jsonl")).unwrap().0,
            Command::TraceSummary {
                path: "t.jsonl".into()
            }
        );
        assert!(parse_args(&argv("trace-summary")).is_err());
    }

    #[test]
    fn fault_tolerance_flags() {
        let (_, opts) = parse_args(&argv(
            "measure sieve --deadline-ns 5e7 --fuel 100000 --max-retries 3 \
             --quarantine-threshold 0.25 --journal j.jsonl --resume old.jsonl",
        ))
        .unwrap();
        assert_eq!(opts.deadline_ns, Some(5.0e7));
        assert_eq!(opts.fuel, Some(100_000));
        assert_eq!(opts.max_retries, Some(3));
        assert_eq!(opts.quarantine_threshold, Some(0.25));
        assert_eq!(opts.journal.as_deref(), Some("j.jsonl"));
        assert_eq!(opts.resume.as_deref(), Some("old.jsonl"));
    }

    #[test]
    fn fault_tolerance_flags_validate_values() {
        assert!(parse_args(&argv("measure sieve --deadline-ns -1")).is_err());
        assert!(parse_args(&argv("measure sieve --deadline-ns nan")).is_err());
        assert!(parse_args(&argv("measure sieve --fuel 0")).is_err());
        assert!(parse_args(&argv("measure sieve --max-retries x")).is_err());
        assert!(parse_args(&argv("measure sieve --quarantine-threshold 1.5")).is_err());
        assert!(parse_args(&argv("measure sieve --journal")).is_err());
        assert!(parse_args(&argv("measure sieve --resume")).is_err());
    }

    #[test]
    fn archive_history_check_parse() {
        assert_eq!(
            parse_args(&argv("archive")).unwrap().0,
            Command::Archive { benchmark: None }
        );
        assert_eq!(
            parse_args(&argv("archive sieve --label nightly"))
                .unwrap()
                .0,
            Command::Archive {
                benchmark: Some("sieve".into())
            }
        );
        assert_eq!(
            parse_args(&argv("history sieve")).unwrap().0,
            Command::History {
                benchmark: "sieve".into()
            }
        );
        assert!(parse_args(&argv("history")).is_err());
        assert_eq!(
            parse_args(&argv("check")).unwrap().0,
            Command::Check { benchmark: None }
        );
        assert!(parse_args(&argv("archive sieve extra")).is_err());
    }

    #[test]
    fn store_flags_parse_and_validate() {
        let (_, opts) = parse_args(&argv(
            "check --store /tmp/s --baseline last-3 --fdr 0.1 \
             --max-regression 2.5 --correction holm --label tag",
        ))
        .unwrap();
        assert_eq!(opts.store, "/tmp/s");
        assert_eq!(opts.baseline.as_deref(), Some("last-3"));
        assert_eq!(opts.fdr, Some(0.1));
        assert_eq!(opts.max_regression_pct, Some(2.5));
        assert_eq!(opts.correction.as_deref(), Some("holm"));
        assert_eq!(opts.label.as_deref(), Some("tag"));
        // Defaults.
        let (_, opts) = parse_args(&argv("check")).unwrap();
        assert_eq!(opts.store, ".rigor-store");
        assert_eq!(opts.baseline, None);
        // Validation.
        assert!(parse_args(&argv("check --fdr 0")).is_err());
        assert!(parse_args(&argv("check --fdr 1.5")).is_err());
        assert!(parse_args(&argv("check --max-regression -1")).is_err());
        assert!(parse_args(&argv("check --correction nope")).is_err());
        assert!(parse_args(&argv("check --baseline")).is_err());
    }

    #[test]
    fn trend_flags_parse_and_validate() {
        assert_eq!(
            parse_args(&argv("trend")).unwrap().0,
            Command::Trend { benchmark: None }
        );
        let (cmd, opts) =
            parse_args(&argv("trend sieve --min-segment 3 --penalty bic --alerts")).unwrap();
        assert_eq!(
            cmd,
            Command::Trend {
                benchmark: Some("sieve".into())
            }
        );
        assert_eq!(opts.min_segment, Some(3));
        assert_eq!(opts.penalty, Some(rigor::Penalty::Bic));
        assert!(opts.alerts);
        let (_, opts) = parse_args(&argv("trend --penalty 2.5")).unwrap();
        assert_eq!(opts.penalty, Some(rigor::Penalty::Factor(2.5)));
        let (_, opts) = parse_args(&argv("history sieve --alerts")).unwrap();
        assert!(opts.alerts);
        // Validation: bad penalties and a zero minimum are usage errors.
        assert!(parse_args(&argv("trend --penalty bogus")).is_err());
        assert!(parse_args(&argv("trend --penalty -1")).is_err());
        assert!(parse_args(&argv("trend --penalty 0")).is_err());
        assert!(parse_args(&argv("trend --penalty nan")).is_err());
        assert!(parse_args(&argv("trend --min-segment 0")).is_err());
        assert!(parse_args(&argv("trend --min-segment x")).is_err());
        assert!(parse_args(&argv("trend sieve extra")).is_err());
    }

    #[test]
    fn campaign_flags_parse_and_validate() {
        let (cmd, opts) = parse_args(&argv(
            "campaign --benchmarks sieve,nbody --engines interp,jit \
             --variants 2x3,5x10 --seeds 1,2,0x10 --workers 2 \
             --arrival poisson:5 --max-cells 3 --plan",
        ))
        .unwrap();
        assert_eq!(cmd, Command::Campaign);
        assert_eq!(
            opts.benchmarks,
            Some(vec!["sieve".to_string(), "nbody".to_string()])
        );
        let engines = opts.engines.unwrap();
        assert_eq!(engines.len(), 2);
        assert!(matches!(engines[0], EngineKind::Interp));
        assert!(matches!(engines[1], EngineKind::Jit(_)));
        let variants = opts.variants.unwrap();
        assert_eq!(variants[0].invocations, 2);
        assert_eq!(variants[1].iterations, 10);
        assert_eq!(opts.seeds, Some(vec![1, 2, 0x10]));
        assert_eq!(opts.workers, 2);
        assert_eq!(
            opts.arrival,
            rigor::ArrivalProcess::Poisson { mean_ms: 5.0 }
        );
        assert_eq!(opts.max_cells, Some(3));
        assert!(opts.plan);

        let (_, opts) = parse_args(&argv("campaign --repeats 4")).unwrap();
        assert_eq!(opts.repeats, Some(4));
        assert_eq!(opts.workers, 4, "default worker count");

        assert!(parse_args(&argv("campaign --seeds 1 --repeats 2")).is_err());
        assert!(parse_args(&argv("campaign --engines pypy")).is_err());
        assert!(parse_args(&argv("campaign --variants 2by3")).is_err());
        assert!(parse_args(&argv("campaign --workers 0")).is_err());
        assert!(parse_args(&argv("campaign --repeats 0")).is_err());
        assert!(parse_args(&argv("campaign --max-cells 0")).is_err());
        assert!(parse_args(&argv("campaign --arrival sometimes")).is_err());
        assert!(parse_args(&argv("campaign extra")).is_err());
    }

    #[test]
    fn adaptive_precision_flags_parse_and_validate() {
        let (cmd, opts) =
            parse_args(&argv("campaign --precision 0.02 --budget 500 --plan-only")).unwrap();
        assert_eq!(cmd, Command::Campaign);
        assert_eq!(opts.precision, Some(0.02));
        assert_eq!(opts.budget, Some(500));
        assert!(opts.plan_only);

        assert_eq!(parse_args(&argv("plan")).unwrap().0, Command::Plan);
        let (_, opts) = parse_args(&argv("plan --precision 0.05 --store /tmp/s")).unwrap();
        assert_eq!(opts.precision, Some(0.05));
        assert_eq!(opts.store, "/tmp/s");

        assert!(parse_args(&argv("campaign --precision 0")).is_err());
        assert!(parse_args(&argv("campaign --precision 1")).is_err());
        assert!(parse_args(&argv("campaign --precision lots")).is_err());
        assert!(parse_args(&argv("campaign --budget 0")).is_err());
        assert!(parse_args(&argv("campaign --budget")).is_err());
        assert!(parse_args(&argv("plan extra")).is_err());
    }

    #[test]
    fn invalid_experiment_shapes_are_usage_errors() {
        assert!(parse_args(&argv("measure sieve -n 0")).is_err());
        assert!(parse_args(&argv("suite -i 0")).is_err());
        assert!(parse_args(&argv("campaign -n 0")).is_err());
    }

    #[test]
    fn verify_flags_parse() {
        let (cmd, opts) = parse_args(&argv(
            "verify --sizes small,large --seeds 1,2 --manifest m.json --workers 8",
        ))
        .unwrap();
        assert_eq!(cmd, Command::Verify);
        assert_eq!(opts.sizes, Some(vec![Size::Small, Size::Large]));
        assert_eq!(opts.seeds, Some(vec![1, 2]));
        assert_eq!(opts.manifest.as_deref(), Some("m.json"));
        assert_eq!(opts.workers, 8);

        let (cmd, opts) = parse_args(&argv("verify")).unwrap();
        assert_eq!(cmd, Command::Verify);
        assert_eq!(opts.sizes, None, "default: all three sizes");
        assert_eq!(opts.manifest, None, "default: the committed fixture");

        assert!(parse_args(&argv("verify --sizes huge")).is_err());
        assert!(parse_args(&argv("verify --sizes")).is_err());
        assert!(parse_args(&argv("verify extra")).is_err());
    }

    #[test]
    fn check_baseline_json_parses() {
        let (_, opts) = parse_args(&argv("check --baseline-json BENCH.json")).unwrap();
        assert_eq!(opts.baseline_json.as_deref(), Some("BENCH.json"));
        assert!(parse_args(&argv("check --baseline-json")).is_err());
    }

    #[test]
    fn serve_and_remote_store_flags_parse() {
        let (cmd, opts) = parse_args(&argv("serve --listen 0.0.0.0:9000 --store /tmp/s")).unwrap();
        assert_eq!(cmd, Command::Serve);
        assert_eq!(opts.listen, "0.0.0.0:9000");
        assert_eq!(opts.store, "/tmp/s");
        let (_, opts) = parse_args(&argv("serve")).unwrap();
        assert_eq!(opts.listen, "127.0.0.1:7878", "default listen address");

        let (_, opts) = parse_args(&argv(
            "campaign --store-url 127.0.0.1:7878 --spool /tmp/spool",
        ))
        .unwrap();
        assert_eq!(opts.store_url.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(opts.spool.as_deref(), Some("/tmp/spool"));

        let (_, opts) = parse_args(&argv("archive --verify")).unwrap();
        assert!(opts.verify);

        assert!(parse_args(&argv("serve extra")).is_err());
        assert!(parse_args(&argv("campaign --store-url")).is_err());
        assert!(parse_args(&argv("campaign --store-url http://")).is_err());
        // The server owns the baseline and the local-trend annotations.
        assert!(parse_args(&argv("check --store-url h:1 --baseline-json b.json")).is_err());
        assert!(parse_args(&argv("history sieve --store-url h:1 --alerts")).is_err());
    }

    #[test]
    fn self_test_parses() {
        assert_eq!(parse_args(&argv("self-test")).unwrap().0, Command::SelfTest);
        assert!(parse_args(&argv("self-test extra")).is_err());
    }

    #[test]
    fn run_and_disasm_take_paths() {
        assert_eq!(
            parse_args(&argv("run bench.mp")).unwrap().0,
            Command::Run {
                path: "bench.mp".into()
            }
        );
        assert_eq!(
            parse_args(&argv("disasm bench.mp")).unwrap().0,
            Command::Disasm {
                path: "bench.mp".into()
            }
        );
    }
}
