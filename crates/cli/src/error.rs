//! The CLI's typed error surface, replacing ad-hoc boxed errors.
//!
//! Every failure the `rigor` binary can hit maps to one [`CliError`]
//! variant, and each variant maps to a deterministic exit code:
//! usage errors exit 2, runtime errors exit 1 (mirroring conventional
//! Unix tools, and asserted by the integration tests). A misspelled
//! benchmark name is a usage error (exit 2) carrying a typed
//! "did you mean" suggestion.

use std::fmt;

use crate::args::ParseError;
use rigor::CompareError;
use rigor_workloads::UnknownWorkload;

/// Any failure of a `rigor` invocation.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (unknown flag/command, missing value).
    Usage(ParseError),
    /// A benchmark name not present in the suite, with a near-miss
    /// suggestion when one is close enough.
    UnknownBenchmark(UnknownWorkload),
    /// The VM failed (compile error, runtime error, bad fixture source).
    Vm(minipy::MpError),
    /// A statistical comparison could not be carried out.
    Compare(CompareError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// A trace file exists but does not parse as event JSONL.
    Trace {
        /// The trace file path.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// The measurement finished but the benchmark was quarantined: too
    /// many invocations were censored for the numbers to be trusted.
    /// The report is still printed before this error is surfaced.
    Quarantined {
        /// The quarantined benchmark.
        benchmark: String,
        /// How many invocations were censored.
        censored: u32,
        /// How many invocations were requested.
        invocations: u32,
    },
    /// One or more `self-test` scenarios failed.
    SelfTest {
        /// The names of the failing scenarios.
        failed: Vec<String>,
    },
    /// The results archive could not be opened, read or written.
    Store {
        /// The store directory.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// `rigor check` found statistically significant regressions. The
    /// verdict table is still printed before this error is surfaced.
    Regression {
        /// The benchmarks that regressed.
        benchmarks: Vec<String>,
    },
    /// `rigor trend` detected a significant level shift at the head of
    /// one or more benchmark histories. The trend tables are still
    /// printed before this error is surfaced.
    TrendShift {
        /// The benchmarks whose level shifted at HEAD.
        benchmarks: Vec<String>,
    },
    /// A campaign could not run to completion (journal or sink failure,
    /// grid mismatch on resume).
    Campaign(String),
    /// A campaign finished, but some cells failed to measure. The summary
    /// is still printed before this error is surfaced.
    CampaignCells {
        /// Canonical ids of the failed cells.
        failed: Vec<String>,
    },
    /// Talking to a shared archive service (`--store-url`) failed.
    Remote {
        /// The service URL.
        url: String,
        /// The typed client-side failure.
        source: rigor_serve::RemoteError,
    },
    /// `rigor archive --verify` found corruption in the archive. The
    /// per-line findings are printed before this error is surfaced.
    Verify {
        /// The store directory.
        path: String,
        /// How many complete lines failed verification.
        corrupt: usize,
    },
    /// `rigor verify` found cells whose checksum disagreed with the
    /// golden manifest or whose engines diverged. The full report is
    /// printed before this error is surfaced.
    VerifySuite {
        /// Canonical ids (`workload/size/engine/seed`) of the failed cells.
        failed: Vec<String>,
    },
}

impl CliError {
    /// The process exit code this error maps to: 2 for usage errors
    /// (including a misspelled benchmark name), 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::UnknownBenchmark(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::UnknownBenchmark(e) => write!(f, "{e}"),
            CliError::Vm(e) => write!(f, "{e}"),
            CliError::Compare(e) => write!(f, "comparison not possible: {e}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Json(e) => write!(f, "JSON export failed: {e}"),
            CliError::Trace { path, message } => write!(f, "{path}: bad trace: {message}"),
            CliError::Quarantined {
                benchmark,
                censored,
                invocations,
            } => write!(
                f,
                "benchmark '{benchmark}' quarantined: {censored} of {invocations} \
                 invocations censored — do not trust these numbers"
            ),
            CliError::SelfTest { failed } => {
                write!(f, "self-test failed: {}", failed.join(", "))
            }
            CliError::Store { path, message } => write!(f, "{path}: {message}"),
            CliError::Regression { benchmarks } => write!(
                f,
                "regression gate failed: {} benchmark(s) regressed: {}",
                benchmarks.len(),
                benchmarks.join(", ")
            ),
            CliError::TrendShift { benchmarks } => write!(
                f,
                "trend alert: {} benchmark(s) shifted at HEAD: {}",
                benchmarks.len(),
                benchmarks.join(", ")
            ),
            CliError::Campaign(message) => write!(f, "campaign failed: {message}"),
            CliError::CampaignCells { failed } => write!(
                f,
                "campaign finished with {} failed cell(s): {}",
                failed.len(),
                failed.join(", ")
            ),
            CliError::Remote { url, source } => write!(f, "archive service {url}: {source}"),
            CliError::Verify { path, corrupt } => write!(
                f,
                "{path}: archive verification failed: {corrupt} corrupt line(s)"
            ),
            CliError::VerifySuite { failed } => write!(
                f,
                "suite verification failed: {} cell(s): {}",
                failed.len(),
                failed.join(", ")
            ),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(e) => Some(e),
            CliError::UnknownBenchmark(e) => Some(e),
            CliError::Vm(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            CliError::Json(e) => Some(e),
            CliError::Remote { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ParseError> for CliError {
    fn from(e: ParseError) -> CliError {
        CliError::Usage(e)
    }
}

impl From<minipy::MpError> for CliError {
    fn from(e: minipy::MpError) -> CliError {
        CliError::Vm(e)
    }
}

impl From<CompareError> for CliError {
    fn from(e: CompareError) -> CliError {
        CliError::Compare(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> CliError {
        CliError::Json(e)
    }
}

impl From<UnknownWorkload> for CliError {
    fn from(e: UnknownWorkload) -> CliError {
        CliError::UnknownBenchmark(e)
    }
}

impl From<rigor::CampaignError> for CliError {
    fn from(e: rigor::CampaignError) -> CliError {
        match e {
            rigor::CampaignError::UnknownBenchmark(name) => {
                CliError::UnknownBenchmark(UnknownWorkload::of(&name))
            }
            // Bad grid axes, per-cell configs, a zero worker count or an
            // invalid planner are the caller's fault.
            rigor::CampaignError::EmptyAxis(_)
            | rigor::CampaignError::Config { .. }
            | rigor::CampaignError::ZeroWorkers
            | rigor::CampaignError::Planner(_) => CliError::Usage(ParseError(e.to_string())),
            other => CliError::Campaign(other.to_string()),
        }
    }
}

/// Attaches a path to an I/O result (there is no blanket `From` for
/// `io::Error` because the path context is what makes the message useful).
pub fn io_err(path: &str) -> impl Fn(std::io::Error) -> CliError + '_ {
    move |source| CliError::Io {
        path: path.to_string(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        assert_eq!(CliError::Usage(ParseError("x".into())).exit_code(), 2);
        assert_eq!(
            CliError::UnknownBenchmark(UnknownWorkload::of("x")).exit_code(),
            2,
            "a misspelled benchmark is a usage error"
        );
        assert_eq!(
            io_err("f")(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).exit_code(),
            1
        );
        assert_eq!(
            CliError::Trace {
                path: "t".into(),
                message: "m".into()
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Quarantined {
                benchmark: "b".into(),
                censored: 3,
                invocations: 4
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::SelfTest {
                failed: vec!["x".into()]
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Store {
                path: ".rigor-store".into(),
                message: "corrupt".into()
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Regression {
                benchmarks: vec!["sieve".into()]
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::TrendShift {
                benchmarks: vec!["sieve".into()]
            }
            .exit_code(),
            1
        );
        assert_eq!(CliError::Campaign("torn".into()).exit_code(), 1);
        assert_eq!(
            CliError::CampaignCells {
                failed: vec!["sieve/interp/2x3/0".into()]
            }
            .exit_code(),
            1
        );
        // An unreachable archive service is a runtime failure, not usage.
        assert_eq!(
            CliError::Remote {
                url: "127.0.0.1:7878".into(),
                source: rigor_serve::RemoteError::NoSpool {
                    url: "127.0.0.1:7878".into()
                },
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Verify {
                path: ".rigor-store".into(),
                corrupt: 2
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::VerifySuite {
                failed: vec!["sieve/small/interp/1".into()]
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn remote_errors_keep_their_typed_source() {
        let e = CliError::Remote {
            url: "127.0.0.1:7878".into(),
            source: rigor_serve::RemoteError::CircuitOpen {
                url: "127.0.0.1:7878".into(),
                failures: 3,
            },
        };
        assert!(e.to_string().contains("127.0.0.1:7878"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn campaign_errors_map_onto_cli_variants() {
        let e: CliError = rigor::CampaignError::UnknownBenchmark("nope".into()).into();
        assert!(matches!(e, CliError::UnknownBenchmark(ref u) if u.name == "nope"));
        assert_eq!(e.exit_code(), 2, "a misspelled campaign axis is usage");
        let e: CliError = rigor::CampaignError::EmptyAxis("seeds").into();
        assert_eq!(e.exit_code(), 2, "bad grid axes are usage errors");
        let e: CliError = rigor::CampaignError::ZeroWorkers.into();
        assert_eq!(e.exit_code(), 2, "zero workers is a usage error");
        let e: CliError = rigor::CampaignError::Planner("target out of range".into()).into();
        assert_eq!(e.exit_code(), 2, "a bad planner config is a usage error");
        let e: CliError = rigor::CampaignError::Journal("torn".into()).into();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn display_includes_context() {
        let e = io_err("/tmp/x.json")(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "denied",
        ));
        assert!(e.to_string().contains("/tmp/x.json"));
        assert!(CliError::UnknownBenchmark(UnknownWorkload::of("nope"))
            .to_string()
            .contains("nope"));
        // A near miss carries the typed suggestion through to the message.
        let e = CliError::UnknownBenchmark(UnknownWorkload::of("seive"));
        assert!(e.to_string().contains("did you mean 'sieve'"), "{e}");
        let e = CliError::TrendShift {
            benchmarks: vec!["sieve".into(), "nbody".into()],
        };
        assert!(e.to_string().contains("sieve"));
        assert!(e.to_string().contains("2 benchmark(s)"));
    }
}
