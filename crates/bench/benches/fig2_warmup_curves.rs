//! Figure 2 — Warmup curves: per-iteration time, interpreter vs JIT.
//!
//! Prints the mean per-iteration series for four representative benchmarks on
//! both engines. Expected shape: flat interpreter curves; JIT curves start
//! high (profiling + compilation), drop in visible steps, then flatten —
//! except `polymorph`, whose deopt churn keeps perturbing the series.

use rigor::{fmt_ns, sparkline};
use rigor_bench::{banner, interp_config, jit_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const BENCHMARKS: [&str; 4] = ["leibniz", "spectral", "fib_recursive", "polymorph"];

fn main() {
    banner(
        "Figure 2",
        "per-iteration warmup curves, interp vs JIT (mean over invocations)",
    );
    let interp_cfg = interp_config().with_invocations(5).with_iterations(50);
    let jit_cfg = jit_config().with_invocations(5).with_iterations(50);
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        let mi = runner(&interp_cfg).measure(&w).expect("interp run");
        let mj = runner(&jit_cfg).measure(&w).expect("jit run");
        let ci = mi.mean_curve();
        let cj = mj.mean_curve();
        println!("{name}");
        println!(
            "  interp  {}  (iter1 {}, iter50 {})",
            sparkline(&ci),
            fmt_ns(ci[0]),
            fmt_ns(*ci.last().unwrap())
        );
        println!(
            "  jit     {}  (iter1 {}, iter50 {})",
            sparkline(&cj),
            fmt_ns(cj[0]),
            fmt_ns(*cj.last().unwrap())
        );
        let series: Vec<String> = cj
            .iter()
            .take(28)
            .map(|v| format!("{:.0}", v / 1000.0))
            .collect();
        println!("  jit iters 1-28 (us): {}", series.join(" "));
        println!();
    }
    println!("Series shape to check: interp flat; jit starts high and settles; spectral shows a");
    println!("multi-step staircase as its loops and functions compile at different times.");
}
