//! Figure 3 — Warmup-class breakdown per engine.
//!
//! Classifies every per-invocation iteration series of every benchmark
//! (flat / warmup / slowdown / no-steady-state) and prints the per-engine
//! histogram plus the per-benchmark verdicts. Expected shape: the interpreter
//! is overwhelmingly flat; the JIT is mostly warmup with a no-steady-state
//! tail driven by the adversarial workloads.

use rigor::{aggregate_classes, Table, WarmupClass, WarmupClassifier};
use rigor_bench::{banner, bar, interp_config, jit_config};
use rigor_workloads::suite;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

fn main() {
    banner("Figure 3", "warmup classification breakdown per engine");
    let classifier = WarmupClassifier::default();
    let interp_cfg = interp_config().with_iterations(50);
    let jit_cfg = jit_config().with_iterations(50);

    let mut table = Table::new(vec!["benchmark", "interp verdict", "jit verdict"]);
    let mut hist: Vec<(&str, [usize; 4])> = vec![("interp", [0; 4]), ("jit", [0; 4])];
    let idx = |c: WarmupClass| match c {
        WarmupClass::Flat => 0,
        WarmupClass::Warmup => 1,
        WarmupClass::Slowdown => 2,
        WarmupClass::NoSteadyState => 3,
    };

    for w in suite() {
        let mut verdicts = Vec::new();
        for (engine_ix, cfg) in [&interp_cfg, &jit_cfg].into_iter().enumerate() {
            let m = runner(cfg).measure(&w).expect("run");
            let classes: Vec<WarmupClass> = m.series().map(|s| classifier.classify(s)).collect();
            for &c in &classes {
                hist[engine_ix].1[idx(c)] += 1;
            }
            verdicts.push(aggregate_classes(&classes).expect("non-empty").label());
        }
        table.row(vec![
            w.name.to_string(),
            verdicts[0].clone(),
            verdicts[1].clone(),
        ]);
    }
    println!("{table}");

    println!("Per-invocation class histogram (each cell = invocation series):");
    for (engine, counts) in &hist {
        let total: usize = counts.iter().sum();
        println!("  {engine}:");
        for (i, label) in ["flat", "warmup", "slowdown", "no-steady-state"]
            .iter()
            .enumerate()
        {
            let frac = counts[i] as f64 / total as f64;
            println!(
                "    {label:<16} {:>5.1}%  {}",
                frac * 100.0,
                bar(frac, 1.0, 40)
            );
        }
    }
}
