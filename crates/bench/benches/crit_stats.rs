//! Criterion micro-benchmarks for the statistics substrate itself:
//! bootstrap resampling, changepoint segmentation and t-quantile inversion
//! on realistic series sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigor_stats::changepoint::SegmentConfig;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let level = if i < n / 4 { 50.0 } else { 10.0 };
        out.push(level + rng.gen_range(-0.5..0.5));
    }
    out
}

fn bench_stats(c: &mut Criterion) {
    let xs = series(1_000, 1);
    c.bench_function("bootstrap_mean_ci/1k samples/2k resamples", |b| {
        b.iter(|| rigor_stats::bootstrap_mean_ci(black_box(&xs), 0.95, 2_000, 42))
    });

    let long = series(10_000, 2);
    c.bench_function("changepoint_segment/10k points", |b| {
        b.iter(|| rigor_stats::segment(black_box(&long), &SegmentConfig::default()))
    });

    c.bench_function("t_quantile/df=9", |b| {
        b.iter(|| rigor_stats::t_quantile(black_box(0.975), black_box(9.0)))
    });

    c.bench_function("mean_ci/1k samples", |b| {
        b.iter(|| rigor_stats::mean_ci(black_box(&xs), 0.95))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stats
}
criterion_main!(benches);
