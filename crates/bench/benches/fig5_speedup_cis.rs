//! Figure 5 — The headline result: JIT-over-interpreter speedups with 95%
//! confidence intervals, per benchmark, plus the suite geometric mean.
//!
//! Expected shape: order-of-magnitude wins on tight numeric loops (leibniz,
//! nbody, sieve, matmul); moderate wins on control/string workloads; ~1x or
//! below on startup-dominated and allocation-bound workloads; `polymorph`
//! either converges to a modest number or is reported as non-converged.

use rigor::{compare_suite, fmt_ci, SteadyStateDetector, Table};
use rigor_bench::{banner, bar, interp_config, jit_config};
use rigor_workloads::suite;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

fn main() {
    banner(
        "Figure 5",
        "JIT speedup over interpreter with 95% CIs (steady state)",
    );
    let interp_cfg = interp_config().with_invocations(15);
    let jit_cfg = jit_config().with_invocations(15);
    let mut pairs = Vec::new();
    for w in suite() {
        let base = runner(&interp_cfg).measure(&w).expect("interp run");
        let cand = runner(&jit_cfg).measure(&w).expect("jit run");
        assert_eq!(
            base.invocations[0].checksum, cand.invocations[0].checksum,
            "engines must agree semantically on {}",
            w.name
        );
        pairs.push((base, cand));
    }
    let s = compare_suite(&pairs, &SteadyStateDetector::robust_tail(), 0.95);

    let mut sorted = s.per_benchmark.clone();
    sorted.sort_by(|a, b| b.speedup.estimate.partial_cmp(&a.speedup.estimate).unwrap());
    let max = sorted.first().map(|r| r.speedup.estimate).unwrap_or(1.0);
    let mut table = Table::new(vec!["benchmark", "speedup [95% CI]", "signif", "p", ""]);
    for r in &sorted {
        table.row(vec![
            r.benchmark.clone(),
            fmt_ci(&r.speedup),
            if r.significant {
                "yes".into()
            } else {
                "no".into()
            },
            format!("{:.1e}", r.p_value),
            bar(r.speedup.estimate, max, 36),
        ]);
    }
    println!("{table}");
    for (name, err) in &s.failures {
        println!("  not converged: {name} ({err})");
    }
    if let Some(g) = &s.geomean {
        println!("\nSuite geometric-mean speedup: {}", fmt_ci(g));
    }
}
