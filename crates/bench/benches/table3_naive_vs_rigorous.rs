//! Table 3 — What the methodological shortcuts get wrong.
//!
//! Ground truth: the rigorous speedup verdict from the full measurement
//! (steady-state means over all invocations, bootstrap CI). Each naive
//! scheme is then applied to every single invocation as an independent
//! "study", and scored: how often does its conclusion contradict the truth,
//! and how large is its error? Expected shape: single-iteration timing is
//! catastrophically wrong on JIT comparisons (it times the compiler);
//! best-of-N and warmup-inclusive means are systematically biased; even
//! one-process steady means remain overconfident.

use rigor::{all_schemes, compare, evaluate_scheme, verdict_from_ci, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config, jit_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const BENCHMARKS: [&str; 10] = [
    "leibniz",
    "sieve",
    "spectral",
    "fib_recursive",
    "dict_churn",
    "word_count",
    "raytrace_lite",
    "polymorph",
    "gc_pressure",
    "startup_heavy",
];
const MARGIN: f64 = 0.05;

fn main() {
    banner(
        "Table 3",
        "naive methodologies vs rigorous ground truth (interp vs JIT)",
    );
    let interp_cfg = interp_config().with_invocations(20);
    let jit_cfg = jit_config().with_invocations(20);
    let det = SteadyStateDetector::robust_tail();

    // scheme -> (sum wrong rate, sum median error, n benchmarks)
    let schemes = all_schemes();
    let mut acc = vec![(0.0f64, 0.0f64, 0usize); schemes.len()];
    let mut per_bench = Table::new(vec![
        "benchmark",
        "true speedup",
        "single-iter wrong%",
        "best-of-5 wrong%",
        "warmup-mean wrong%",
        "1-proc-steady wrong%",
    ]);
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        let base = runner(&interp_cfg).measure(&w).expect("interp run");
        let cand = runner(&jit_cfg).measure(&w).expect("jit run");
        let truth = match compare(&base, &cand, &det, 0.95) {
            Ok(t) => t,
            Err(e) => {
                println!("  skipping {name}: {e}");
                continue;
            }
        };
        let verdict = verdict_from_ci(&truth.speedup, MARGIN);
        let mut cells = vec![name.to_string(), format!("{:.2}x", truth.speedup.estimate)];
        for (i, scheme) in schemes.iter().enumerate() {
            let e = evaluate_scheme(
                *scheme,
                &base,
                &cand,
                truth.speedup.estimate,
                verdict,
                MARGIN,
            );
            acc[i].0 += e.wrong_conclusion_rate;
            acc[i].1 += e.median_abs_rel_error;
            acc[i].2 += 1;
            cells.push(format!("{:.0}%", e.wrong_conclusion_rate * 100.0));
        }
        per_bench.row(cells);
    }
    println!("{per_bench}");

    let mut summary = Table::new(vec![
        "scheme",
        "mean wrong-conclusion rate",
        "mean of median |rel err|",
    ]);
    for (i, scheme) in schemes.iter().enumerate() {
        let n = acc[i].2.max(1) as f64;
        summary.row(vec![
            scheme.label(),
            format!("{:.1}%", acc[i].0 / n * 100.0),
            format!("{:.1}%", acc[i].1 / n * 100.0),
        ]);
    }
    println!("{summary}");
    println!("Rigorous baseline (by construction): 0% wrong at the ground-truth margin.");
}
