//! Figure 4 — Intra- vs inter-invocation variance decomposition.
//!
//! For every benchmark on the interpreter engine with all nondeterminism
//! sources active: the within-process CoV, the across-process CoV of the
//! steady means, and the between-invocation variance fraction. Expected
//! shape: inter-invocation variation dominates for most benchmarks (layout
//! factor + hash seed are per-process constants), with `gc_pressure` as the
//! intra-heavy counterexample.

use rigor::{common_steady_start, decompose, SteadyStateDetector, Table};
use rigor_bench::{banner, bar, interp_config};
use rigor_workloads::suite;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

fn main() {
    banner(
        "Figure 4",
        "intra- vs inter-invocation variance (interp, all noise on)",
    );
    let cfg = interp_config().with_invocations(20).with_iterations(30);
    let det = SteadyStateDetector::robust_tail();
    let mut table = Table::new(vec![
        "benchmark",
        "intra CoV",
        "inter CoV",
        "between-frac",
        "inter/intra",
        "",
    ]);
    for w in suite() {
        let m = runner(&cfg).measure(&w).expect("run");
        let start = common_steady_start(m.series(), &det).unwrap_or(0);
        let Some(d) = decompose(&m, start) else {
            continue;
        };
        let ratio = d.inter_cov / d.intra_cov.max(1e-12);
        let ratio_cell = if ratio > 99.0 {
            ">99x".to_string()
        } else {
            format!("{ratio:.1}x")
        };
        table.row(vec![
            w.name.to_string(),
            format!("{:.3}%", d.intra_cov * 100.0),
            format!("{:.3}%", d.inter_cov * 100.0),
            format!("{:.2}", d.between_fraction),
            ratio_cell,
            bar(d.between_fraction, 1.0, 30),
        ]);
    }
    println!("{table}");
    println!("between-frac near 1.0 = fresh-process effects dominate; repeated iterations in one");
    println!(
        "process cannot reveal the true variance — the core argument for multiple invocations."
    );
}
