//! Figure 8 — Sequential sampling: invocations needed to reach a ±2% CI.
//!
//! Runs the sequential-stopping procedure on every benchmark. Expected
//! shape: quiet numeric kernels stop at the minimum; seed-sensitive dict
//! workloads and the GC-bound workload need markedly more invocations; some
//! may exhaust the budget without meeting the target.

use rigor::{run_until_precise, SequentialPlan, SteadyStateDetector, Table};
use rigor_bench::{banner, bar, interp_config};
use rigor_workloads::{suite, Size};

fn main() {
    banner(
        "Figure 8",
        "invocations needed for a +/-0.5% CI on the steady mean (interp)",
    );
    let det = SteadyStateDetector::robust_tail();
    let plan = SequentialPlan {
        target_rel_half_width: 0.005,
        min_invocations: 5,
        max_invocations: 60,
        batch: 5,
    };
    let cfg = interp_config().with_iterations(25);
    let mut table = Table::new(vec!["benchmark", "invocations", "achieved +/-", "met", ""]);
    for w in suite() {
        let r =
            run_until_precise(&w.source(Size::Default), w.name, &cfg, &det, &plan).expect("run");
        table.row(vec![
            w.name.to_string(),
            r.invocations_used.to_string(),
            r.achieved_rel_half_width
                .map_or("n/a".to_string(), |rel| format!("{:.2}%", rel * 100.0)),
            if r.target_met {
                "yes".into()
            } else {
                "NO".into()
            },
            bar(r.invocations_used as f64, plan.max_invocations as f64, 30),
        ]);
    }
    println!("{table}");
    println!("A fixed 'always 5 invocations' design would be over-precise for some benchmarks");
    println!("and badly under-precise for others; sequential stopping adapts per benchmark.");
}
