//! Ablation — JIT hot-threshold sensitivity.
//!
//! DESIGN.md models the JIT's compile trigger as a back-edge/entry counter
//! threshold (PyPy's is 1039; ours defaults to 500). This ablation sweeps it
//! and reports, per threshold: when steady state is reached, how many regions
//! get compiled, and the steady-state speedup. Expected shape: a low
//! threshold compiles everything early (short warmup, but compile time and
//! marginal regions included); a very high threshold delays or entirely
//! forfeits compilation (long warmup, lower realized speedup on 40-iteration
//! runs).

use minipy::{EngineKind, JitConfig};
use rigor::{compare, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config, jit_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const THRESHOLDS: [u32; 5] = [50, 200, 500, 2_000, 20_000];
const BENCHMARKS: [&str; 3] = ["spectral", "fib_recursive", "dict_churn"];

fn main() {
    banner(
        "Ablation A1",
        "JIT hot-threshold sweep (compile early vs compile late)",
    );
    let det = SteadyStateDetector::robust_tail();
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        let base = runner(&interp_config()).measure(&w).expect("interp");
        let mut table = Table::new(vec![
            "hot threshold",
            "steady from iter",
            "compiles/invocation",
            "steady speedup",
        ]);
        for threshold in THRESHOLDS {
            let mut cfg = jit_config().with_iterations(40);
            cfg.engine = EngineKind::Jit(JitConfig {
                hot_threshold: threshold,
                ..JitConfig::default()
            });
            let m = runner(&cfg).measure(&w).expect("jit");
            let steady = rigor::common_steady_start(m.series(), &det)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into());
            let compiles: f64 = m
                .invocations
                .iter()
                .map(|r| r.jit_compiles as f64)
                .sum::<f64>()
                / m.n_invocations() as f64;
            let speedup = match compare(&base, &m, &det, 0.95) {
                Ok(r) => format!("{:.2}x", r.speedup.estimate),
                Err(_) => "n/a".into(),
            };
            table.row(vec![
                threshold.to_string(),
                steady,
                format!("{compiles:.1}"),
                speedup,
            ]);
        }
        println!("{name}\n{table}");
    }
    println!("Low thresholds compile marginal code (more compiles, same speedup);");
    println!("very high thresholds leave hot code interpreted within the run.");
}
