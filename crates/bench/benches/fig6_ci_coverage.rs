//! Figure 6 — Empirical coverage of t-based vs bootstrap confidence
//! intervals at small invocation counts.
//!
//! Per-invocation steady means from a real measurement are fitted with a
//! log-normal model (benchmark timing distributions are right-skewed); 1000
//! simulated experiments are drawn at each invocation count and the fraction
//! of 95% CIs containing the model mean is reported. Expected shape: both
//! methods approach 95% by n≈10–20; below that the bootstrap-percentile
//! interval undercovers more than the t interval (a known small-n effect).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigor::{common_steady_start, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config, EVAL_SEED};
use rigor_stats::{bootstrap_bca_ci, bootstrap_mean_ci, mean, mean_ci, std_dev};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const NS: [usize; 5] = [3, 5, 10, 20, 30];
const TRIALS: usize = 1000;

fn main() {
    banner(
        "Figure 6",
        "empirical CI coverage (t vs bootstrap), 1000 trials per point",
    );
    // Fit the invocation-mean distribution from real data.
    let w = find("dict_churn").expect("known benchmark");
    let m = runner(&interp_config().with_invocations(30))
        .measure(&w)
        .expect("run");
    let start = common_steady_start(m.series(), &SteadyStateDetector::robust_tail()).unwrap_or(0);
    let means = m.tail_means(start);
    let logs: Vec<f64> = means.iter().map(|x| x.ln()).collect();
    let (mu, sigma) = (mean(&logs), std_dev(&logs));
    let true_mean = (mu + sigma * sigma / 2.0).exp();
    println!(
        "model: lognormal fitted to {} dict_churn invocation means (mu={:.3}, sigma={:.4})\n",
        means.len(),
        mu,
        sigma
    );

    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    let mut table = Table::new(vec![
        "invocations",
        "t coverage",
        "percentile bootstrap",
        "BCa bootstrap",
    ]);
    for n in NS {
        let mut t_hits = 0usize;
        let mut b_hits = 0usize;
        let mut bca_hits = 0usize;
        for trial in 0..TRIALS {
            let sample: Vec<f64> = (0..n)
                .map(|_| {
                    let z: f64 = {
                        // Box-Muller from two uniforms.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    (mu + sigma * z).exp()
                })
                .collect();
            if let Some(ci) = mean_ci(&sample, 0.95) {
                if ci.contains(true_mean) {
                    t_hits += 1;
                }
            }
            if let Some(ci) = bootstrap_mean_ci(&sample, 0.95, 500, trial as u64) {
                if ci.contains(true_mean) {
                    b_hits += 1;
                }
            }
            if let Some(ci) = bootstrap_bca_ci(&sample, mean, 0.95, 500, trial as u64) {
                if ci.contains(true_mean) {
                    bca_hits += 1;
                }
            }
        }
        table.row(vec![
            n.to_string(),
            format!("{:.1}%", t_hits as f64 / TRIALS as f64 * 100.0),
            format!("{:.1}%", b_hits as f64 / TRIALS as f64 * 100.0),
            format!("{:.1}%", bca_hits as f64 / TRIALS as f64 * 100.0),
        ]);
    }
    println!("{table}");
    println!("Target coverage: 95%. Neither bootstrap is trustworthy below ~10 invocations;");
    println!("BCa is even worse at n=3 (its jackknife acceleration is unstable in tiny");
    println!("samples). The t interval is the reliable default at every size.");
}
