//! Ablation — GC allocation-threshold sensitivity.
//!
//! The heap arms a collection every N allocations (default 8192), and the
//! pause cost scales with live + freed objects. Sweeping N trades pause
//! *frequency* against pause *size*: small thresholds pepper every iteration
//! with small pauses (raising the mean), large thresholds produce rare large
//! spikes (raising the variance). The methodology must be robust across this
//! whole regime — the steady-state detector and CI machinery are exercised
//! at every point.

use rigor::{fmt_ns, precision_of, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const THRESHOLDS: [u64; 4] = [1_024, 8_192, 65_536, 1 << 22];

fn main() {
    banner(
        "Ablation A2",
        "GC threshold sweep: pause frequency vs pause size (gc_pressure)",
    );
    let w = find("gc_pressure").expect("known benchmark");
    let det = SteadyStateDetector::robust_tail();
    let mut table = Table::new(vec![
        "gc threshold",
        "gc cycles/invocation",
        "steady mean",
        "CI half-width",
        "intra CoV",
    ]);
    for threshold in THRESHOLDS {
        let mut cfg = interp_config().with_invocations(12).with_iterations(30);
        cfg.cost = minipy::CostModel::default();
        // The threshold knob lives on the heap; plumb it through the
        // session-level override.
        cfg.gc_threshold_override = Some(threshold);
        let m = runner(&cfg).measure(&w).expect("run");
        let gc: f64 = m
            .invocations
            .iter()
            .map(|r| r.gc_cycles as f64)
            .sum::<f64>()
            / m.n_invocations() as f64;
        let (ci, rel) = precision_of(&m, &det, 0.95);
        let start = rigor::common_steady_start(m.series(), &det).unwrap_or(0);
        let d = rigor::decompose(&m, start);
        table.row(vec![
            threshold.to_string(),
            format!("{gc:.1}"),
            ci.map(|c| fmt_ns(c.estimate)).unwrap_or_else(|| "-".into()),
            rel.map(|r| format!("{:.2}%", r * 100.0))
                .unwrap_or_else(|| "-".into()),
            d.map(|d| format!("{:.2}%", d.intra_cov * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{table}");
    println!("Small thresholds: many small pauses folded into every iteration (higher mean,");
    println!("lower variance). Large thresholds: rare heavy spikes (lower mean, spikier series).");
}
