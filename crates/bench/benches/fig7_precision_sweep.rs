//! Figure 7 — Confidence-interval precision vs experiment design.
//!
//! Sweeps invocation count × iteration count for three benchmarks and
//! reports the relative CI half-width of the steady-state mean. Expected
//! shape: once past warmup, adding *invocations* tightens the CI roughly as
//! 1/sqrt(n) while adding *iterations* saturates quickly — inter-invocation
//! variance is what limits precision.

use rigor::{precision_of, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const BENCHMARKS: [&str; 3] = ["leibniz", "dict_churn", "gc_pressure"];
const INVOCATIONS: [u32; 4] = [3, 5, 10, 20];
const ITERATIONS: [u32; 4] = [10, 20, 40, 80];

fn main() {
    banner(
        "Figure 7",
        "relative CI half-width vs invocations x iterations",
    );
    let det = SteadyStateDetector::robust_tail();
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        let mut table = Table::new(vec![
            "inv \\ iter",
            &ITERATIONS[0].to_string(),
            &ITERATIONS[1].to_string(),
            &ITERATIONS[2].to_string(),
            &ITERATIONS[3].to_string(),
        ]);
        for inv in INVOCATIONS {
            let mut cells = vec![inv.to_string()];
            for iter in ITERATIONS {
                let cfg = interp_config().with_invocations(inv).with_iterations(iter);
                let m = runner(&cfg).measure(&w).expect("run");
                let (_, rel) = precision_of(&m, &det, 0.95);
                cells.push(match rel {
                    Some(r) => format!("{:.2}%", r * 100.0),
                    None => "-".into(),
                });
            }
            table.row(cells);
        }
        println!("{name}\n{table}");
    }
    println!("Read down a column (more invocations): steady ~1/sqrt(n) tightening.");
    println!(
        "Read across a row (more iterations): quickly flat — within-process sampling saturates."
    );
}
