//! Ablation — robust-tail detector tolerance sweep.
//!
//! The robust-tail detector declares iterations "steady" when they enter a
//! tolerance band around the tail level. Sweeping the band exposes the
//! design tradeoff: a tight band rejects honest-but-noisy series (false
//! "never"), a loose band swallows genuine warmup (steady start drifts
//! toward 0 and warmup contaminates the means). The default (2%) sits where
//! both error modes are rare on this suite.

use rigor::{SteadyStateDetector, Table};
use rigor_bench::{banner, jit_config};
use rigor_workloads::suite;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const TOLERANCES: [f64; 5] = [0.005, 0.02, 0.03, 0.08, 0.3];

fn main() {
    banner(
        "Ablation A3",
        "robust-tail tolerance sweep on the JIT engine (whole suite)",
    );
    let mut table = Table::new(vec![
        "rel tol",
        "benchmarks converged",
        "median steady start",
        "starts at 0 (warmup swallowed)",
    ]);
    let measurements: Vec<_> = suite()
        .iter()
        .map(|w| {
            runner(&jit_config().with_iterations(40))
                .measure(w)
                .expect("run")
        })
        .collect();
    for tol in TOLERANCES {
        let det = SteadyStateDetector::RobustTail {
            rel_tol: tol,
            mad_k: 5.0,
            max_start_frac: 0.7,
        };
        let mut converged = 0usize;
        let mut zero_start = 0usize;
        let mut starts = Vec::new();
        for m in &measurements {
            if let Some(s) = rigor::common_steady_start(m.series(), &det) {
                converged += 1;
                starts.push(s as f64);
                if s == 0 {
                    zero_start += 1;
                }
            }
        }
        table.row(vec![
            format!("{:.1}%", tol * 100.0),
            format!("{converged}/{}", measurements.len()),
            format!("{:.0}", rigor_stats::median(&starts)),
            zero_start.to_string(),
        ]);
    }
    println!("{table}");
    println!("Tight bands under-converge; loose bands report steady-from-0 on JIT runs,");
    println!("silently including compile time in 'steady' means. The 3% default balances both.");
}
