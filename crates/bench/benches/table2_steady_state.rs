//! Table 2 — Iterations to steady state, per benchmark and engine, under the
//! CoV-window detector and the changepoint detector.
//!
//! Expected shape: the interpreter is steady almost immediately; the JIT
//! needs several iterations; the changepoint detector is the more
//! conservative of the two on warmup series; adversarial benchmarks show
//! `never` on at least one detector.

use rigor::{common_steady_start, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config, jit_config};
use rigor_workloads::suite;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

fn fmt(start: Option<usize>) -> String {
    match start {
        Some(s) => s.to_string(),
        None => "never".to_string(),
    }
}

fn main() {
    banner(
        "Table 2",
        "iterations to steady state (max across invocations)",
    );
    let cov = SteadyStateDetector::cov_window();
    let cp = SteadyStateDetector::changepoint();
    let rt = SteadyStateDetector::robust_tail();
    let interp_cfg = interp_config().with_iterations(50);
    let jit_cfg = jit_config().with_iterations(50);

    let mut table = Table::new(vec![
        "benchmark",
        "interp/cov",
        "interp/chgpt",
        "interp/robust",
        "jit/cov",
        "jit/chgpt",
        "jit/robust",
    ]);
    for w in suite() {
        let mi = runner(&interp_cfg).measure(&w).expect("run");
        let mj = runner(&jit_cfg).measure(&w).expect("run");
        table.row(vec![
            w.name.to_string(),
            fmt(common_steady_start(mi.series(), &cov)),
            fmt(common_steady_start(mi.series(), &cp)),
            fmt(common_steady_start(mi.series(), &rt)),
            fmt(common_steady_start(mj.series(), &cov)),
            fmt(common_steady_start(mj.series(), &cp)),
            fmt(common_steady_start(mj.series(), &rt)),
        ]);
    }
    println!("{table}");
}
