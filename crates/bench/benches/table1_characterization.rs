//! Table 1 — Benchmark-suite characterization.
//!
//! For every workload: dynamic bytecode count per iteration, instruction-mix
//! fractions, allocation and dict-probe rates, and interpreter iteration
//! time. Regenerates the suite-characterization table of the evaluation.

use rigor::{fmt_ns, fmt_pct, Table};
use rigor_bench::{banner, EVAL_SEED};
use rigor_workloads::{characterize, suite, Size};

fn main() {
    banner(
        "Table 1",
        "benchmark suite characterization (interp engine, quiescent noise)",
    );
    let mut table = Table::new(vec![
        "benchmark",
        "category",
        "kops/iter",
        "arith",
        "dict",
        "mem",
        "call",
        "branch",
        "alloc/iter",
        "probes/iter",
        "iter time",
    ]);
    for w in suite() {
        let c = characterize(&w, Size::Default, EVAL_SEED).expect("workload runs");
        table.row(vec![
            c.name.clone(),
            c.category.clone(),
            format!("{:.1}", c.bytecodes_per_iter / 1000.0),
            fmt_pct(c.arith_frac),
            fmt_pct(c.dict_frac),
            fmt_pct(c.memory_frac),
            fmt_pct(c.call_frac),
            fmt_pct(c.branch_frac),
            format!("{:.0}", c.allocations_per_iter),
            format!("{:.0}", c.dict_probes_per_iter),
            fmt_ns(c.iter_ns_interp),
        ]);
    }
    println!("{table}");
    println!("Shape check: numeric kernels are arith-dominated; dict_churn/str_keys/word_count");
    println!("probe heavily; fib/queens are call-dominated; gc_pressure allocates most.");
}
