//! Figure 9 (extension) — JIT architecture comparison: loop tracing vs
//! method-at-a-time vs both.
//!
//! Real Python JITs split exactly along this axis (PyPy traces loops;
//! Cinder/Pyston compile methods). Running the same suite under each mode
//! shows the complementarity: loops-only wins on top-level hot loops but
//! leaves call-dominated code interpreted; methods-only wins where the hot
//! code lives in frequently-called helper functions; the full engine takes
//! the max of both. This is the extension experiment DESIGN.md lists beyond
//! the paper's own evaluation.

use minipy::{EngineKind, JitConfig};
use rigor::{compare, fmt_ci, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config, EVAL_INVOCATIONS, EVAL_ITERATIONS, EVAL_SEED};
use rigor_workloads::{find, Size};

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const BENCHMARKS: [&str; 6] = [
    "leibniz",
    "richards_lite",
    "spectral",
    "kmeans_lite",
    "fib_recursive",
    "queens",
];

fn main() {
    banner(
        "Figure 9",
        "engine architectures: tracing vs method JIT vs full",
    );
    let det = SteadyStateDetector::robust_tail();
    let modes: [(&str, JitConfig); 3] = [
        ("loops-only", JitConfig::loops_only()),
        ("methods-only", JitConfig::functions_only()),
        ("full", JitConfig::default()),
    ];
    let mut table = Table::new(vec!["benchmark", "loops-only", "methods-only", "full"]);
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        let base = runner(&interp_config()).measure(&w).expect("interp");
        let mut cells = vec![name.to_string()];
        for (_, jc) in &modes {
            let mut cfg = rigor::ExperimentConfig::interp()
                .with_invocations(EVAL_INVOCATIONS)
                .with_iterations(EVAL_ITERATIONS)
                .with_seed(EVAL_SEED)
                .with_size(Size::Default);
            cfg.engine = EngineKind::Jit(*jc);
            let m = runner(&cfg).measure(&w).expect("jit run");
            cells.push(match compare(&base, &m, &det, 0.95) {
                Ok(r) => fmt_ci(&r.speedup),
                Err(e) => format!("({e})"),
            });
        }
        table.row(cells);
    }
    println!("{table}");
    println!("Loop-in-run() benchmarks (leibniz, richards) need the tracer; helper-function");
    println!("benchmarks (fib, queens, spectral's a_ij) need the method JIT; 'full' covers both.");
}
