//! Criterion micro-benchmarks for the MiniPy engines themselves: real
//! (Rust-side) throughput of the interpreter and JIT loops. These gate
//! regressions in the simulator, not the methodology.
//!
//! `vm/interp/<workload>/iteration` covers the full workload suite — the
//! population behind the interpreter-throughput acceptance bar for dispatch
//! or cache changes. The JIT pair and the compile/instantiate benches are a
//! smaller smoke set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use minipy::{CompiledProgram, Session, VmConfig};
use rigor_workloads::{find, suite, Size};

fn bench_vm(c: &mut Criterion) {
    // Interpreter throughput across the whole suite.
    for w in suite() {
        let src = w.source(Size::Small);
        c.bench_function(&format!("vm/interp/{}/iteration", w.name), |b| {
            let mut session = Session::start(&src, 1, VmConfig::interp()).expect("session");
            for _ in 0..10 {
                session.run_iteration().expect("warm");
            }
            b.iter(|| black_box(session.run_iteration().expect("iteration")))
        });
    }

    // JIT smoke pair (warmed past compilation).
    for name in ["leibniz", "dict_churn"] {
        let w = find(name).expect("known benchmark");
        let src = w.source(Size::Small);
        c.bench_function(&format!("vm/jit/{name}/iteration"), |b| {
            let mut session = Session::start(&src, 1, VmConfig::jit()).expect("session");
            for _ in 0..10 {
                session.run_iteration().expect("warm");
            }
            b.iter(|| black_box(session.run_iteration().expect("iteration")))
        });
    }

    c.bench_function("vm/compile/leibniz", |b| {
        let src = find("leibniz").unwrap().source(Size::Small);
        b.iter(|| black_box(minipy::compile(&src).expect("compiles")))
    });

    // Parse-once path: cost of stamping out a session (module setup included)
    // from a frozen program, versus compiling from source each time.
    c.bench_function("vm/frozen_session/leibniz", |b| {
        let src = find("leibniz").unwrap().source(Size::Small);
        let program = CompiledProgram::compile(&src).expect("compiles");
        b.iter(|| black_box(Session::start_from(&program, 1, VmConfig::interp()).expect("session")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vm
}
criterion_main!(benches);
