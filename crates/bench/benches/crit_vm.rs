//! Criterion micro-benchmarks for the MiniPy engines themselves: real
//! (Rust-side) throughput of the interpreter and JIT loops on two kernels.
//! These gate regressions in the simulator, not the methodology.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use minipy::{Session, VmConfig};
use rigor_workloads::{find, Size};

fn bench_vm(c: &mut Criterion) {
    for (engine, cfg) in [("interp", VmConfig::interp()), ("jit", VmConfig::jit())] {
        for name in ["leibniz", "dict_churn"] {
            let w = find(name).expect("known benchmark");
            let src = w.source(Size::Small);
            c.bench_function(&format!("vm/{engine}/{name}/iteration"), |b| {
                let mut session = Session::start(&src, 1, cfg.clone()).expect("session");
                // Pre-warm so the JIT measurement reflects compiled code.
                for _ in 0..10 {
                    session.run_iteration().expect("warm");
                }
                b.iter(|| black_box(session.run_iteration().expect("iteration")))
            });
        }
    }

    c.bench_function("vm/compile/leibniz", |b| {
        let src = find("leibniz").unwrap().source(Size::Small);
        b.iter(|| black_box(minipy::compile(&src).expect("compiles")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vm
}
criterion_main!(benches);
