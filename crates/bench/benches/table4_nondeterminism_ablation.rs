//! Table 4 — Nondeterminism-source ablation.
//!
//! Runs each benchmark with every source disabled except one ("only-X" rows)
//! plus the all-on and all-off baselines, and reports the inter-invocation
//! CoV of the steady mean. Expected shape: the layout/ASLR factor is the
//! dominant inter-invocation source everywhere; hash-seed randomization
//! contributes only on string-dict-heavy benchmarks; OS jitter and GC
//! costing contribute mostly intra-invocation spread (so their inter rows
//! are small); all-off collapses to exactly 0 (full determinism).

use minipy::NoiseConfig;
use rigor::{common_steady_start, decompose, SteadyStateDetector, Table};
use rigor_bench::{banner, interp_config};
use rigor_workloads::find;

/// Builds a runner for a fixed harness config (shape validity asserted).
fn runner(cfg: &rigor::ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

const BENCHMARKS: [&str; 4] = ["leibniz", "dict_churn", "str_keys", "gc_pressure"];

fn configs() -> Vec<(&'static str, NoiseConfig)> {
    let off = NoiseConfig::quiescent();
    vec![
        ("all sources on", NoiseConfig::default()),
        (
            "only hash-seed",
            NoiseConfig {
                hash_randomization: true,
                ..off
            },
        ),
        (
            "only layout/ASLR",
            NoiseConfig {
                layout: true,
                ..off
            },
        ),
        (
            "only OS jitter",
            NoiseConfig {
                os_jitter: true,
                ..off
            },
        ),
        (
            "only GC costing",
            NoiseConfig {
                gc_costed: true,
                ..off
            },
        ),
        ("all sources off", off),
    ]
}

fn main() {
    banner(
        "Table 4",
        "inter-invocation CoV with each nondeterminism source isolated (interp)",
    );
    let det = SteadyStateDetector::robust_tail();
    let mut table = Table::new(vec![
        "config",
        BENCHMARKS[0],
        BENCHMARKS[1],
        BENCHMARKS[2],
        BENCHMARKS[3],
    ]);
    for (label, noise) in configs() {
        let mut cells = vec![label.to_string()];
        for name in BENCHMARKS {
            let w = find(name).expect("known benchmark");
            let cfg = interp_config()
                .with_invocations(16)
                .with_iterations(20)
                .with_noise(noise);
            let m = runner(&cfg).measure(&w).expect("run");
            let start = common_steady_start(m.series(), &det).unwrap_or(0);
            let cell = match decompose(&m, start) {
                Some(d) => format!("{:.4}%", d.inter_cov * 100.0),
                None => "-".into(),
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    println!("{table}");
    println!("Each 'only-X' row is that source's isolated inter-invocation contribution.");
    println!("Layout dominates everywhere; hash-seed matters only where string-keyed dicts do.");
}
