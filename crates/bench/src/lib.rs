//! Shared helpers for the experiment bench targets (`benches/*.rs`).
//!
//! Each bench target regenerates one table or figure of the reconstructed
//! evaluation (see `DESIGN.md` and `EXPERIMENTS.md` at the repo root). The
//! helpers here pin the standard experiment parameters so every target reads
//! the same underlying configuration.

use rigor::ExperimentConfig;
use rigor_workloads::Size;

/// Standard invocation count for full-suite experiments.
pub const EVAL_INVOCATIONS: u32 = 12;

/// Standard iteration count per invocation.
pub const EVAL_ITERATIONS: u32 = 60;

/// Master seed for every experiment (reproducible end-to-end).
pub const EVAL_SEED: u64 = 0x2020_115C; // IISWC'20

/// The interpreter-side standard configuration.
pub fn interp_config() -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(EVAL_INVOCATIONS)
        .with_iterations(EVAL_ITERATIONS)
        .with_seed(EVAL_SEED)
        .with_size(Size::Default)
}

/// The JIT-side standard configuration.
pub fn jit_config() -> ExperimentConfig {
    ExperimentConfig::jit()
        .with_invocations(EVAL_INVOCATIONS)
        .with_iterations(EVAL_ITERATIONS)
        .with_seed(EVAL_SEED)
        .with_size(Size::Default)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str) {
    println!();
    println!("=== {id}: {what} ===");
    println!(
        "(invocations={EVAL_INVOCATIONS}, iterations={EVAL_ITERATIONS}, seed={EVAL_SEED:#x}, size=default)"
    );
    println!();
}

/// A fixed-width ASCII bar for in-terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max > 0.0) {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_share_seed_and_shape() {
        let a = interp_config();
        let b = jit_config();
        assert_eq!(a.experiment_seed, b.experiment_seed);
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }
}
