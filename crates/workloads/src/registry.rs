//! The workload registry: every benchmark in the suite with its size
//! parameterization, discoverable by name.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::programs::{
    adversarial, calls, control, data, iterators, nonsteady, numeric, strings, structured,
};

/// Behavioural category of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Float/int arithmetic kernels.
    Numeric,
    /// Dict/list-dominated data-structure churn.
    Data,
    /// String processing.
    Strings,
    /// Calls, recursion, branchy state machines.
    Control,
    /// Structured-data round-trips: build, serialize, parse back.
    Structured,
    /// Methodology stressors: type-polymorphic, startup-dominated,
    /// GC-pressure workloads.
    Adversarial,
    /// Known-shift non-steady workloads: phase shifts, warmup cliffs and
    /// periodic degradation at documented iteration indices.
    NonSteady,
}

impl Category {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::Numeric => "numeric",
            Category::Data => "data",
            Category::Strings => "string",
            Category::Control => "control",
            Category::Structured => "structured",
            Category::Adversarial => "adversarial",
            Category::NonSteady => "nonsteady",
        }
    }
}

/// Size preset for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Size {
    /// Fast: for unit tests and smoke runs.
    Small,
    /// The evaluation default.
    #[default]
    Default,
    /// Stress size for precision sweeps.
    Large,
}

/// One benchmark in the suite.
#[derive(Clone)]
pub struct Workload {
    /// Unique name (stable across versions; used in seeds and reports).
    pub name: &'static str,
    /// Behavioural category.
    pub category: Category,
    /// One-line description.
    pub description: &'static str,
    source_fn: fn(u32) -> String,
    small: u32,
    default: u32,
    large: u32,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Workload {
    /// The size parameter for a preset.
    pub fn size_param(&self, size: Size) -> u32 {
        match size {
            Size::Small => self.small,
            Size::Default => self.default,
            Size::Large => self.large,
        }
    }

    /// Generates the MiniPy source at a size preset.
    pub fn source(&self, size: Size) -> String {
        (self.source_fn)(self.size_param(size))
    }

    /// Generates the MiniPy source with an explicit size parameter.
    pub fn source_with(&self, n: u32) -> String {
        (self.source_fn)(n)
    }
}

/// Returns the full benchmark suite in canonical order.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "nbody_lite",
            category: Category::Numeric,
            description: "pairwise-force float physics steps",
            source_fn: numeric::nbody_lite,
            small: 30,
            default: 100,
            large: 300,
        },
        Workload {
            name: "spectral",
            category: Category::Numeric,
            description: "spectral-norm style A·v products",
            source_fn: numeric::spectral,
            small: 10,
            default: 20,
            large: 40,
        },
        Workload {
            name: "leibniz",
            category: Category::Numeric,
            description: "Leibniz pi series (pure float loop)",
            source_fn: numeric::leibniz,
            small: 800,
            default: 3_000,
            large: 10_000,
        },
        Workload {
            name: "sieve",
            category: Category::Numeric,
            description: "sieve of Eratosthenes",
            source_fn: numeric::sieve,
            small: 500,
            default: 2_000,
            large: 6_000,
        },
        Workload {
            name: "kmeans_lite",
            category: Category::Numeric,
            description: "k-means clustering with list comprehensions",
            source_fn: numeric::kmeans_lite,
            small: 60,
            default: 200,
            large: 600,
        },
        Workload {
            name: "matmul",
            category: Category::Numeric,
            description: "dense int matrix multiply",
            source_fn: numeric::matmul,
            small: 8,
            default: 15,
            large: 24,
        },
        Workload {
            name: "dict_churn",
            category: Category::Data,
            description: "string-keyed dict insert/lookup/delete waves",
            source_fn: data::dict_churn,
            small: 100,
            default: 400,
            large: 1_200,
        },
        Workload {
            name: "str_keys",
            category: Category::Data,
            description: "string-keyed dict build + iterate",
            source_fn: data::str_keys,
            small: 150,
            default: 600,
            large: 2_000,
        },
        Workload {
            name: "list_sort",
            category: Category::Data,
            description: "build pseudo-random list and sort",
            source_fn: data::list_sort,
            small: 400,
            default: 1_500,
            large: 5_000,
        },
        Workload {
            name: "graph_bfs",
            category: Category::Data,
            description: "BFS over synthetic adjacency lists",
            source_fn: data::graph_bfs,
            small: 120,
            default: 500,
            large: 1_500,
        },
        Workload {
            name: "json_like",
            category: Category::Data,
            description: "build + walk nested record structures",
            source_fn: data::json_like,
            small: 80,
            default: 300,
            large: 1_000,
        },
        Workload {
            name: "string_builder",
            category: Category::Strings,
            description: "concat / join / split / replace churn",
            source_fn: strings::string_builder,
            small: 100,
            default: 400,
            large: 1_200,
        },
        Workload {
            name: "word_count",
            category: Category::Strings,
            description: "split text, tally word frequencies in a dict",
            source_fn: strings::word_count,
            small: 200,
            default: 800,
            large: 2_500,
        },
        Workload {
            name: "substring_scan",
            category: Category::Strings,
            description: "naive substring matching over generated text",
            source_fn: strings::substring_scan,
            small: 150,
            default: 600,
            large: 2_000,
        },
        Workload {
            name: "fib_recursive",
            category: Category::Control,
            description: "recursive Fibonacci (call overhead)",
            source_fn: control::fib_recursive,
            small: 12,
            default: 16,
            large: 19,
        },
        Workload {
            name: "richards_lite",
            category: Category::Control,
            description: "task-scheduler state machine",
            source_fn: control::richards_lite,
            small: 80,
            default: 300,
            large: 900,
        },
        Workload {
            name: "queens",
            category: Category::Control,
            description: "N-queens backtracking search",
            source_fn: control::queens,
            small: 5,
            default: 7,
            large: 8,
        },
        Workload {
            name: "raytrace_lite",
            category: Category::Control,
            description: "ray-sphere intersection loop",
            source_fn: control::raytrace_lite,
            small: 100,
            default: 400,
            large: 1_200,
        },
        Workload {
            name: "json_build",
            category: Category::Structured,
            description: "build nested records, emit a JSON document, hash it",
            source_fn: structured::json_build,
            small: 40,
            default: 150,
            large: 500,
        },
        Workload {
            name: "csv_roundtrip",
            category: Category::Structured,
            description: "CSV render / parse / transform round-trip",
            source_fn: structured::csv_roundtrip,
            small: 50,
            default: 200,
            large: 700,
        },
        Workload {
            name: "call_tower_mono",
            category: Category::Control,
            description: "twelve-deep monomorphic call chain (frame overhead)",
            source_fn: calls::call_tower_mono,
            small: 200,
            default: 800,
            large: 2_500,
        },
        Workload {
            name: "call_tower_poly",
            category: Category::Control,
            description: "polymorphic call sites fed int/float/str in rotation",
            source_fn: calls::call_tower_poly,
            small: 150,
            default: 600,
            large: 2_000,
        },
        Workload {
            name: "iter_churn",
            category: Category::Data,
            description: "enumerate/zip/items towers and comprehensions",
            source_fn: iterators::iter_churn,
            small: 200,
            default: 800,
            large: 2_500,
        },
        Workload {
            name: "polymorph",
            category: Category::Adversarial,
            description: "type-flipping hot loop (JIT deopt churn)",
            source_fn: adversarial::polymorph,
            small: 100,
            default: 400,
            large: 1_200,
        },
        Workload {
            name: "startup_heavy",
            category: Category::Adversarial,
            description: "heavy setup, trivial run() (startup-dominated)",
            source_fn: adversarial::startup_heavy,
            small: 300,
            default: 1_000,
            large: 3_000,
        },
        Workload {
            name: "gc_pressure",
            category: Category::Adversarial,
            description: "allocation storm (GC pauses dominate noise)",
            source_fn: adversarial::gc_pressure,
            small: 150,
            default: 600,
            large: 2_000,
        },
        Workload {
            name: "phase_shift",
            category: Category::NonSteady,
            description: "3x cost step after a documented iteration index",
            source_fn: nonsteady::phase_shift,
            small: 60,
            default: 250,
            large: 800,
        },
        Workload {
            name: "warmup_cliff",
            category: Category::NonSteady,
            description: "slow warmup iterations, then a steady fast phase",
            source_fn: nonsteady::warmup_cliff,
            small: 60,
            default: 250,
            large: 800,
        },
        Workload {
            name: "sawtooth",
            category: Category::NonSteady,
            description: "periodically ramping cost that never settles",
            source_fn: nonsteady::sawtooth,
            small: 60,
            default: 250,
            large: 800,
        },
    ]
}

/// Finds a workload by name.
pub fn find(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

/// A name that resolved to no workload, with the closest registered name
/// when the miss looks like a typo (case slip or small edit distance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
    /// The closest suite name, if one is plausibly intended.
    pub suggestion: Option<&'static str>,
}

impl UnknownWorkload {
    /// Builds the error for a name, computing the suggestion.
    pub fn of(name: &str) -> UnknownWorkload {
        UnknownWorkload {
            name: name.to_string(),
            suggestion: suggest(name),
        }
    }
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload '{}'", self.name)?;
        match self.suggestion {
            Some(s) => write!(f, ", did you mean '{s}'?"),
            None => write!(f, " (see `rigor list`)"),
        }
    }
}

impl std::error::Error for UnknownWorkload {}

/// Finds a workload by name, or returns a typed near-miss error — unlike
/// [`find`], a case slip or a one-letter typo names its correction.
pub fn lookup(name: &str) -> Result<Workload, UnknownWorkload> {
    find(name).ok_or_else(|| UnknownWorkload::of(name))
}

/// Levenshtein distance, bounded only by the short names involved.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest suite name: a case-insensitive exact match wins outright,
/// otherwise the smallest edit distance within a typo-sized budget.
fn suggest(name: &str) -> Option<&'static str> {
    let lower = name.to_lowercase();
    let all = names();
    if let Some(exact) = all.iter().find(|n| n.to_lowercase() == lower) {
        return Some(exact);
    }
    all.into_iter()
        .map(|n| (edit_distance(&lower, n), n))
        .filter(|(d, n)| *d <= 2.max(n.len() / 4))
        .min_by_key(|(d, _)| *d)
        .map(|(_, n)| n)
}

/// Names of all workloads, in canonical order.
pub fn names() -> Vec<&'static str> {
    suite().iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_nine_workloads_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 29);
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29, "duplicate workload names");
    }

    #[test]
    fn every_category_is_represented() {
        let s = suite();
        for cat in [
            Category::Numeric,
            Category::Data,
            Category::Strings,
            Category::Control,
            Category::Structured,
            Category::Adversarial,
            Category::NonSteady,
        ] {
            assert!(s.iter().any(|w| w.category == cat), "missing {cat:?}");
        }
    }

    #[test]
    fn sizes_are_ordered() {
        for w in suite() {
            assert!(
                w.size_param(Size::Small) <= w.size_param(Size::Default)
                    && w.size_param(Size::Default) <= w.size_param(Size::Large),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn find_by_name() {
        assert!(find("sieve").is_some());
        assert!(find("nope").is_none());
        assert_eq!(find("sieve").unwrap().category, Category::Numeric);
    }

    #[test]
    fn lookup_suggests_on_near_misses() {
        assert_eq!(lookup("sieve").unwrap().name, "sieve");
        // Case slip.
        let e = lookup("Sieve").unwrap_err();
        assert_eq!(e.suggestion, Some("sieve"));
        assert!(e.to_string().contains("did you mean 'sieve'"));
        // One-letter typo.
        let e = lookup("seive").unwrap_err();
        assert_eq!(e.suggestion, Some("sieve"));
        // Underscore-family typo on a longer name.
        let e = lookup("phase_shiftt").unwrap_err();
        assert_eq!(e.suggestion, Some("phase_shift"));
        // Nothing close: no suggestion, but still a pointer to the list.
        let e = lookup("zzzzzzzzzz").unwrap_err();
        assert_eq!(e.suggestion, None);
        assert!(e.to_string().contains("rigor list"));
    }

    #[test]
    fn edit_distance_is_symmetric_and_sane() {
        assert_eq!(edit_distance("sieve", "sieve"), 0);
        assert_eq!(edit_distance("sieve", "seive"), 2);
        assert_eq!(edit_distance("abc", "abcd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn sources_embed_the_size_parameter() {
        let w = find("leibniz").unwrap();
        assert!(w.source(Size::Small).contains("TERMS = 800"));
        assert!(w.source_with(123).contains("TERMS = 123"));
    }
}
