//! Differential verification of the suite: the (workload × size × engine
//! × seed) grid, its golden checksum manifest, and the typed report.
//!
//! Every workload's checksum is an oracle: deterministic for a given
//! (workload, size) across engines, seeds and iteration counts. This
//! module expands the full verification grid, compares every cell against
//! the committed manifest (`tests/fixtures/suite_checksums.json`),
//! cross-checks interp-vs-JIT equivalence per (workload, size, seed), and
//! folds the outcomes into a [`VerifyReport`] whose failures name the
//! exact cell and the expected/actual checksums.
//!
//! Execution of the grid is the driver's job (`rigor::verify` runs it on
//! the campaign scheduler's work-stealing discipline); everything here is
//! pure: grid expansion, single-cell execution, manifest I/O, report
//! construction.

use std::collections::BTreeMap;

use minipy::{EngineKind, JitConfig, JitMode, Session, VmConfig};
use serde::json::JsonValue;

use crate::registry::{lookup, suite, Size};

/// How many iterations a verification cell runs: two, so the oracle also
/// proves the checksum does not depend on the iteration count reached.
pub const CELL_ITERATIONS: u32 = 2;

/// Stable manifest-key label for a size preset.
pub fn size_label(size: Size) -> &'static str {
    match size {
        Size::Small => "small",
        Size::Default => "default",
        Size::Large => "large",
    }
}

/// Parses a [`size_label`] back to the preset.
pub fn parse_size(label: &str) -> Option<Size> {
    match label {
        "small" => Some(Size::Small),
        "default" => Some(Size::Default),
        "large" => Some(Size::Large),
        _ => None,
    }
}

/// All three size presets, in manifest order.
pub const ALL_SIZES: [Size; 3] = [Size::Small, Size::Default, Size::Large];

/// Engine axis of the verification grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyEngine {
    /// The interpreter.
    Interp,
    /// The JIT, eagerly configured (tiny hot threshold) so compiled code
    /// is actually on the hot path within [`CELL_ITERATIONS`] iterations.
    Jit,
}

impl VerifyEngine {
    /// Both engines, in grid order.
    pub const ALL: [VerifyEngine; 2] = [VerifyEngine::Interp, VerifyEngine::Jit];

    /// Stable name used in cell ids.
    pub fn name(self) -> &'static str {
        match self {
            VerifyEngine::Interp => "interp",
            VerifyEngine::Jit => "jit",
        }
    }

    /// The VM configuration this grid axis runs under.
    pub fn vm_config(self) -> VmConfig {
        match self {
            VerifyEngine::Interp => VmConfig::interp(),
            VerifyEngine::Jit => VmConfig {
                engine: EngineKind::Jit(JitConfig {
                    hot_threshold: 10,
                    max_guard_failures: 2,
                    mode: JitMode::Full,
                }),
                ..VmConfig::default()
            },
        }
    }
}

/// One cell of the verification grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VerifyCell {
    /// Workload name (registry key).
    pub workload: String,
    /// Size preset.
    pub size: Size,
    /// Engine under test.
    pub engine: VerifyEngine,
    /// VM seed (perturbs hashing/layout, must not perturb the checksum).
    pub seed: u64,
}

impl VerifyCell {
    /// Canonical cell id: `workload/size/engine/seed`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.workload,
            size_label(self.size),
            self.engine.name(),
            self.seed
        )
    }

    /// The manifest key this cell is checked against. Checksums are
    /// engine- and seed-invariant by design, so the manifest needs one
    /// entry per (workload, size), not one per cell.
    pub fn manifest_key(&self) -> String {
        format!("{}/{}", self.workload, size_label(self.size))
    }

    /// Executes the cell: a fresh session, [`CELL_ITERATIONS`] iterations,
    /// every iteration must render the same checksum.
    pub fn execute(&self) -> Result<String, CellError> {
        let workload =
            lookup(&self.workload).map_err(|e| CellError::UnknownWorkload(e.to_string()))?;
        let src = workload.source(self.size);
        let mut session = Session::start(&src, self.seed, self.engine.vm_config())
            .map_err(|e| CellError::Vm(e.to_string()))?;
        let mut first: Option<String> = None;
        for _ in 0..CELL_ITERATIONS.max(1) {
            let r = session
                .run_iteration()
                .map_err(|e| CellError::Vm(e.to_string()))?;
            let sum = session.render(r.value);
            match &first {
                None => first = Some(sum),
                Some(f) if *f != sum => {
                    return Err(CellError::Unstable {
                        first: f.clone(),
                        later: sum,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(first.expect("at least one iteration ran"))
    }
}

/// Why a cell failed to produce a stable checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The workload name is not in the registry.
    UnknownWorkload(String),
    /// The VM failed to compile or run the source.
    Vm(String),
    /// The checksum moved between iterations of one session.
    Unstable {
        /// Checksum of the first iteration.
        first: String,
        /// The differing later checksum.
        later: String,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::UnknownWorkload(msg) => f.write_str(msg),
            CellError::Vm(msg) => write!(f, "vm error: {msg}"),
            CellError::Unstable { first, later } => {
                write!(f, "checksum moved across iterations: {first} then {later}")
            }
        }
    }
}

impl std::error::Error for CellError {}

/// Expands the verification grid over the whole registry: every workload
/// × `sizes` × both engines × `seeds`, in canonical order.
pub fn grid(sizes: &[Size], seeds: &[u64]) -> Vec<VerifyCell> {
    let mut cells = Vec::new();
    for w in suite() {
        for &size in sizes {
            for engine in VerifyEngine::ALL {
                for &seed in seeds {
                    cells.push(VerifyCell {
                        workload: w.name.to_string(),
                        size,
                        engine,
                        seed,
                    });
                }
            }
        }
    }
    cells
}

/// The golden checksum manifest: `workload/size` → checksum, committed at
/// `tests/fixtures/suite_checksums.json` and regenerated with `BLESS=1`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Sorted manifest entries.
    pub entries: BTreeMap<String, String>,
}

impl Manifest {
    /// The pinned checksum for a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Serializes to the committed format: sorted keys, 2-space indent,
    /// trailing newline — byte-identical across regenerations.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": {\n");
        let mut first = true;
        for (k, v) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("    \"{k}\": \"{v}\""));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the committed format.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a missing `entries` object, or non-string values.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let value: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let entries_val = value
            .get("entries")
            .ok_or_else(|| "manifest has no `entries` object".to_string())?;
        let pairs = match entries_val {
            JsonValue::Object(pairs) => pairs,
            other => {
                return Err(format!(
                    "`entries` must be an object, got {}",
                    other.type_name()
                ))
            }
        };
        let mut entries = BTreeMap::new();
        for (k, v) in pairs {
            let sum = v
                .as_str()
                .ok_or_else(|| format!("entry `{k}` must be a string checksum"))?;
            entries.insert(k.clone(), sum.to_string());
        }
        Ok(Manifest { entries })
    }
}

/// Outcome of one verified cell, most severe classification first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell failed to execute at all.
    Error(CellError),
    /// The manifest pins a different checksum for this cell.
    ChecksumMismatch {
        /// What the manifest pins.
        expected: String,
        /// What the cell computed.
        actual: String,
    },
    /// The two engines disagreed for this (workload, size, seed).
    EngineDivergence {
        /// The interpreter's checksum.
        interp: String,
        /// The JIT's checksum.
        jit: String,
    },
    /// The manifest has no entry covering this cell.
    MissingEntry {
        /// What the cell computed (the candidate pin).
        actual: String,
    },
    /// Checksum matched the manifest and the partner engine.
    Ok,
}

impl CellOutcome {
    /// Short machine label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Error(_) => "error",
            CellOutcome::ChecksumMismatch { .. } => "checksum-mismatch",
            CellOutcome::EngineDivergence { .. } => "engine-divergence",
            CellOutcome::MissingEntry { .. } => "missing-entry",
            CellOutcome::Ok => "ok",
        }
    }

    /// True for every variant except [`CellOutcome::Ok`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, CellOutcome::Ok)
    }
}

/// One cell's verdict in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// The verified cell.
    pub cell: VerifyCell,
    /// The computed checksum, when execution succeeded.
    pub checksum: Option<String>,
    /// The verdict.
    pub outcome: CellOutcome,
}

/// The typed result of verifying a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Per-cell verdicts, in grid order.
    pub cells: Vec<CellReport>,
}

impl VerifyReport {
    /// True when every cell verified clean.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| !c.outcome.is_failure())
    }

    /// The failing cells, in grid order.
    pub fn failures(&self) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|c| c.outcome.is_failure())
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let failed = self.failures().len();
        if failed == 0 {
            format!("{} cells verified, all clean", self.cells.len())
        } else {
            format!("{} cells verified, {failed} FAILED", self.cells.len())
        }
    }

    /// Derives the golden manifest from a clean run: one entry per
    /// (workload, size), which every cell sharing the key must agree on.
    ///
    /// # Errors
    ///
    /// A failed cell, or two cells disagreeing on a shared key.
    pub fn to_manifest(&self) -> Result<Manifest, String> {
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        for c in &self.cells {
            let sum = match (&c.checksum, &c.outcome) {
                (Some(sum), outcome) if !matches!(outcome, CellOutcome::Error(_)) => sum,
                _ => return Err(format!("cell {} did not execute cleanly", c.cell.id())),
            };
            let key = c.cell.manifest_key();
            match entries.get(&key) {
                None => {
                    entries.insert(key, sum.clone());
                }
                Some(prev) if prev != sum => {
                    return Err(format!(
                        "cells disagree on {key}: {prev} vs {sum} (at {})",
                        c.cell.id()
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(Manifest { entries })
    }

    /// Serializes the report: summary counts plus full failure detail
    /// (every failure names its cell id and expected/actual checksums).
    pub fn to_json(&self) -> String {
        let failures = self.failures();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!("  \"failed\": {},\n", failures.len()));
        out.push_str("  \"failures\": [");
        for (i, f) in failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"cell\": \"{}\", ", f.cell.id()));
            out.push_str(&format!("\"outcome\": \"{}\"", f.outcome.label()));
            match &f.outcome {
                CellOutcome::ChecksumMismatch { expected, actual } => {
                    out.push_str(&format!(
                        ", \"expected\": \"{expected}\", \"actual\": \"{actual}\""
                    ));
                }
                CellOutcome::EngineDivergence { interp, jit } => {
                    out.push_str(&format!(", \"interp\": \"{interp}\", \"jit\": \"{jit}\""));
                }
                CellOutcome::MissingEntry { actual } => {
                    out.push_str(&format!(", \"actual\": \"{actual}\""));
                }
                CellOutcome::Error(e) => {
                    out.push_str(&format!(", \"error\": \"{}\"", json_escape(&e.to_string())));
                }
                CellOutcome::Ok => {}
            }
            out.push('}');
        }
        if !failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Folds executed cells into a [`VerifyReport`]: each cell is compared
/// against the manifest (when given), and engine partners sharing a
/// (workload, size, seed) are cross-checked for equivalence.
pub fn build_report(
    results: Vec<(VerifyCell, Result<String, CellError>)>,
    manifest: Option<&Manifest>,
) -> VerifyReport {
    // Partner index: (workload, size, seed) → checksum per engine.
    let mut partner: BTreeMap<(String, &'static str, u64), [Option<String>; 2]> = BTreeMap::new();
    for (cell, result) in &results {
        if let Ok(sum) = result {
            let key = (cell.workload.clone(), size_label(cell.size), cell.seed);
            let slot = match cell.engine {
                VerifyEngine::Interp => 0,
                VerifyEngine::Jit => 1,
            };
            partner.entry(key).or_default()[slot] = Some(sum.clone());
        }
    }
    let cells = results
        .into_iter()
        .map(|(cell, result)| {
            let (checksum, outcome) = match result {
                Err(e) => (None, CellOutcome::Error(e)),
                Ok(sum) => {
                    let manifest_verdict = manifest
                        .map(|m| m.get(&cell.manifest_key()).map(|expected| expected == sum));
                    let pair =
                        partner.get(&(cell.workload.clone(), size_label(cell.size), cell.seed));
                    let diverged = pair.and_then(|p| match p {
                        [Some(i), Some(j)] if i != j => Some((i.clone(), j.clone())),
                        _ => None,
                    });
                    let outcome = match (manifest_verdict, diverged) {
                        (Some(Some(false)), _) => CellOutcome::ChecksumMismatch {
                            expected: manifest
                                .and_then(|m| m.get(&cell.manifest_key()))
                                .unwrap_or_default()
                                .to_string(),
                            actual: sum.clone(),
                        },
                        (_, Some((interp, jit))) => CellOutcome::EngineDivergence { interp, jit },
                        (Some(None), _) => CellOutcome::MissingEntry {
                            actual: sum.clone(),
                        },
                        _ => CellOutcome::Ok,
                    };
                    (Some(sum), outcome)
                }
            };
            CellReport {
                cell,
                checksum,
                outcome,
            }
        })
        .collect();
    VerifyReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, size: Size, engine: VerifyEngine, seed: u64) -> VerifyCell {
        VerifyCell {
            workload: workload.to_string(),
            size,
            engine,
            seed,
        }
    }

    #[test]
    fn grid_covers_the_whole_registry() {
        let cells = grid(&ALL_SIZES, &[1, 2]);
        assert_eq!(cells.len(), suite().len() * 3 * 2 * 2);
        // Canonical ids are unique.
        let mut ids: Vec<String> = cells.iter().map(VerifyCell::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn cell_ids_are_canonical() {
        let c = cell("sieve", Size::Small, VerifyEngine::Jit, 7);
        assert_eq!(c.id(), "sieve/small/jit/7");
        assert_eq!(c.manifest_key(), "sieve/small");
    }

    #[test]
    fn cells_execute_and_agree_across_engines_and_seeds() {
        let a = cell("sieve", Size::Small, VerifyEngine::Interp, 1)
            .execute()
            .unwrap();
        let b = cell("sieve", Size::Small, VerifyEngine::Jit, 99)
            .execute()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "95"); // primes below 500, the documented oracle
    }

    #[test]
    fn unknown_workload_cell_reports_the_suggestion() {
        let e = cell("Sieve", Size::Small, VerifyEngine::Interp, 1)
            .execute()
            .unwrap_err();
        match e {
            CellError::UnknownWorkload(msg) => assert!(msg.contains("did you mean 'sieve'")),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn manifest_round_trips_byte_identically() {
        let mut m = Manifest::default();
        m.entries.insert("sieve/small".into(), "95".into());
        m.entries.insert("leibniz/large".into(), "31415".into());
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json(), text, "format must be stable");
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn manifest_parse_rejects_bad_shapes() {
        assert!(Manifest::from_json("not json").is_err());
        assert!(Manifest::from_json("{}").is_err());
        assert!(Manifest::from_json("{\"entries\": 3}").is_err());
        assert!(Manifest::from_json("{\"entries\": {\"k\": 5}}").is_err());
    }

    #[test]
    fn report_flags_checksum_mismatch_with_cell_id() {
        let mut m = Manifest::default();
        m.entries.insert("sieve/small".into(), "WRONG".into());
        let c = cell("sieve", Size::Small, VerifyEngine::Interp, 1);
        let sum = c.execute().unwrap();
        let report = build_report(vec![(c, Ok(sum))], Some(&m));
        assert!(!report.passed());
        let f = &report.failures()[0];
        assert_eq!(f.cell.id(), "sieve/small/interp/1");
        match &f.outcome {
            CellOutcome::ChecksumMismatch { expected, actual } => {
                assert_eq!(expected, "WRONG");
                assert_eq!(actual, "95");
            }
            other => panic!("wrong outcome: {other:?}"),
        }
        let json = report.to_json();
        assert!(json.contains("\"cell\": \"sieve/small/interp/1\""));
        assert!(json.contains("\"expected\": \"WRONG\""));
        assert!(json.contains("\"actual\": \"95\""));
    }

    #[test]
    fn report_flags_engine_divergence() {
        let a = cell("sieve", Size::Small, VerifyEngine::Interp, 1);
        let b = cell("sieve", Size::Small, VerifyEngine::Jit, 1);
        let report = build_report(vec![(a, Ok("95".into())), (b, Ok("96".into()))], None);
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 2, "both partners are flagged");
        assert!(matches!(
            report.failures()[0].outcome,
            CellOutcome::EngineDivergence { .. }
        ));
    }

    #[test]
    fn report_flags_missing_manifest_entries() {
        let m = Manifest::default();
        let c = cell("sieve", Size::Small, VerifyEngine::Interp, 1);
        let report = build_report(vec![(c, Ok("95".into()))], Some(&m));
        assert!(!report.passed());
        assert!(matches!(
            report.failures()[0].outcome,
            CellOutcome::MissingEntry { .. }
        ));
    }

    #[test]
    fn clean_run_derives_the_manifest() {
        let cells = vec![
            (
                cell("sieve", Size::Small, VerifyEngine::Interp, 1),
                Ok("95".to_string()),
            ),
            (
                cell("sieve", Size::Small, VerifyEngine::Jit, 2),
                Ok("95".to_string()),
            ),
        ];
        let report = build_report(cells, None);
        assert!(report.passed());
        let m = report.to_manifest().unwrap();
        assert_eq!(m.get("sieve/small"), Some("95"));
        // Disagreeing cells refuse to bless.
        let bad = build_report(
            vec![
                (
                    cell("sieve", Size::Small, VerifyEngine::Interp, 1),
                    Ok("95".to_string()),
                ),
                (
                    cell("sieve", Size::Small, VerifyEngine::Jit, 1),
                    Ok("96".to_string()),
                ),
            ],
            None,
        );
        assert!(bad.to_manifest().is_err());
    }
}
