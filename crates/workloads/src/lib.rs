//! # rigor-workloads — the MiniPy benchmark suite
//!
//! A pyperformance-analogue suite of 20 benchmarks covering the behavioural
//! axes Python benchmarking methodology must handle: numeric kernels,
//! dict/list churn with seed-sensitive string keys, string processing,
//! call/branch-heavy control flow, and adversarial stressors (type-flipping
//! loops, startup-dominated workloads, allocation storms).
//!
//! Every workload is a MiniPy module defining a `run()` function returning an
//! order-independent checksum, generated at a chosen size:
//!
//! ```rust
//! use rigor_workloads::{find, Size};
//! use minipy::{Session, VmConfig};
//!
//! # fn main() -> Result<(), minipy::MpError> {
//! let sieve = find("sieve").expect("in the suite");
//! let mut session = Session::start(&sieve.source(Size::Small), 1, VmConfig::interp())?;
//! let result = session.run_iteration()?;
//! assert_eq!(session.render(result.value), "95"); // primes below 500
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod characterize;
pub mod generator;
pub mod programs;
pub mod registry;

pub use characterize::{characterize, Characterization};
pub use generator::{generate, random_program, SyntheticSpec};
pub use registry::{find, names, suite, Category, Size, Workload};
