//! # rigor-workloads — the MiniPy benchmark suite
//!
//! A pyperformance-analogue suite of 29 benchmarks covering the behavioural
//! axes Python benchmarking methodology must handle: numeric kernels,
//! dict/list churn with seed-sensitive string keys, string processing,
//! call/branch-heavy control flow, structured-data round-trips (JSON
//! building, CSV parse/transform), call towers (monomorphic and
//! polymorphic), iterator-protocol churn, adversarial stressors
//! (type-flipping loops, startup-dominated workloads, allocation storms),
//! and deliberately non-steady workloads (phase shifts, warmup cliffs,
//! sawtooth periodicity) with documented shift locations.
//!
//! Every workload is a MiniPy module defining a `run()` function returning an
//! order-independent checksum, generated at a chosen size:
//!
//! ```rust
//! use rigor_workloads::{find, Size};
//! use minipy::{Session, VmConfig};
//!
//! # fn main() -> Result<(), minipy::MpError> {
//! let sieve = find("sieve").expect("in the suite");
//! let mut session = Session::start(&sieve.source(Size::Small), 1, VmConfig::interp())?;
//! let result = session.run_iteration()?;
//! assert_eq!(session.render(result.value), "95"); // primes below 500
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod characterize;
pub mod generator;
pub mod programs;
pub mod registry;
pub mod verify;

pub use characterize::{characterize, Characterization};
pub use generator::{generate, random_program, SyntheticSpec};
pub use registry::{find, lookup, names, suite, Category, Size, UnknownWorkload, Workload};
