//! Workload characterization: the dynamic-execution profile behind Table 1.

use minipy::bytecode::OpClass;
use minipy::{MpResult, NoiseConfig, Session, VmConfig};
use serde::{Deserialize, Serialize};

use crate::registry::{Size, Workload};

/// Dynamic profile of one workload (per-iteration averages on the
/// interpreter engine with all noise sources disabled).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// Workload name.
    pub name: String,
    /// Category label.
    pub category: String,
    /// Bytecodes executed per iteration.
    pub bytecodes_per_iter: f64,
    /// Fraction of bytecodes that are arithmetic/comparison.
    pub arith_frac: f64,
    /// Fraction that are stack shuffles (loads/stores of locals, consts).
    pub stack_frac: f64,
    /// Fraction that are global-name accesses.
    pub name_frac: f64,
    /// Fraction that are memory (subscript/slice) operations.
    pub memory_frac: f64,
    /// Fraction that are dict operations.
    pub dict_frac: f64,
    /// Fraction that allocate containers.
    pub alloc_frac: f64,
    /// Fraction that are branches / loop bookkeeping.
    pub branch_frac: f64,
    /// Fraction that are calls/returns.
    pub call_frac: f64,
    /// Heap objects allocated per iteration.
    pub allocations_per_iter: f64,
    /// Dict slots probed per iteration.
    pub dict_probes_per_iter: f64,
    /// Loop back-edges per iteration.
    pub backedges_per_iter: f64,
    /// Calls per iteration.
    pub calls_per_iter: f64,
    /// Startup (module setup) virtual time, ns.
    pub startup_ns: f64,
    /// Mean per-iteration virtual time on the interpreter, ns.
    pub iter_ns_interp: f64,
}

/// Number of iterations measured (after one discarded warmround).
const CHARACTERIZE_ITERS: usize = 3;

/// Profiles `workload` at `size` on the interpreter with quiescent noise.
///
/// # Errors
///
/// Propagates compile/runtime errors from the workload.
pub fn characterize(workload: &Workload, size: Size, seed: u64) -> MpResult<Characterization> {
    let mut cfg = VmConfig::interp();
    cfg.noise = NoiseConfig::quiescent();
    let mut session = Session::start(&workload.source(size), seed, cfg)?;
    let startup_ns = session.startup_ns();

    let mut total_ns = 0.0;
    let mut counters = Vec::with_capacity(CHARACTERIZE_ITERS);
    for _ in 0..CHARACTERIZE_ITERS {
        let r = session.run_iteration()?;
        total_ns += r.virtual_ns;
        counters.push(r.counters);
    }
    let n = CHARACTERIZE_ITERS as f64;
    let avg = |f: &dyn Fn(&minipy::DynCounters) -> f64| -> f64 {
        counters.iter().map(f).sum::<f64>() / n
    };
    let total_ops = avg(&|c| c.total_ops as f64).max(1.0);
    let frac = |class: OpClass| -> f64 {
        avg(&|c| c.ops_by_class[minipy::frame::op_class_index(class)] as f64) / total_ops
    };

    Ok(Characterization {
        name: workload.name.to_string(),
        category: workload.category.label().to_string(),
        bytecodes_per_iter: total_ops,
        arith_frac: frac(OpClass::Arith),
        stack_frac: frac(OpClass::Stack),
        name_frac: frac(OpClass::Name),
        memory_frac: frac(OpClass::Memory),
        dict_frac: frac(OpClass::Dict),
        alloc_frac: frac(OpClass::Alloc),
        branch_frac: frac(OpClass::Branch),
        call_frac: frac(OpClass::Call),
        allocations_per_iter: avg(&|c| c.allocations as f64),
        dict_probes_per_iter: avg(&|c| c.dict_probes as f64),
        backedges_per_iter: avg(&|c| c.backedges as f64),
        calls_per_iter: avg(&|c| c.calls as f64),
        startup_ns,
        iter_ns_interp: total_ns / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    #[test]
    fn fractions_sum_to_one() {
        let w = find("sieve").unwrap();
        let c = characterize(&w, Size::Small, 1).unwrap();
        let sum = c.arith_frac
            + c.stack_frac
            + c.name_frac
            + c.memory_frac
            + c.dict_frac
            + c.alloc_frac
            + c.branch_frac
            + c.call_frac;
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(c.bytecodes_per_iter > 1_000.0);
    }

    #[test]
    fn numeric_kernel_is_arith_dominated() {
        let w = find("leibniz").unwrap();
        let c = characterize(&w, Size::Small, 1).unwrap();
        assert!(c.arith_frac > 0.2, "{c:?}");
        assert!(c.dict_frac < 0.01);
    }

    #[test]
    fn dict_workload_probes_heavily() {
        let dict = characterize(&find("dict_churn").unwrap(), Size::Small, 1).unwrap();
        let num = characterize(&find("leibniz").unwrap(), Size::Small, 1).unwrap();
        assert!(dict.dict_probes_per_iter > 100.0);
        assert!(dict.dict_probes_per_iter > num.dict_probes_per_iter * 50.0);
    }

    #[test]
    fn call_heavy_workload_shows_calls() {
        let fib = characterize(&find("fib_recursive").unwrap(), Size::Small, 1).unwrap();
        let leib = characterize(&find("leibniz").unwrap(), Size::Small, 1).unwrap();
        assert!(
            fib.call_frac > leib.call_frac * 3.0,
            "fib {fib:?} vs leibniz {leib:?}"
        );
        assert!(fib.calls_per_iter > 100.0);
    }

    #[test]
    fn characterization_is_deterministic() {
        let w = find("json_like").unwrap();
        let a = characterize(&w, Size::Small, 9).unwrap();
        let b = characterize(&w, Size::Small, 9).unwrap();
        assert_eq!(a.bytecodes_per_iter, b.bytecodes_per_iter);
        assert_eq!(a.iter_ns_interp, b.iter_ns_interp);
    }
}
