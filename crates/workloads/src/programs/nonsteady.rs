//! Non-steady workloads with *known* shift locations — true positives for
//! the warmup classifier and the trend/changepoint machinery ("Virtual
//! Machine Warmup Blows Hot and Cold": non-steady behaviour is the norm).
//!
//! Each workload keeps a module-level call counter and changes only its
//! per-iteration *cost* at documented iteration indices; the returned
//! checksum is identical on every iteration, so the differential oracle
//! still holds while the timing series shifts.
//!
//! [`drift_baseline`]/[`drift_degraded`] extend the family across *runs*:
//! the same checksum at 1× and 3× the per-iteration cost, so a store that
//! archives baseline runs followed by degraded runs contains a measured
//! level step at a known run index for `rigor trend` to find.

/// Iteration index after which [`phase_shift`] triples its per-iteration
/// cost.
pub const PHASE_SHIFT_AT: u32 = 12;

/// Iteration count for which [`warmup_cliff`] stays slow before dropping
/// to its steady cost.
pub const WARMUP_CLIFF_AT: u32 = 8;

/// Period (in iterations) of the [`sawtooth`] cost ramp.
pub const SAWTOOTH_PERIOD: u32 = 6;

/// Cost multiplier of [`drift_degraded`] relative to [`drift_baseline`].
pub const DRIFT_DEGRADED_UNITS: u32 = 3;

fn counter_preamble(n: u32) -> String {
    format!(
        "\
N = {n}
state = [0]

def work(scale):
    total = 0
    limit = N * scale
    i = 0
    while i < limit:
        total = (total + i * 7 + scale) % 1000000007
        i = i + 1
    return total
"
    )
}

/// Steady for [`PHASE_SHIFT_AT`] iterations, then every later iteration
/// pays 3× the work (the extra passes are discarded, so the checksum
/// never moves).
pub fn phase_shift(n: u32) -> String {
    format!(
        "\
{preamble}
SHIFT = {PHASE_SHIFT_AT}

def run():
    state[0] = state[0] + 1
    base = work(1)
    if state[0] > SHIFT:
        pad = work(2)
    return base
",
        preamble = counter_preamble(n),
    )
}

/// Slow for the first [`WARMUP_CLIFF_AT`] iterations (a compilation/cache
/// warmup stand-in), then drops to its steady per-iteration cost.
pub fn warmup_cliff(n: u32) -> String {
    format!(
        "\
{preamble}
WARM = {WARMUP_CLIFF_AT}

def run():
    state[0] = state[0] + 1
    if state[0] <= WARM:
        pad = work(3)
    return work(1)
",
        preamble = counter_preamble(n),
    )
}

/// Periodically degrading: the per-iteration cost ramps with
/// `iteration % SAWTOOTH_PERIOD` and resets — a GC-debt / fragmentation
/// stand-in with no steady state at all.
pub fn sawtooth(n: u32) -> String {
    format!(
        "\
{preamble}
PERIOD = {SAWTOOTH_PERIOD}

def run():
    state[0] = state[0] + 1
    pad = work(state[0] % PERIOD)
    return work(1)
",
        preamble = counter_preamble(n),
    )
}

/// A steady workload at `units` × the baseline per-iteration cost whose
/// checksum is independent of `units` — the run-level analogue of the
/// iteration-level shifts above.
fn drift(n: u32, units: u32) -> String {
    format!(
        "\
N = {n}
UNITS = {units}

def pass_over(salt):
    total = 0
    i = 0
    while i < N:
        total = (total + i * 13 + salt) % 1000000007
        i = i + 1
    return total

def run():
    total = pass_over(5)
    u = 1
    while u < UNITS:
        pad = pass_over(u)
        u = u + 1
    return total
"
    )
}

/// The 1×-cost drift source: archive runs of this as the "before" level.
pub fn drift_baseline(n: u32) -> String {
    drift(n, 1)
}

/// The [`DRIFT_DEGRADED_UNITS`]×-cost drift source: same checksum as
/// [`drift_baseline`], so archiving it under the same benchmark name
/// injects a pure timing step with no semantic change.
pub fn drift_degraded(n: u32) -> String {
    drift(n, DRIFT_DEGRADED_UNITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    /// Noise-free config: these tests assert on the *shape* of the
    /// virtual-time series, so the synthetic noise sources must be off.
    fn quiet() -> VmConfig {
        let mut cfg = VmConfig::interp();
        cfg.noise = minipy::NoiseConfig::quiescent();
        cfg
    }

    #[test]
    fn nonsteady_sources_compile_and_run() {
        for src in [
            phase_shift(40),
            warmup_cliff(40),
            sawtooth(40),
            drift_baseline(40),
            drift_degraded(40),
        ] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn nonsteady_workloads_agree_across_engines() {
        for src in [phase_shift(30), warmup_cliff(30), sawtooth(30)] {
            minipy::check_engines_agree(&src, 17).expect("engines agree");
        }
    }

    #[test]
    fn checksums_never_move_across_the_shift() {
        // The whole point: cost shifts, semantics do not. Run well past
        // every documented shift location and demand one checksum.
        for src in [phase_shift(30), warmup_cliff(30), sawtooth(30)] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).unwrap();
            let first = {
                let r = s.run_iteration().unwrap();
                s.render(r.value)
            };
            for _ in 0..(PHASE_SHIFT_AT + 6) {
                let r = s.run_iteration().unwrap();
                assert_eq!(s.render(r.value), first, "checksum moved:\n{src}");
            }
        }
    }

    #[test]
    fn phase_shift_cost_steps_at_the_documented_index() {
        let mut s = Session::start(&phase_shift(60), 1, quiet()).unwrap();
        let times: Vec<f64> = (0..(PHASE_SHIFT_AT + 8))
            .map(|_| s.run_iteration().unwrap().virtual_ns)
            .collect();
        let before = times[(PHASE_SHIFT_AT - 2) as usize];
        let after = times[(PHASE_SHIFT_AT + 2) as usize];
        assert!(
            after > before * 2.0,
            "expected a >2x cost step after iteration {PHASE_SHIFT_AT}: before={before} after={after}"
        );
    }

    #[test]
    fn warmup_cliff_cost_drops_after_warmup() {
        let mut s = Session::start(&warmup_cliff(60), 1, quiet()).unwrap();
        let times: Vec<f64> = (0..(WARMUP_CLIFF_AT + 8))
            .map(|_| s.run_iteration().unwrap().virtual_ns)
            .collect();
        let warm = times[1];
        let steady = times[(WARMUP_CLIFF_AT + 2) as usize];
        assert!(
            warm > steady * 2.0,
            "expected warmup iterations to cost >2x steady: warm={warm} steady={steady}"
        );
    }

    #[test]
    fn sawtooth_cost_is_periodic() {
        let mut s = Session::start(&sawtooth(60), 1, quiet()).unwrap();
        let times: Vec<f64> = (0..(SAWTOOTH_PERIOD * 3))
            .map(|_| s.run_iteration().unwrap().virtual_ns)
            .collect();
        // Iterations one period apart pay the same work multiple.
        let p = SAWTOOTH_PERIOD as usize;
        for i in 0..p {
            assert_eq!(
                times[i],
                times[i + p],
                "iteration {i} and {} should cost the same",
                i + p
            );
        }
        // And within a period the ramp actually ramps.
        assert!(times[p - 2] > times[p] * 1.5, "no ramp: {times:?}");
    }

    #[test]
    fn drift_sources_share_a_checksum_but_not_a_cost() {
        let mut a = Session::start(&drift_baseline(80), 1, quiet()).unwrap();
        let mut b = Session::start(&drift_degraded(80), 1, quiet()).unwrap();
        let ra = a.run_iteration().unwrap();
        let rb = b.run_iteration().unwrap();
        assert_eq!(a.render(ra.value), b.render(rb.value));
        assert!(
            rb.virtual_ns > ra.virtual_ns * 2.0,
            "degraded source should pay ~{DRIFT_DEGRADED_UNITS}x: {} vs {}",
            rb.virtual_ns,
            ra.virtual_ns
        );
    }
}
