//! Control-flow- and call-dominated workloads: recursion, state machines,
//! backtracking search (pyperformance's `richards`, `raytrace`,
//! `unpack_sequence` shapes).

/// Recursive Fibonacci: the classic call-overhead stressor.
pub fn fib_recursive(n: u32) -> String {
    format!(
        "\
DEPTH = {n}

def fib(k):
    if k < 2:
        return k
    return fib(k - 1) + fib(k - 2)

def run():
    return fib(DEPTH)
"
    )
}

/// A Richards-like task scheduler: a while-loop state machine over task
/// records (lists), branch and list-index heavy.
pub fn richards_lite(n: u32) -> String {
    format!(
        "\
ROUNDS = {n}
NTASKS = 6

def run():
    # task = [state, priority, work_remaining, total_done]
    tasks = []
    t = 0
    while t < NTASKS:
        tasks.append([0, t + 1, (t + 3) * 11, 0])
        t = t + 1
    completed = 0
    round_num = 0
    while round_num < ROUNDS:
        best = -1
        best_pri = -1
        t = 0
        while t < NTASKS:
            task = tasks[t]
            if task[0] == 0 and task[1] > best_pri:
                best = t
                best_pri = task[1]
            t = t + 1
        if best < 0:
            t = 0
            while t < NTASKS:
                tasks[t][0] = 0
                t = t + 1
        else:
            task = tasks[best]
            task[2] = task[2] - task[1]
            task[3] = task[3] + 1
            if task[2] <= 0:
                task[0] = 2
                task[2] = (best + 3) * 11
                completed = completed + 1
            elif task[3] % 4 == 0:
                task[0] = 1
            t = 0
            while t < NTASKS:
                if tasks[t][0] == 1 and tasks[t][3] % 3 == 0:
                    tasks[t][0] = 0
                tasks[t][3] = tasks[t][3] + 0
                t = t + 1
        round_num = round_num + 1
    check = completed * 1000
    t = 0
    while t < NTASKS:
        check = check + tasks[t][3]
        t = t + 1
    return check
"
    )
}

/// N-queens backtracking: recursion + list mutation.
pub fn queens(n: u32) -> String {
    format!(
        "\
BOARD = {n}

def safe(cols, row, col):
    i = 0
    while i < row:
        c = cols[i]
        if c == col or c - i == col - row or c + i == col + row:
            return False
        i = i + 1
    return True

def solve(cols, row):
    if row == BOARD:
        return 1
    count = 0
    col = 0
    while col < BOARD:
        if safe(cols, row, col):
            cols[row] = col
            count = count + solve(cols, row + 1)
        col = col + 1
    return count

def run():
    cols = [0] * BOARD
    return solve(cols, 0)
"
    )
}

/// Ray-sphere intersection loop: float math with `sqrt` builtin calls.
pub fn raytrace_lite(n: u32) -> String {
    format!(
        "\
RAYS = {n}
spheres = [
    [0.0, 0.0, 10.0, 2.0],
    [3.0, 1.0, 14.0, 1.5],
    [-2.5, -1.0, 8.0, 1.0],
]

def run():
    hits = 0
    depth_sum = 0.0
    r = 0
    while r < RAYS:
        dx = (r % 37) * 0.01 - 0.18
        dy = (r % 23) * 0.01 - 0.11
        dz = 1.0
        norm = sqrt(dx * dx + dy * dy + dz * dz)
        dx = dx / norm
        dy = dy / norm
        dz = dz / norm
        nearest = 1000000.0
        s = 0
        while s < 3:
            sp = spheres[s]
            ox = 0.0 - sp[0]
            oy = 0.0 - sp[1]
            oz = 0.0 - sp[2]
            b = 2.0 * (ox * dx + oy * dy + oz * dz)
            c = ox * ox + oy * oy + oz * oz - sp[3] * sp[3]
            disc = b * b - 4.0 * c
            if disc > 0.0:
                t = (0.0 - b - sqrt(disc)) / 2.0
                if t > 0.0 and t < nearest:
                    nearest = t
            s = s + 1
        if nearest < 1000000.0:
            hits = hits + 1
            depth_sum = depth_sum + nearest
        r = r + 1
    return hits * 1000 + floor(depth_sum)
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn all_control_sources_compile_and_run() {
        for src in [
            fib_recursive(12),
            richards_lite(100),
            queens(5),
            raytrace_lite(100),
        ] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn queens_known_solution_counts() {
        for (board, solutions) in [(4u32, "2"), (5, "10"), (6, "4")] {
            let mut s = Session::start(&queens(board), 1, VmConfig::interp()).unwrap();
            let r = s.run_iteration().unwrap();
            assert_eq!(s.render(r.value), solutions, "queens({board})");
        }
    }

    #[test]
    fn fib_known_value() {
        let mut s = Session::start(&fib_recursive(15), 1, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        assert_eq!(s.render(r.value), "610");
    }

    #[test]
    fn control_workloads_agree_across_engines() {
        for src in [
            fib_recursive(11),
            richards_lite(80),
            queens(5),
            raytrace_lite(80),
        ] {
            minipy::check_engines_agree(&src, 9).expect("engines agree");
        }
    }
}
