//! Adversarial workloads: the cases that break naive methodologies.
//!
//! * [`polymorph`] alternates operand types in a hot loop, triggering JIT
//!   guard failures, deopt churn and eventually blacklisting — the
//!   "no steady state" archetype.
//! * [`startup_heavy`] front-loads all its work into module setup with a
//!   near-trivial `run()`, so per-iteration JIT never pays off.
//! * [`gc_pressure`] allocates heavily every iteration, making GC pauses the
//!   dominant intra-invocation noise.

/// Hot loop whose operand types flip between int and float in phases,
/// defeating type-specialized traces.
pub fn polymorph(n: u32) -> String {
    format!(
        "\
N = {n}

def accumulate(values):
    total = 0.0
    for v in values:
        total = total + v * 2 + 1
    return total

def run():
    ints = []
    floats = []
    i = 0
    while i < N:
        ints.append(i)
        floats.append(i * 1.0)
        i = i + 1
    acc = 0.0
    phase = 0
    while phase < 8:
        if phase % 2 == 0:
            acc = acc + accumulate(ints)
        else:
            acc = acc + accumulate(floats)
        phase = phase + 1
    return floor(acc)
"
    )
}

/// Heavy module-level setup, trivial per-iteration work: the short-running
/// benchmark where startup dominates and JIT compilation never amortizes.
pub fn startup_heavy(n: u32) -> String {
    format!(
        "\
N = {n}
table = {{}}
i = 0
while i < N:
    table['entry_' + str(i)] = [i, i * 2, i * 3]
    i = i + 1
keys = sorted(table.keys())

def run():
    k = keys[len(keys) // 2]
    row = table[k]
    return row[0] + row[1] + row[2]
"
    )
}

/// Allocation storm: builds and discards thousands of small objects per
/// iteration so that mark-sweep pauses land inside timed regions.
pub fn gc_pressure(n: u32) -> String {
    format!(
        "\
N = {n}

def run():
    keep = []
    i = 0
    while i < N:
        tmp = [i, i + 1, i + 2]
        pair = (i, 'tag' + str(i % 10))
        if i % 50 == 0:
            keep.append(pair)
        tmp2 = {{'a': tmp, 'b': pair}}
        i = i + 1
    total = 0
    for p in keep:
        total = total + p[0]
    return total + len(keep)
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn adversarial_sources_compile_and_run() {
        for src in [polymorph(80), startup_heavy(100), gc_pressure(120)] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn adversarial_workloads_agree_across_engines() {
        for src in [polymorph(60), startup_heavy(80), gc_pressure(100)] {
            minipy::check_engines_agree(&src, 11).expect("engines agree");
        }
    }

    #[test]
    fn polymorph_triggers_deopts_on_jit() {
        let mut s = Session::start(&polymorph(300), 1, VmConfig::jit()).unwrap();
        for _ in 0..25 {
            s.run_iteration().unwrap();
        }
        let c = s.vm().counters();
        assert!(
            c.deopts > 0,
            "type-flipping loop must trigger guard failures: {c:?}"
        );
    }

    #[test]
    fn startup_heavy_startup_dominates_iterations() {
        let mut s = Session::start(&startup_heavy(400), 1, VmConfig::interp()).unwrap();
        let iter = s.run_iteration().unwrap();
        assert!(
            s.startup_ns() > iter.virtual_ns * 50.0,
            "startup {} should dwarf an iteration {}",
            s.startup_ns(),
            iter.virtual_ns
        );
    }

    #[test]
    fn gc_pressure_produces_gc_cycles() {
        let mut cfg = VmConfig::interp();
        cfg.noise = minipy::NoiseConfig::quiescent();
        let mut s = Session::start(&gc_pressure(800), 1, cfg).unwrap();
        for _ in 0..10 {
            s.run_iteration().unwrap();
        }
        assert!(
            s.vm().counters().gc_cycles > 0,
            "allocation storm must trigger GC"
        );
    }
}
