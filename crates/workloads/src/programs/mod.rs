//! The benchmark programs, grouped by behavioural category.

pub mod adversarial;
pub mod control;
pub mod data;
pub mod numeric;
pub mod strings;
