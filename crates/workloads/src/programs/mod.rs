//! The benchmark programs, grouped by behavioural category.

pub mod adversarial;
pub mod calls;
pub mod control;
pub mod data;
pub mod iterators;
pub mod nonsteady;
pub mod numeric;
pub mod strings;
pub mod structured;
