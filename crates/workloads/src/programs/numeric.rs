//! Numeric kernels: float- and int-arithmetic dominated workloads.
//!
//! These are the benchmarks where tracing JITs shine — tight, type-stable
//! loops over numbers — mirroring pyperformance's `nbody`, `spectral_norm`,
//! `float` and `pidigits` family.

/// N-body-style float physics: pairwise force accumulation over a handful of
/// bodies for `n` steps. Arithmetic-dominated, few allocations.
///
/// `run()` copies the initial conditions into fresh lists each call so the
/// checksum is identical on every iteration of a session (the suite's
/// oracle contract); the originals stay untouched module state.
pub fn nbody_lite(n: u32) -> String {
    format!(
        "\
STEPS = {n}
px0 = [0.0, 4.84, 8.34, 12.89, 15.37]
py0 = [0.0, -1.16, 4.12, -15.11, -25.91]
vx0 = [0.0, 0.00166, -0.00276, 0.00296, 0.00288]
vy0 = [0.0, 0.00769, 0.00499, 0.00237, 0.00147]
m = [39.47, 0.0372, 0.0113, 0.000043, 0.0000515]

def run():
    px = [v for v in px0]
    py = [v for v in py0]
    vx = [v for v in vx0]
    vy = [v for v in vy0]
    dt = 0.01
    i = 0
    while i < STEPS:
        a = 0
        while a < 5:
            b = a + 1
            while b < 5:
                dx = px[a] - px[b]
                dy = py[a] - py[b]
                d2 = dx * dx + dy * dy + 0.0001
                mag = dt / (d2 * sqrt(d2))
                vx[a] = vx[a] - dx * m[b] * mag
                vy[a] = vy[a] - dy * m[b] * mag
                vx[b] = vx[b] + dx * m[a] * mag
                vy[b] = vy[b] + dy * m[a] * mag
                b = b + 1
            a = a + 1
        k = 0
        while k < 5:
            px[k] = px[k] + dt * vx[k]
            py[k] = py[k] + dt * vy[k]
            k = k + 1
        i = i + 1
    e = 0.0
    k = 0
    while k < 5:
        e = e + m[k] * (vx[k] * vx[k] + vy[k] * vy[k])
        k = k + 1
    return floor(e * 1000000.0)
"
    )
}

/// Spectral-norm-style kernel: repeated A·v products where
/// `A(i,j) = 1 / ((i+j)(i+j+1)/2 + i + 1)`. Float division heavy.
pub fn spectral(n: u32) -> String {
    format!(
        "\
N = {n}

def a_ij(i, j):
    return 1.0 / ((i + j) * (i + j + 1) // 2 + i + 1)

def run():
    u = []
    i = 0
    while i < N:
        u.append(1.0)
        i = i + 1
    pass_num = 0
    while pass_num < 3:
        v = []
        i = 0
        while i < N:
            s = 0.0
            j = 0
            while j < N:
                s = s + a_ij(i, j) * u[j]
                j = j + 1
            v.append(s)
            i = i + 1
        u = v
        pass_num = pass_num + 1
    total = 0.0
    i = 0
    while i < N:
        total = total + u[i]
        i = i + 1
    return floor(total * 1000000.0)
"
    )
}

/// Leibniz series for π: the purest possible float loop.
pub fn leibniz(n: u32) -> String {
    format!(
        "\
TERMS = {n}

def run():
    acc = 0.0
    sign = 1.0
    k = 0
    while k < TERMS:
        acc = acc + sign / (2.0 * k + 1.0)
        sign = -sign
        k = k + 1
    return floor(acc * 4.0 * 100000000.0)
"
    )
}

/// Sieve of Eratosthenes: int arithmetic + list flag updates.
pub fn sieve(n: u32) -> String {
    format!(
        "\
LIMIT = {n}

def run():
    flags = [True] * LIMIT
    count = 0
    i = 2
    while i < LIMIT:
        if flags[i]:
            count = count + 1
            j = i * i
            while j < LIMIT:
                flags[j] = False
                j = j + i
        i = i + 1
    return count
"
    )
}

/// Dense matrix multiply over nested int lists (`n`×`n`).
pub fn matmul(n: u32) -> String {
    format!(
        "\
N = {n}

def make(seed):
    m = []
    i = 0
    v = seed
    while i < N:
        row = []
        j = 0
        while j < N:
            v = (v * 1103515245 + 12345) % 2147483648
            row.append(v % 97)
            j = j + 1
        m.append(row)
        i = i + 1
    return m

A = make(1)
B = make(7)

def run():
    total = 0
    i = 0
    while i < N:
        arow = A[i]
        j = 0
        while j < N:
            s = 0
            k = 0
            while k < N:
                s = s + arow[k] * B[k][j]
                k = k + 1
            total = (total + s) % 1000000007
            j = j + 1
        i = i + 1
    return total
"
    )
}

/// K-means-style clustering over synthetic 2-D points, written with list
/// comprehensions (the idiomatic-Python construct the suite would otherwise
/// not exercise). Float math + list building.
pub fn kmeans_lite(n: u32) -> String {
    format!(
        "\
N = {n}
K = 4

def make_points():
    v = 77
    pts = []
    i = 0
    while i < N:
        v = (v * 1103515245 + 12345) % 2147483648
        x = (v % 1000) * 0.01
        v = (v * 1103515245 + 12345) % 2147483648
        y = (v % 1000) * 0.01
        pts.append((x, y))
        i = i + 1
    return pts

points = make_points()

def dist2(p, cx, cy):
    dx = p[0] - cx
    dy = p[1] - cy
    return dx * dx + dy * dy

def run():
    cxs = [1.0, 3.0, 6.0, 9.0]
    cys = [9.0, 2.0, 7.0, 1.0]
    step = 0
    while step < 4:
        assign = [0] * len(points)
        idx = 0
        for p in points:
            best = 0
            best_d = dist2(p, cxs[0], cys[0])
            k = 1
            while k < K:
                d = dist2(p, cxs[k], cys[k])
                if d < best_d:
                    best_d = d
                    best = k
                k = k + 1
            assign[idx] = best
            idx = idx + 1
        k = 0
        while k < K:
            members = [points[i] for i in range(len(points)) if assign[i] == k]
            if len(members) > 0:
                cxs[k] = sum([m[0] for m in members]) / len(members)
                cys[k] = sum([m[1] for m in members]) / len(members)
            k = k + 1
        step = step + 1
    checksum = sum([floor(c * 1000.0) for c in cxs]) + sum([floor(c * 1000.0) for c in cys])
    return checksum
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    fn runs_ok(src: &str) {
        let mut s = Session::start(src, 1, VmConfig::interp()).expect("compile+setup");
        let r = s.run_iteration().expect("iteration");
        assert!(r.virtual_ns > 0.0);
    }

    #[test]
    fn all_numeric_sources_compile_and_run() {
        runs_ok(&nbody_lite(50));
        runs_ok(&spectral(12));
        runs_ok(&leibniz(300));
        runs_ok(&sieve(500));
        runs_ok(&matmul(8));
        runs_ok(&kmeans_lite(60));
    }

    #[test]
    fn sieve_counts_primes_correctly() {
        let mut s = Session::start(&sieve(100), 1, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        // 25 primes below 100.
        assert_eq!(s.render(r.value), "25");
    }

    #[test]
    fn leibniz_approximates_pi() {
        let mut s = Session::start(&leibniz(10_000), 1, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        let v: f64 = s.render(r.value).parse().unwrap();
        let pi_est = v / 1e8;
        assert!(
            (pi_est - std::f64::consts::PI).abs() < 1e-3,
            "pi_est = {pi_est}"
        );
    }

    #[test]
    fn numeric_kernels_agree_across_engines() {
        for src in [
            nbody_lite(30),
            spectral(10),
            leibniz(200),
            sieve(300),
            matmul(6),
            kmeans_lite(50),
        ] {
            minipy::check_engines_agree(&src, 3).expect("engines agree");
        }
    }

    #[test]
    fn kmeans_centroids_are_seed_invariant() {
        // The workload's own LCG drives the points, so the checksum must not
        // depend on the VM seed.
        let src = kmeans_lite(80);
        let mut a = Session::start(&src, 1, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 12345, VmConfig::interp()).unwrap();
        assert_eq!(
            {
                let r = a.run_iteration().unwrap();
                a.render(r.value)
            },
            {
                let r = b.run_iteration().unwrap();
                b.render(r.value)
            }
        );
    }
}
