//! Iteration-protocol churn: `enumerate`/`zip`/`items` towers and list
//! comprehensions — the generator-pipeline shape real Python code leans
//! on (MiniPy has no `yield`, so the protocol itself is the workload).

/// Heavy iterator churn: comprehensions feeding `enumerate`, `zip`,
/// `dict.items()` and tuple-unpacking loops. The `items()` walk is
/// hash-seed ordered, but its contribution is an order-independent sum.
pub fn iter_churn(n: u32) -> String {
    format!(
        "\
N = {n}

def run():
    xs = []
    i = 0
    while i < N:
        xs.append((i * 17 + 3) % 256)
        i = i + 1
    ys = [x * 2 + 1 for x in xs]
    total = 0
    for idx, v in enumerate(xs):
        total = total + idx * (v % 7)
    for a, b in zip(xs, ys):
        total = total + (a + b) % 13
    table = {{}}
    for v in ys:
        key = 'b' + str(v % 32)
        table[key] = table.get(key, 0) + 1
    for k, c in table.items():
        total = total + c * len(k)
    pairs = [(x % 5, x % 3) for x in xs]
    for p, q in pairs:
        total = total + p * q
    return total % 1000000007
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn iterator_source_compiles_and_runs() {
        let mut s = Session::start(&iter_churn(80), 1, VmConfig::interp()).expect("compile+setup");
        s.run_iteration().expect("iteration");
    }

    #[test]
    fn iterator_workload_agrees_across_engines() {
        minipy::check_engines_agree(&iter_churn(60), 13).expect("engines agree");
    }

    #[test]
    fn items_walk_is_seed_invariant() {
        // The dict.items() traversal order depends on the hash seed; the
        // summed contribution must not.
        let src = iter_churn(120);
        let mut a = Session::start(&src, 3, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 12345, VmConfig::interp()).unwrap();
        assert_eq!(a.checksum().unwrap(), b.checksum().unwrap());
    }
}
