//! Call-overhead towers: deep call chains whose cost is dominated by
//! frame push/pop and argument passing, not by the arithmetic inside.
//!
//! [`call_tower_mono`] keeps every call site monomorphic (ints end to
//! end) — the case a call-inlining or frame-caching fast path should win.
//! [`call_tower_poly`] feeds the same callees int, float and string
//! arguments in rotation, so type-specialized call paths keep missing.

/// A twelve-deep monomorphic call chain driven from a hot loop: ~12·N
/// calls per iteration, every site seeing only ints.
pub fn call_tower_mono(n: u32) -> String {
    let mut chain = String::new();
    // f12 is the base of the tower; f1..f11 each call the next level.
    chain.push_str("def f12(x):\n    return (x * 3 + 7) % 65521\n");
    for level in (1..=11u32).rev() {
        chain.push_str(&format!(
            "\ndef f{level}(x):\n    return (f{next}(x + {level}) * 2 + {level}) % 65521\n",
            next = level + 1,
        ));
    }
    format!(
        "\
N = {n}

{chain}
def run():
    total = 0
    i = 0
    while i < N:
        total = (total + f1(i)) % 1000000007
        i = i + 1
    return total
"
    )
}

/// Polymorphic call sites: the same callees (`echo`, `bulk`) are fed int,
/// float and string arguments in rotation, defeating per-site type
/// specialization while keeping the checksum deterministic.
pub fn call_tower_poly(n: u32) -> String {
    format!(
        "\
N = {n}

def echo(v):
    return v

def bulk(v, k):
    out = echo(v)
    j = 1
    while j < k:
        out = out + echo(v)
        j = j + 1
    return out

def run():
    ints = 0
    floats = 0.0
    text_len = 0
    i = 0
    while i < N:
        m = i % 3
        if m == 0:
            ints = (ints + bulk(i, 3)) % 1000000007
        elif m == 1:
            floats = floats + bulk(i * 0.5, 3)
        else:
            text_len = text_len + len(bulk('s' + str(i % 9), 3))
        i = i + 1
    return (ints + floor(floats) + text_len) % 1000000007
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn call_sources_compile_and_run() {
        for src in [call_tower_mono(50), call_tower_poly(60)] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn call_workloads_agree_across_engines() {
        for src in [call_tower_mono(40), call_tower_poly(45)] {
            minipy::check_engines_agree(&src, 9).expect("engines agree");
        }
    }

    #[test]
    fn mono_tower_is_twelve_levels_deep() {
        let src = call_tower_mono(10);
        for level in 1..=12 {
            assert!(src.contains(&format!("def f{level}(")), "missing f{level}");
        }
    }

    #[test]
    fn poly_tower_exercises_three_argument_types() {
        // The rotation must actually reach every branch at any size.
        let mut s = Session::start(&call_tower_poly(9), 1, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        let v: i64 = s.render(r.value).parse().unwrap();
        assert!(v > 0);
    }
}
