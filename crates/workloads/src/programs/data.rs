//! Data-structure churn: dict- and list-dominated workloads.
//!
//! The dict-heavy benchmarks use **string keys**, which makes their probe
//! counts and iteration order depend on the per-invocation hash seed — the
//! inter-invocation nondeterminism source the methodology most cares about.

/// Dict churn with string keys: insert, look up, delete in waves.
pub fn dict_churn(n: u32) -> String {
    format!(
        "\
N = {n}

def run():
    d = {{}}
    i = 0
    while i < N:
        d['key_' + str(i)] = i * 3
        i = i + 1
    total = 0
    i = 0
    while i < N:
        total = total + d['key_' + str(i)]
        i = i + 1
    i = 0
    while i < N:
        if i % 2 == 0:
            del d['key_' + str(i)]
        i = i + 1
    total = total + len(d)
    return total
"
    )
}

/// Builds a string-keyed dict and iterates it (seed-dependent order, but the
/// checksum is order-independent).
pub fn str_keys(n: u32) -> String {
    format!(
        "\
N = {n}
WORDS = ['alpha', 'beta', 'gamma', 'delta', 'epsilon', 'zeta', 'eta', 'theta']

def run():
    d = {{}}
    i = 0
    while i < N:
        k = WORDS[i % 8] + str(i)
        d[k] = len(k)
        i = i + 1
    total = 0
    for k in d:
        total = total + d[k]
    return total
"
    )
}

/// Builds a pseudo-random list and sorts it (timsort stand-in).
pub fn list_sort(n: u32) -> String {
    format!(
        "\
N = {n}

def run():
    xs = []
    v = 42
    i = 0
    while i < N:
        v = (v * 1103515245 + 12345) % 2147483648
        xs.append(v % 10000)
        i = i + 1
    xs.sort()
    return xs[0] + xs[N // 2] + xs[N - 1]
"
    )
}

/// Breadth-first search over a synthetic graph stored as adjacency lists,
/// with a dict of visited nodes.
pub fn graph_bfs(n: u32) -> String {
    format!(
        "\
N = {n}
adj = []
node = 0
while node < N:
    neighbours = []
    neighbours.append((node * 7 + 1) % N)
    neighbours.append((node * 13 + 5) % N)
    neighbours.append((node * 31 + 11) % N)
    adj.append(neighbours)
    node = node + 1

def run():
    visited = {{}}
    queue = [0]
    head = 0
    order_sum = 0
    count = 0
    visited[0] = True
    while head < len(queue):
        cur = queue[head]
        head = head + 1
        order_sum = order_sum + cur * count
        count = count + 1
        for nxt in adj[cur]:
            if nxt not in visited:
                visited[nxt] = True
                queue.append(nxt)
    return order_sum % 1000000007
"
    )
}

/// Builds nested list/dict records and recursively walks them — an
/// allocation-heavy, pointer-chasing workload (pyperformance's `json_*`
/// shape).
pub fn json_like(n: u32) -> String {
    format!(
        "\
N = {n}

def make_record(i):
    inner = {{'id': i, 'score': i * 1.5, 'tag': 'item' + str(i % 50)}}
    return [inner, [i, i + 1, i + 2], (i % 7, i % 11)]

def walk(rec):
    total = rec[0]['id'] + floor(rec[0]['score'])
    total = total + len(rec[0]['tag'])
    for v in rec[1]:
        total = total + v
    total = total + rec[2][0] + rec[2][1]
    return total

def run():
    records = []
    i = 0
    while i < N:
        records.append(make_record(i))
        i = i + 1
    total = 0
    for r in records:
        total = total + walk(r)
    return total % 1000000007
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn all_data_sources_compile_and_run() {
        for src in [
            dict_churn(80),
            str_keys(80),
            list_sort(100),
            graph_bfs(60),
            json_like(40),
        ] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn data_workloads_agree_across_engines() {
        for src in [
            dict_churn(60),
            str_keys(60),
            list_sort(80),
            graph_bfs(50),
            json_like(30),
        ] {
            minipy::check_engines_agree(&src, 5).expect("engines agree");
        }
    }

    #[test]
    fn dict_checksums_are_seed_invariant() {
        // Different hash seeds permute iteration order and probe counts but
        // must not change the (order-independent) checksum.
        let src = str_keys(100);
        let mut a = Session::start(&src, 1, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 999, VmConfig::interp()).unwrap();
        assert_eq!(a.checksum().unwrap(), b.checksum().unwrap());
    }

    #[test]
    fn dict_probe_counts_vary_with_seed() {
        let src = dict_churn(200);
        let probes = |seed: u64| {
            let mut s = Session::start(&src, seed, VmConfig::interp()).unwrap();
            s.run_iteration().unwrap().counters.dict_probes
        };
        let base = probes(1);
        assert!(
            (2..8).any(|s| probes(s) != base),
            "string-keyed dict probe work should depend on the hash seed"
        );
    }

    #[test]
    fn list_sort_returns_sorted_extremes() {
        let mut s = Session::start(&list_sort(500), 1, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        let v: i64 = s.render(r.value).parse().unwrap();
        assert!(v > 0);
    }
}
