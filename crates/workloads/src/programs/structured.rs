//! Structured-data round-trips: the DyPyBench axes microbenchmark suites
//! miss — building nested values, serializing them to text, and parsing
//! the text back field by field.
//!
//! Both workloads hash the serialized document with a rolling character
//! hash, so the checksum is an oracle over the *entire* round-trip: a
//! single wrong byte anywhere in the emitted text changes the result.
//! Dict-backed records are emitted with sorted keys, keeping the document
//! (and therefore the checksum) independent of hash-seed iteration order.

/// Builds nested records (dict + list + string fields) and serializes them
/// to a JSON document with a schema-directed emitter.
pub fn json_build(n: u32) -> String {
    format!(
        "\
N = {n}

def quote(s):
    return '\"' + s + '\"'

def ser_ints(xs):
    parts = []
    for x in xs:
        parts.append(str(x))
    return '[' + ','.join(parts) + ']'

def ser_meta(m):
    parts = []
    for k in sorted(m.keys()):
        parts.append(quote(k) + ':' + str(m[k]))
    return '{{' + ','.join(parts) + '}}'

def ser_record(r):
    out = '{{' + quote('id') + ':' + str(r['id'])
    out = out + ',' + quote('name') + ':' + quote(r['name'])
    out = out + ',' + quote('scores') + ':' + ser_ints(r['scores'])
    out = out + ',' + quote('meta') + ':' + ser_meta(r['meta'])
    return out + '}}'

def make_record(i):
    scores = []
    j = 0
    while j < 1 + i % 4:
        scores.append((i * 7 + j * 13) % 1000)
        j = j + 1
    meta = {{'seq': i, 'mod': i % 17, 'bit': i % 2}}
    return {{'id': i, 'name': 'rec' + str(i % 64), 'scores': scores, 'meta': meta}}

def charhash(s):
    h = 0
    i = 0
    while i < len(s):
        h = (h * 31 + ord(s[i])) % 1000000007
        i = i + 1
    return h

def run():
    parts = []
    i = 0
    while i < N:
        parts.append(ser_record(make_record(i)))
        i = i + 1
    doc = '[' + ','.join(parts) + ']'
    return (charhash(doc) + len(doc)) % 1000000007
"
    )
}

/// CSV parse/serialize round-trip: render rows to one text blob, parse it
/// back field by field, total the numeric columns, transform every row,
/// and hash the re-rendered document.
pub fn csv_roundtrip(n: u32) -> String {
    format!(
        "\
N = {n}
NAMES = ['ada', 'grace', 'alan', 'edsger', 'barbara', 'donald']

def render_row(i):
    return str(i) + ',' + NAMES[i % 6] + ',' + str((i * i) % 9973)

def parse_total(text):
    total = 0
    for row in text.split(';'):
        fields = row.split(',')
        total = total + int(fields[0]) + len(fields[1]) + int(fields[2])
    return total

def transform(text):
    out = []
    for row in text.split(';'):
        fields = row.split(',')
        key = str(int(fields[0]) * 2)
        val = str(int(fields[2]) + 1)
        out.append(key + ',' + fields[1].upper() + ',' + val)
    return ';'.join(out)

def charhash(s):
    h = 0
    i = 0
    while i < len(s):
        h = (h * 31 + ord(s[i])) % 1000000007
        i = i + 1
    return h

def run():
    rows = []
    i = 0
    while i < N:
        rows.append(render_row(i))
        i = i + 1
    text = ';'.join(rows)
    rewritten = transform(text)
    return (charhash(rewritten) + parse_total(text)) % 1000000007
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn structured_sources_compile_and_run() {
        for src in [json_build(30), csv_roundtrip(40)] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn structured_workloads_agree_across_engines() {
        for src in [json_build(25), csv_roundtrip(30)] {
            minipy::check_engines_agree(&src, 3).expect("engines agree");
        }
    }

    #[test]
    fn json_document_checksum_is_seed_invariant() {
        // The emitter sorts dict keys, so hash-seed iteration order must
        // not leak into the serialized document.
        let src = json_build(50);
        let mut a = Session::start(&src, 1, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 31337, VmConfig::interp()).unwrap();
        assert_eq!(a.checksum().unwrap(), b.checksum().unwrap());
    }

    #[test]
    fn csv_roundtrip_checksum_is_seed_invariant() {
        let src = csv_roundtrip(60);
        let mut a = Session::start(&src, 2, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 777, VmConfig::interp()).unwrap();
        assert_eq!(a.checksum().unwrap(), b.checksum().unwrap());
    }
}
