//! String-processing workloads (pyperformance's `unpack_sequence`,
//! `regex_*`-adjacent shapes without a regex engine).

/// Repeated concat / join / split / replace over generated text.
pub fn string_builder(n: u32) -> String {
    format!(
        "\
N = {n}

def run():
    parts = []
    i = 0
    while i < N:
        parts.append('seg' + str(i % 100))
        i = i + 1
    joined = ','.join(parts)
    back = joined.split(',')
    total = len(back)
    upper = joined.upper()
    replaced = joined.replace('seg1', 'SEG_ONE')
    total = total + len(upper) + len(replaced)
    check = 0
    for p in back:
        check = check + len(p)
    return total + check
"
    )
}

/// Word counting into a dict: split text, tally frequencies, sum counts of
/// selected words. String hashing + dict probing dominated.
pub fn word_count(n: u32) -> String {
    format!(
        "\
N = {n}
VOCAB = ['the', 'quick', 'brown', 'fox', 'jumps', 'over', 'lazy', 'dog', 'and', 'runs']

words = []
v = 123
i = 0
while i < N:
    v = (v * 1103515245 + 12345) % 2147483648
    words.append(VOCAB[v % 10])
    i = i + 1
text = ' '.join(words)

def run():
    counts = {{}}
    for w in text.split(' '):
        counts[w] = counts.get(w, 0) + 1
    total = 0
    for w in VOCAB:
        total = total + counts.get(w, 0) * len(w)
    return total
"
    )
}

/// Naive substring matching: scan a haystack for needles character by
/// character (regex-engine stand-in, branch heavy).
pub fn substring_scan(n: u32) -> String {
    format!(
        "\
N = {n}
hay = ''
v = 9
i = 0
while i < N:
    v = (v * 1103515245 + 12345) % 2147483648
    hay = hay + chr(97 + v % 4)
    i = i + 1

def count_matches(haystack, needle):
    count = 0
    limit = len(haystack) - len(needle) + 1
    i = 0
    while i < limit:
        j = 0
        ok = True
        while j < len(needle):
            if haystack[i + j] != needle[j]:
                ok = False
                break
            j = j + 1
        if ok:
            count = count + 1
        i = i + 1
    return count

def run():
    total = count_matches(hay, 'abc')
    total = total + count_matches(hay, 'aa') * 3
    total = total + count_matches(hay, 'dcba') * 7
    return total
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn all_string_sources_compile_and_run() {
        for src in [string_builder(60), word_count(150), substring_scan(120)] {
            let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile+setup");
            s.run_iteration().expect("iteration");
        }
    }

    #[test]
    fn string_workloads_agree_across_engines() {
        for src in [string_builder(50), word_count(120), substring_scan(100)] {
            minipy::check_engines_agree(&src, 7).expect("engines agree");
        }
    }

    #[test]
    fn word_count_is_deterministic_across_seeds() {
        let src = word_count(200);
        let mut a = Session::start(&src, 2, VmConfig::interp()).unwrap();
        let mut b = Session::start(&src, 77, VmConfig::interp()).unwrap();
        assert_eq!(a.checksum().unwrap(), b.checksum().unwrap());
    }
}
