//! Synthetic workload generation.
//!
//! Two generators:
//!
//! * [`generate`] builds a tunable loop workload from a weight spec — used by
//!   precision-sweep experiments that need a continuum of behaviours between
//!   the fixed suite points.
//! * [`random_program`] builds small random-but-valid integer programs from a
//!   seed — used by differential tests that check the two engines compute
//!   identical results on arbitrary programs.

use serde::{Deserialize, Serialize};

/// Weights for the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Hot-loop trip count per iteration.
    pub loop_iters: u32,
    /// Units of float arithmetic per loop trip.
    pub arith_ops: u32,
    /// Dict get/set pairs per loop trip (string keys).
    pub dict_ops: u32,
    /// Container allocations per loop trip.
    pub alloc_ops: u32,
    /// Function calls per loop trip.
    pub call_ops: u32,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            loop_iters: 500,
            arith_ops: 4,
            dict_ops: 1,
            alloc_ops: 1,
            call_ops: 1,
        }
    }
}

/// Generates a MiniPy workload module implementing the spec. The module
/// defines `run()` returning an order-independent integer checksum.
pub fn generate(spec: &SyntheticSpec) -> String {
    let mut body = String::new();
    for k in 0..spec.arith_ops {
        body.push_str(&format!(
            "        acc = acc + (i * {m} + {a}) * 0.5 - floor(acc / 1000000.0) * 3.0\n",
            m = k + 1,
            a = k * 7 + 1
        ));
    }
    for k in 0..spec.dict_ops {
        body.push_str(&format!(
            "        table['k{k}_' + str(i % 64)] = i + {k}\n        acc = acc + table.get('k{k}_' + str(i % 64), 0)\n",
        ));
    }
    for k in 0..spec.alloc_ops {
        body.push_str(&format!(
            "        tmp = [i, i + {k}, i * 2]\n        acc = acc + tmp[1]\n",
        ));
    }
    for k in 0..spec.call_ops {
        body.push_str(&format!("        acc = acc + helper(i + {k})\n"));
    }
    format!(
        "\
LOOP = {loops}

def helper(x):
    return (x * 3 + 1) % 1024

def run():
    acc = 0.0
    table = {{}}
    i = 0
    while i < LOOP:
{body}        i = i + 1
    return floor(acc) % 1000000007
",
        loops = spec.loop_iters,
        body = body
    )
}

/// A tiny deterministic RNG for program generation (splitmix64).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a small random-but-valid MiniPy program from `seed`.
///
/// The program manipulates three integer accumulators through a random
/// sequence of guarded arithmetic statements inside a loop, then returns a
/// checksum. All division/modulo denominators are forced nonzero and values
/// are reduced mod 2^31 each step, so the program never raises.
pub fn random_program(seed: u64) -> String {
    let mut rng = Mix(seed);
    let n_stmts = 3 + rng.below(8) as usize;
    let loop_iters = 20 + rng.below(60);
    let vars = ["a", "b", "c"];
    let mut body = String::new();
    for _ in 0..n_stmts {
        let dst = vars[rng.below(3) as usize];
        let lhs = vars[rng.below(3) as usize];
        let rhs = vars[rng.below(3) as usize];
        let lit = 1 + rng.below(9);
        let stmt = match rng.below(6) {
            0 => format!("        {dst} = ({lhs} + {rhs} * {lit}) % 2147483647\n"),
            1 => format!("        {dst} = ({lhs} - {rhs} + {lit}) % 2147483647\n"),
            2 => format!("        {dst} = ({lhs} * {lit} + i) % 2147483647\n"),
            3 => format!("        {dst} = {lhs} // ({rhs} % {lit} + 1)\n"),
            4 => format!("        {dst} = {lhs} % ({rhs} % {lit} + 1) + i\n"),
            _ => format!(
                "        if {lhs} % 2 == 0:\n            {dst} = {dst} + {lit}\n        else:\n            {dst} = {dst} - {lit}\n"
            ),
        };
        body.push_str(&stmt);
    }
    format!(
        "\
def run():
    a = {a0}
    b = {b0}
    c = {c0}
    i = 0
    while i < {loop_iters}:
{body}        i = i + 1
    return (a % 100000) * 1000000 + (b % 1000) * 1000 + c % 1000
",
        a0 = 1 + rng.below(100),
        b0 = 1 + rng.below(100),
        c0 = 1 + rng.below(100),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::{Session, VmConfig};

    #[test]
    fn synthetic_default_compiles_and_runs() {
        let src = generate(&SyntheticSpec::default());
        let mut s = Session::start(&src, 1, VmConfig::interp()).expect("compile");
        s.run_iteration().expect("run");
    }

    #[test]
    fn synthetic_weights_shift_the_profile() {
        let arith_heavy = generate(&SyntheticSpec {
            loop_iters: 200,
            arith_ops: 8,
            dict_ops: 0,
            alloc_ops: 0,
            call_ops: 0,
        });
        let dict_heavy = generate(&SyntheticSpec {
            loop_iters: 200,
            arith_ops: 0,
            dict_ops: 4,
            alloc_ops: 0,
            call_ops: 0,
        });
        let run = |src: &str| {
            let mut s = Session::start(src, 1, VmConfig::interp()).unwrap();
            s.run_iteration().unwrap().counters
        };
        let a = run(&arith_heavy);
        let d = run(&dict_heavy);
        assert!(d.dict_probes > a.dict_probes * 10);
    }

    #[test]
    fn random_programs_never_raise() {
        for seed in 0..40 {
            let src = random_program(seed);
            let mut s = Session::start(&src, 1, VmConfig::interp())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            s.run_iteration()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn random_programs_agree_across_engines() {
        for seed in 0..25 {
            let src = random_program(seed);
            minipy::check_engines_agree(&src, seed)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn random_programs_vary_with_seed() {
        assert_ne!(random_program(1), random_program(2));
    }
}
