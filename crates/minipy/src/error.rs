//! Error types shared by every MiniPy pipeline stage.

use std::fmt;

/// A half-open byte-offset span into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// Creates a zero-width span, used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Any error produced while lexing, parsing, compiling or running MiniPy code.
#[allow(missing_docs)] // message/span fields are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum MpError {
    /// Tokenizer-level error (bad character, bad indentation, unterminated string).
    Lex { message: String, span: Span },
    /// Grammar-level error.
    Parse { message: String, span: Span },
    /// Bytecode-generation error (e.g. assignment to a call result).
    Compile { message: String, span: Span },
    /// Runtime error raised by the VM (type errors, key errors, ...).
    Runtime {
        kind: RuntimeErrorKind,
        message: String,
    },
}

/// Classification of runtime errors, mirroring Python's exception taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// Operand types unsupported for the operation.
    Type,
    /// Name not found in local or global scope.
    Name,
    /// Sequence index out of range.
    Index,
    /// Dict key not present.
    Key,
    /// Bad value (e.g. `int("x")`).
    Value,
    /// Division or modulo by zero.
    ZeroDivision,
    /// Integer overflow (MiniPy ints are 64-bit, unlike Python's bignums).
    Overflow,
    /// Call-stack depth limit exceeded.
    RecursionLimit,
    /// The virtual-time deadline for the execution passed (the workload
    /// diverged or ran far beyond its budget).
    Timeout,
    /// The opcode (step) budget for the execution was exhausted — the fuel
    /// analogue of [`RuntimeErrorKind::Timeout`], immune to cost-model
    /// changes because it counts steps, not virtual nanoseconds.
    FuelExhausted,
    /// Internal VM invariant violation; indicates a bug in MiniPy itself.
    Internal,
}

impl RuntimeErrorKind {
    /// True for the budget-exhaustion kinds ([`RuntimeErrorKind::Timeout`],
    /// [`RuntimeErrorKind::FuelExhausted`]): the program did not fail, it was
    /// stopped. Harnesses treat these as censoring events, not workload bugs.
    pub fn is_budget_exhaustion(self) -> bool {
        matches!(
            self,
            RuntimeErrorKind::Timeout | RuntimeErrorKind::FuelExhausted
        )
    }
}

impl fmt::Display for RuntimeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RuntimeErrorKind::Type => "TypeError",
            RuntimeErrorKind::Name => "NameError",
            RuntimeErrorKind::Index => "IndexError",
            RuntimeErrorKind::Key => "KeyError",
            RuntimeErrorKind::Value => "ValueError",
            RuntimeErrorKind::ZeroDivision => "ZeroDivisionError",
            RuntimeErrorKind::Overflow => "OverflowError",
            RuntimeErrorKind::RecursionLimit => "RecursionError",
            RuntimeErrorKind::Timeout => "TimeoutError",
            RuntimeErrorKind::FuelExhausted => "FuelExhaustedError",
            RuntimeErrorKind::Internal => "InternalError",
        };
        f.write_str(name)
    }
}

impl MpError {
    /// Convenience constructor for a runtime error.
    pub fn runtime(kind: RuntimeErrorKind, message: impl Into<String>) -> Self {
        MpError::Runtime {
            kind,
            message: message.into(),
        }
    }

    /// Convenience constructor for a type error.
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::runtime(RuntimeErrorKind::Type, message)
    }

    /// Convenience constructor for a name error.
    pub fn name_error(name: &str) -> Self {
        Self::runtime(
            RuntimeErrorKind::Name,
            format!("name '{name}' is not defined"),
        )
    }

    /// The runtime error kind, if this is a runtime error.
    pub fn runtime_kind(&self) -> Option<RuntimeErrorKind> {
        match self {
            MpError::Runtime { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for MpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpError::Lex { message, span } => write!(f, "lex error at {span}: {message}"),
            MpError::Parse { message, span } => write!(f, "parse error at {span}: {message}"),
            MpError::Compile { message, span } => {
                write!(f, "compile error at {span}: {message}")
            }
            MpError::Runtime { kind, message } => write!(f, "{kind}: {message}"),
        }
    }
}

impl std::error::Error for MpError {}

/// Result alias used across the crate.
pub type MpResult<T> = Result<T, MpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7, 1);
        let b = Span::new(10, 12, 2);
        let m = a.merge(b);
        assert_eq!(m.start, 3);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
    }

    #[test]
    fn display_formats_are_informative() {
        let e = MpError::name_error("x");
        assert_eq!(e.to_string(), "NameError: name 'x' is not defined");
        let e = MpError::Lex {
            message: "bad char".into(),
            span: Span::new(0, 1, 4),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn budget_kinds_are_classified() {
        assert!(RuntimeErrorKind::Timeout.is_budget_exhaustion());
        assert!(RuntimeErrorKind::FuelExhausted.is_budget_exhaustion());
        assert!(!RuntimeErrorKind::Type.is_budget_exhaustion());
        assert!(!RuntimeErrorKind::Internal.is_budget_exhaustion());
        assert_eq!(RuntimeErrorKind::Timeout.to_string(), "TimeoutError");
        assert_eq!(
            RuntimeErrorKind::FuelExhausted.to_string(),
            "FuelExhaustedError"
        );
    }

    #[test]
    fn runtime_kind_accessor() {
        let e = MpError::type_error("nope");
        assert_eq!(e.runtime_kind(), Some(RuntimeErrorKind::Type));
        let e = MpError::Parse {
            message: "x".into(),
            span: Span::synthetic(),
        };
        assert_eq!(e.runtime_kind(), None);
    }
}
