//! The tracing-JIT engine model.
//!
//! MiniPy's JIT follows the behavioural contour of meta-tracing VMs (PyPy):
//!
//! 1. **Profiling** — every loop back-edge bumps a counter (cheap, but not
//!    free: the cost model charges [`crate::cost::CostModel::profile_backedge`]).
//! 2. **Recording** — once a back-edge crosses the hot threshold, the next
//!    loop iteration runs in recording mode: it executes normally (at
//!    interpreter cost) while capturing the operand-type profile of every
//!    arithmetic opcode in the loop region.
//! 3. **Compilation** — when the back-edge fires again, the region
//!    `[loop head, back-edge]` is marked compiled; a compile cost proportional
//!    to the region size is charged. Subsequent execution of those opcodes
//!    runs at JIT cost.
//! 4. **Guards & deoptimization** — compiled arithmetic opcodes check their
//!    operand types against the recorded profile. A mismatch costs a deopt
//!    penalty and widens the guard; repeated failures blacklist the region,
//!    returning it to the interpreter forever — the mechanism behind
//!    "no steady state" benchmarks.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

/// Default number of back-edge executions before a loop is considered hot.
/// PyPy's default trace threshold is 1039; ours is lower because MiniPy
/// workloads are smaller.
pub const DEFAULT_HOT_THRESHOLD: u32 = 500;

/// Guard failures tolerated before a region is blacklisted.
pub const MAX_GUARD_FAILURES: u32 = 3;

/// Which compilation strategies the JIT uses — the axis real Python JITs
/// differ on: PyPy traces loops, Cinder/Pyston compile methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum JitMode {
    /// Loop tracing *and* method-at-a-time function compilation.
    #[default]
    Full,
    /// Loop tracing only (a pure meta-tracing VM; call-dominated code stays
    /// interpreted).
    LoopsOnly,
    /// Whole-function compilation only (a method JIT; loops inside cold
    /// functions stay interpreted).
    FunctionsOnly,
}

impl JitMode {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            JitMode::Full => "full",
            JitMode::LoopsOnly => "loops",
            JitMode::FunctionsOnly => "methods",
        }
    }
}

/// Configuration of the JIT engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitConfig {
    /// Back-edge count that triggers recording.
    pub hot_threshold: u32,
    /// Guard failures tolerated before blacklisting.
    pub max_guard_failures: u32,
    /// Which compilation strategies are enabled.
    pub mode: JitMode,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            hot_threshold: DEFAULT_HOT_THRESHOLD,
            max_guard_failures: MAX_GUARD_FAILURES,
            mode: JitMode::Full,
        }
    }
}

impl JitConfig {
    /// A loops-only (pure tracing) configuration.
    pub fn loops_only() -> Self {
        JitConfig {
            mode: JitMode::LoopsOnly,
            ..JitConfig::default()
        }
    }

    /// A functions-only (method JIT) configuration.
    pub fn functions_only() -> Self {
        JitConfig {
            mode: JitMode::FunctionsOnly,
            ..JitConfig::default()
        }
    }
}

/// What happened on a back-edge, so the interpreter can charge costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackedgeEvent {
    /// Nothing special; profile cost only.
    Cold,
    /// The loop just became hot; recording starts with the next iteration.
    StartRecording,
    /// Recording finished and the region was compiled; contains the number of
    /// bytecodes in the compiled region (for compile costing).
    Compiled {
        /// Bytecodes in the region.
        ops: usize,
    },
}

/// Outcome of a type-guard check in compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOutcome {
    /// Types matched the trace.
    Pass,
    /// Guard failed; the guard was widened and the region stays compiled.
    Deopt,
    /// Guard failed once too often; the region was blacklisted.
    Blacklisted,
}

#[derive(Debug, Clone)]
struct Recording {
    head: u32,
    backedge_from: u32,
    types: HashMap<u32, u16>,
}

#[derive(Debug, Clone)]
struct Region {
    head: u32,
    end: u32,
    fail_count: u32,
    types: HashMap<u32, u16>,
}

#[derive(Debug, Clone, Default)]
struct CodeJit {
    backedge_counts: HashMap<u32, u32>,
    /// Per-op: 0 = interpreted, otherwise region index + 1.
    compiled: Vec<u32>,
    recording: Option<Recording>,
    regions: Vec<Region>,
    blacklisted_heads: HashSet<u32>,
    /// Function-entry profile count (method-at-a-time compilation).
    entry_count: u32,
    /// Whole-function compilation already happened.
    function_compiled: bool,
}

/// Whole-program JIT state, parallel to the program's code objects.
#[derive(Debug, Clone)]
pub struct JitState {
    config: JitConfig,
    codes: Vec<CodeJit>,
}

impl JitState {
    /// Creates JIT state for a program with the given per-code op counts.
    pub fn new(config: JitConfig, code_op_counts: &[usize]) -> Self {
        let codes = code_op_counts
            .iter()
            .map(|&n| CodeJit {
                compiled: vec![0; n],
                ..CodeJit::default()
            })
            .collect();
        JitState { config, codes }
    }

    /// True if the opcode at `(code_id, pc)` runs at JIT cost.
    #[inline]
    pub fn is_compiled(&self, code_id: usize, pc: usize) -> bool {
        self.codes[code_id]
            .compiled
            .get(pc)
            .map(|&r| r != 0)
            .unwrap_or(false)
    }

    /// True if a recording is active for `code_id` and `pc` lies inside the
    /// region being recorded (the interpreter then captures type profiles).
    #[inline]
    pub fn is_recording(&self, code_id: usize, pc: usize) -> bool {
        match &self.codes[code_id].recording {
            Some(r) => (pc as u32) >= r.head && (pc as u32) <= r.backedge_from,
            None => false,
        }
    }

    /// Captures an operand-type observation while recording.
    pub fn record_types(&mut self, code_id: usize, pc: usize, mask: u16) {
        if let Some(r) = &mut self.codes[code_id].recording {
            if (pc as u32) >= r.head && (pc as u32) <= r.backedge_from {
                *r.types.entry(pc as u32).or_insert(0) |= mask;
            }
        }
    }

    /// Handles a back-edge from `from_pc` to `target_pc`.
    pub fn on_backedge(
        &mut self,
        code_id: usize,
        from_pc: usize,
        target_pc: usize,
    ) -> BackedgeEvent {
        if self.config.mode == JitMode::FunctionsOnly {
            return BackedgeEvent::Cold;
        }
        let cfg = self.config;
        let cj = &mut self.codes[code_id];
        let (from, target) = (from_pc as u32, target_pc as u32);

        // Finish an active recording whose back-edge just fired.
        if let Some(rec) = &cj.recording {
            if rec.backedge_from == from && rec.head == target {
                let rec = cj.recording.take().expect("checked above");
                let region_idx = cj.regions.len() as u32 + 1;
                let mut ops = 0usize;
                for pc in rec.head..=rec.backedge_from {
                    let slot = &mut cj.compiled[pc as usize];
                    if *slot == 0 {
                        *slot = region_idx;
                        ops += 1;
                    }
                }
                cj.regions.push(Region {
                    head: rec.head,
                    end: rec.backedge_from,
                    fail_count: 0,
                    types: rec.types,
                });
                return BackedgeEvent::Compiled { ops };
            }
        }

        // Already compiled or given up on?
        if cj.compiled[target_pc] != 0 || cj.blacklisted_heads.contains(&target) {
            return BackedgeEvent::Cold;
        }

        let count = cj.backedge_counts.entry(target).or_insert(0);
        *count += 1;
        if *count >= cfg.hot_threshold {
            // Displace any stalled recording (its loop exited mid-record).
            cj.recording = Some(Recording {
                head: target,
                backedge_from: from,
                types: HashMap::new(),
            });
            *count = 0;
            return BackedgeEvent::StartRecording;
        }
        BackedgeEvent::Cold
    }

    /// Checks the type guard for a compiled arithmetic opcode.
    pub fn check_guard(&mut self, code_id: usize, pc: usize, mask: u16) -> GuardOutcome {
        let max_fails = self.config.max_guard_failures;
        let cj = &mut self.codes[code_id];
        let region_ref = cj.compiled[pc];
        if region_ref == 0 {
            return GuardOutcome::Pass;
        }
        let region = &mut cj.regions[(region_ref - 1) as usize];
        let expected = region.types.get(&(pc as u32)).copied().unwrap_or(0);
        if expected == 0 || (mask & !expected) == 0 {
            return GuardOutcome::Pass;
        }
        // Guard failure: widen, maybe blacklist.
        region.fail_count += 1;
        *region
            .types
            .get_mut(&(pc as u32))
            .expect("expected != 0 means entry exists") |= mask;
        if region.fail_count > max_fails {
            let (head, end) = (region.head, region.end);
            cj.blacklisted_heads.insert(head);
            for p in head..=end {
                if cj.compiled[p as usize] == region_ref {
                    cj.compiled[p as usize] = 0;
                }
            }
            GuardOutcome::Blacklisted
        } else {
            GuardOutcome::Deopt
        }
    }

    /// Handles a function entry (method-at-a-time compilation path, the
    /// complement to loop tracing: call-dominated code like recursive
    /// workloads has no hot back-edges, but its functions get hot).
    ///
    /// Returns the number of newly compiled ops when the entry count crosses
    /// the hot threshold, `None` otherwise. Whole-function regions carry no
    /// type profile, so they never deoptimize (loop regions inside them keep
    /// their guards).
    pub fn on_function_entry(&mut self, code_id: usize) -> Option<usize> {
        if self.config.mode == JitMode::LoopsOnly {
            return None;
        }
        let threshold = self.config.hot_threshold;
        let cj = &mut self.codes[code_id];
        if cj.function_compiled {
            return None;
        }
        cj.entry_count += 1;
        if cj.entry_count < threshold {
            return None;
        }
        cj.function_compiled = true;
        let region_idx = cj.regions.len() as u32 + 1;
        let mut ops = 0usize;
        for slot in cj.compiled.iter_mut() {
            if *slot == 0 {
                *slot = region_idx;
                ops += 1;
            }
        }
        if ops == 0 {
            return None;
        }
        cj.regions.push(Region {
            head: 0,
            end: cj.compiled.len().saturating_sub(1) as u32,
            fail_count: 0,
            types: HashMap::new(),
        });
        Some(ops)
    }

    /// Number of regions ever compiled in the whole program.
    pub fn compiled_regions(&self) -> usize {
        self.codes.iter().map(|c| c.regions.len()).sum()
    }

    /// Number of blacklisted loop heads in the whole program.
    pub fn blacklisted_count(&self) -> usize {
        self.codes.iter().map(|c| c.blacklisted_heads.len()).sum()
    }

    /// The configured hot threshold.
    pub fn config(&self) -> JitConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::TypeTag;

    fn jit_for(ops: usize) -> JitState {
        JitState::new(
            JitConfig {
                hot_threshold: 3,
                max_guard_failures: 2,
                mode: JitMode::Full,
            },
            &[ops],
        )
    }

    #[test]
    fn cold_loop_stays_interpreted() {
        let mut j = jit_for(10);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        assert!(!j.is_compiled(0, 5));
    }

    #[test]
    fn hot_loop_records_then_compiles() {
        let mut j = jit_for(10);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::StartRecording);
        assert!(j.is_recording(0, 5));
        assert!(!j.is_recording(0, 9));
        j.record_types(0, 5, TypeTag::Int.bit());
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Compiled { ops: 7 });
        assert!(j.is_compiled(0, 2));
        assert!(j.is_compiled(0, 8));
        assert!(!j.is_compiled(0, 9));
        assert_eq!(j.compiled_regions(), 1);
    }

    #[test]
    fn guards_pass_on_recorded_types() {
        let mut j = jit_for(10);
        for _ in 0..3 {
            j.on_backedge(0, 8, 2);
        }
        j.record_types(0, 5, TypeTag::Int.bit());
        j.on_backedge(0, 8, 2);
        assert_eq!(j.check_guard(0, 5, TypeTag::Int.bit()), GuardOutcome::Pass);
        // Unprofiled pc in region: no guard.
        assert_eq!(
            j.check_guard(0, 4, TypeTag::Float.bit()),
            GuardOutcome::Pass
        );
    }

    #[test]
    fn guard_failure_widens_then_blacklists() {
        let mut j = jit_for(10);
        for _ in 0..3 {
            j.on_backedge(0, 8, 2);
        }
        j.record_types(0, 5, TypeTag::Int.bit());
        j.on_backedge(0, 8, 2);
        // First float: deopt + widen.
        assert_eq!(
            j.check_guard(0, 5, TypeTag::Float.bit()),
            GuardOutcome::Deopt
        );
        // Float now accepted.
        assert_eq!(
            j.check_guard(0, 5, TypeTag::Float.bit()),
            GuardOutcome::Pass
        );
        // New types keep failing until blacklist.
        assert_eq!(j.check_guard(0, 5, TypeTag::Str.bit()), GuardOutcome::Deopt);
        assert_eq!(
            j.check_guard(0, 5, TypeTag::List.bit()),
            GuardOutcome::Blacklisted
        );
        assert!(!j.is_compiled(0, 5));
        assert_eq!(j.blacklisted_count(), 1);
        // Blacklisted loops never recompile.
        for _ in 0..10 {
            assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        }
    }

    #[test]
    fn nested_region_does_not_steal_compiled_ops() {
        let mut j = jit_for(20);
        // Inner loop [5..=10] compiles first.
        for _ in 0..3 {
            j.on_backedge(0, 10, 5);
        }
        assert_eq!(j.on_backedge(0, 10, 5), BackedgeEvent::Compiled { ops: 6 });
        // Outer loop [2..=15] compiles around it; only new ops counted.
        for _ in 0..3 {
            j.on_backedge(0, 15, 2);
        }
        match j.on_backedge(0, 15, 2) {
            BackedgeEvent::Compiled { ops } => assert_eq!(ops, 14 - 6),
            other => panic!("unexpected {other:?}"),
        }
        assert!(j.is_compiled(0, 3));
        assert!(j.is_compiled(0, 7));
    }

    #[test]
    fn loops_only_mode_never_compiles_functions() {
        let mut j = JitState::new(
            JitConfig {
                hot_threshold: 2,
                max_guard_failures: 2,
                mode: JitMode::LoopsOnly,
            },
            &[10],
        );
        for _ in 0..10 {
            assert_eq!(j.on_function_entry(0), None);
        }
        // Loops still work.
        j.on_backedge(0, 8, 2);
        assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::StartRecording);
    }

    #[test]
    fn functions_only_mode_never_traces_loops() {
        let mut j = JitState::new(
            JitConfig {
                hot_threshold: 2,
                max_guard_failures: 2,
                mode: JitMode::FunctionsOnly,
            },
            &[10],
        );
        for _ in 0..10 {
            assert_eq!(j.on_backedge(0, 8, 2), BackedgeEvent::Cold);
        }
        // Functions still compile.
        assert_eq!(j.on_function_entry(0), None);
        assert_eq!(j.on_function_entry(0), Some(10));
    }

    #[test]
    fn mode_names() {
        assert_eq!(JitMode::Full.name(), "full");
        assert_eq!(JitMode::LoopsOnly.name(), "loops");
        assert_eq!(JitMode::FunctionsOnly.name(), "methods");
    }

    #[test]
    fn stalled_recording_is_displaced_by_new_hot_loop() {
        let mut j = jit_for(30);
        for _ in 0..3 {
            j.on_backedge(0, 8, 2); // starts recording for loop A
        }
        assert!(j.is_recording(0, 4));
        // Loop B becomes hot; A's recording never finished.
        for _ in 0..2 {
            j.on_backedge(0, 25, 20);
        }
        assert_eq!(j.on_backedge(0, 25, 20), BackedgeEvent::StartRecording);
        assert!(j.is_recording(0, 22));
        assert!(!j.is_recording(0, 4));
    }
}
