//! Bytecode representation: opcodes, code objects, compiled programs.
//!
//! MiniPy compiles to a conventional stack bytecode, deliberately close in
//! shape to CPython's: constant pools, local slots resolved at compile time
//! (CPython's `LOAD_FAST`), global access by interned name, explicit iterator
//! protocol ops for `for` loops.

use std::fmt;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (interned into the heap once per VM session).
    Str(String),
    /// Reference to another code object (for `def`).
    Func(usize),
}

/// Operation-class buckets used by the cost model and dynamic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Pure stack shuffling: loads of locals/consts, pops, dups.
    Stack,
    /// Arithmetic and comparison.
    Arith,
    /// Global/builtin name lookups.
    Name,
    /// Subscript loads/stores, slicing (memory-touching).
    Memory,
    /// Dict-specific operations.
    Dict,
    /// Object construction (lists, tuples, dicts, strings).
    Alloc,
    /// Control flow: jumps, loop bookkeeping.
    Branch,
    /// Calls and returns.
    Call,
}

/// A single bytecode instruction.
///
/// Jump targets are absolute instruction indices within the owning
/// [`Code::ops`] vector.
#[allow(missing_docs)] // arithmetic/comparison variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[idx]`.
    LoadConst(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push global (falls back to builtin) named `names[idx]`.
    LoadGlobal(u16),
    /// Pop into global named `names[idx]`.
    StoreGlobal(u16),
    /// Binary arithmetic: pops rhs then lhs, pushes result.
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Pow,
    /// Comparisons: pop rhs then lhs, push bool.
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    /// Membership: pops container then item, pushes bool.
    CmpIn,
    CmpNotIn,
    /// Unary negate.
    Neg,
    /// Unary boolean not.
    Not,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if falsy.
    PopJumpIfFalse(u32),
    /// Pop; jump if truthy.
    PopJumpIfTrue(u32),
    /// If TOS falsy: jump, keep TOS. Else pop. (`and`)
    JumpIfFalsePeek(u32),
    /// If TOS truthy: jump, keep TOS. Else pop. (`or`)
    JumpIfTruePeek(u32),
    /// Pop n values, push a new list.
    BuildList(u16),
    /// Pop n values, push a new tuple.
    BuildTuple(u16),
    /// Pop 2n values (k1 v1 k2 v2 ...), push a new dict.
    BuildDict(u16),
    /// Pop index then object, push `object[index]`.
    IndexLoad,
    /// Stack: `[obj, idx, val]` → stores `obj[idx] = val`.
    IndexStore,
    /// Stack: `[obj, idx]` → deletes `obj[idx]`.
    IndexDel,
    /// Stack: `[obj, lo, hi]` (missing bounds are None) → push slice.
    SliceLoad,
    /// Duplicate top two stack values: `[a, b]` → `[a, b, a, b]`.
    Dup2,
    /// Pop TOS and append it to the list `n` slots below the (new) top of
    /// stack — CPython's `LIST_APPEND`, used by list comprehensions.
    ListAppend(u16),
    /// Pop and discard TOS.
    Pop,
    /// Pop callee and `argc` args, push call result.
    Call(u16),
    /// Pop receiver and `argc` args, invoke method `names[idx]`.
    CallMethod {
        name: u16,
        argc: u16,
    },
    /// Pop return value and leave the frame.
    Return,
    /// Pop an iterable, push an iterator over it.
    GetIter,
    /// If the iterator at TOS has a next item, push it; else pop the iterator
    /// and jump to the target.
    ForIter(u32),
    /// Pop a sequence of exactly n elements, push them in reverse order.
    UnpackSequence(u16),
    /// Push a function value for `consts[idx]` (which must be `Const::Func`).
    MakeFunction(u16),
    /// No operation (used to patch out instructions).
    Nop,
    /// Superinstruction: `LoadLocal(a); LoadLocal(b); FUSABLE_BINOPS[bin]`.
    ///
    /// The fusion pass replaces the three-op sequence with this op followed by
    /// two `Nop`s, so instruction indices — jump targets, back-edge pcs, JIT
    /// region spans — are unchanged. The handler charges each absorbed op at
    /// its original pc, so virtual time is bit-identical to the unfused
    /// sequence; the padding `Nop`s never execute (fusion is skipped when a
    /// jump lands inside the sequence).
    FusedLLBin {
        /// First local slot (left operand).
        a: u16,
        /// Second local slot (right operand).
        b: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Superinstruction: `LoadLocal(a); LoadConst(c); FUSABLE_BINOPS[bin]`.
    /// Same padding and charging contract as [`Op::FusedLLBin`].
    FusedLCBin {
        /// Local slot (left operand).
        a: u16,
        /// Constant index (right operand).
        c: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadLocal(b); FUSABLE_BINOPS[bin]; StoreLocal(d)` —
    /// the accumulate shape (`s = s + x`). Padded with three `Nop`s.
    FusedLLBinSt {
        /// First local slot (left operand).
        a: u16,
        /// Second local slot (right operand).
        b: u16,
        /// Destination local slot.
        d: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadConst(c); FUSABLE_BINOPS[bin]; StoreLocal(d)` —
    /// the increment shape (`i = i + 1`). Padded with three `Nop`s.
    FusedLCBinSt {
        /// Local slot (left operand).
        a: u16,
        /// Constant index (right operand).
        c: u16,
        /// Destination local slot.
        d: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadLocal(b); FUSABLE_BINOPS[bin]; PopJumpIfFalse(t)` —
    /// the loop-header shape (`while i < n:`). Only emitted when the jump
    /// target fits in `u16`. Padded with three `Nop`s.
    FusedLLCmpJf {
        /// First local slot (left operand).
        a: u16,
        /// Second local slot (right operand).
        b: u16,
        /// Jump target if the result is falsy.
        t: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadConst(c); FUSABLE_BINOPS[bin]; PopJumpIfFalse(t)`.
    /// Only emitted when the jump target fits in `u16`. Padded with three
    /// `Nop`s.
    FusedLCCmpJf {
        /// Local slot (left operand).
        a: u16,
        /// Constant index (right operand).
        c: u16,
        /// Jump target if the result is falsy.
        t: u16,
        /// Index into [`FUSABLE_BINOPS`].
        bin: u8,
    },
    /// Superinstruction: `LoadLocal(a); LoadLocal(b); IndexLoad` — the
    /// subscript shape (`xs[i]`). Padded with two `Nop`s.
    FusedLLIdx {
        /// Local slot holding the container.
        a: u16,
        /// Local slot holding the index.
        b: u16,
    },
    /// Superinstruction: `LoadLocal(a); LoadConst(c); IndexLoad` (`p[0]`).
    /// Padded with two `Nop`s.
    FusedLCIdx {
        /// Local slot holding the container.
        a: u16,
        /// Constant index of the subscript value.
        c: u16,
    },
    /// Superinstruction: `ForIter(t); StoreLocal(d)` — the head of every
    /// `for` loop iteration. On exhaustion only the `ForIter` half runs (the
    /// store is jumped over), exactly as unfused. Only emitted when the jump
    /// target fits in `u16`. Padded with one `Nop`.
    FusedForSt {
        /// Jump target when the iterator is exhausted.
        t: u16,
        /// Local slot receiving the next item.
        d: u16,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadLocal(b); LoadLocal(v); IndexStore` — the
    /// subscript-assignment shape (`xs[i] = y`). Padded with three `Nop`s.
    FusedLLLIdxSt {
        /// Local slot holding the container.
        a: u16,
        /// Local slot holding the index.
        b: u16,
        /// Local slot holding the value to store.
        v: u16,
    },
    /// Four-op superinstruction:
    /// `LoadLocal(a); LoadLocal(b); LoadConst(c); IndexStore`
    /// (`xs[i] = CONST`). Padded with three `Nop`s.
    FusedLLCIdxSt {
        /// Local slot holding the container.
        a: u16,
        /// Local slot holding the index.
        b: u16,
        /// Constant index of the value to store.
        c: u16,
    },
    /// Two-op superinstruction: `LoadLocal(b); IndexLoad` with the container
    /// already on the stack — the inner subscript of a nested chain
    /// (`A[i][k]`). Padded with one `Nop`.
    FusedSIdx {
        /// Local slot holding the index.
        b: u16,
    },
    /// Three-op superinstruction:
    /// `LoadLocal(b); LoadLocal(v); IndexStore` with the container already on
    /// the stack (`C[i][j] = s`). Padded with two `Nop`s.
    FusedSLIdxSt {
        /// Local slot holding the index.
        b: u16,
        /// Local slot holding the value to store.
        v: u16,
    },
    /// Three-op superinstruction:
    /// `LoadLocal(b); LoadConst(c); IndexStore` with the container already on
    /// the stack (`C[i][j] = CONST`). Padded with two `Nop`s.
    FusedSCIdxSt {
        /// Local slot holding the index.
        b: u16,
        /// Constant index of the value to store.
        c: u16,
    },
}

// The dispatch loop fetches one `Op` per instruction; keeping the enum within
// a single word is load-bearing for interpreter throughput. Every fused
// variant is sized to fit (which is why absorbed jump targets are `u16`).
const _: () = assert!(std::mem::size_of::<Op>() <= 8);

/// Binary opcodes a superinstruction can absorb, indexed by the `bin` field
/// of the fused variants.
pub const FUSABLE_BINOPS: [Op; 13] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::FloorDiv,
    Op::Mod,
    Op::Pow,
    Op::CmpEq,
    Op::CmpNe,
    Op::CmpLt,
    Op::CmpLe,
    Op::CmpGt,
    Op::CmpGe,
];

/// Returns the [`FUSABLE_BINOPS`] encoding of `op` if a superinstruction can
/// end with it.
pub fn fusable_bin_index(op: Op) -> Option<u8> {
    FUSABLE_BINOPS
        .iter()
        .position(|&o| o == op)
        .map(|i| i as u8)
}

impl Op {
    /// The cost-model class of this opcode.
    pub fn class(self) -> OpClass {
        match self {
            Op::LoadConst(_)
            | Op::LoadLocal(_)
            | Op::StoreLocal(_)
            | Op::Dup2
            | Op::Pop
            | Op::UnpackSequence(_)
            | Op::Nop
            | Op::MakeFunction(_) => OpClass::Stack,
            // Fused ops carry the class of their first absorbed op (a local
            // load); the handler charges the remaining sub-ops itself.
            Op::FusedLLBin { .. }
            | Op::FusedLCBin { .. }
            | Op::FusedLLBinSt { .. }
            | Op::FusedLCBinSt { .. }
            | Op::FusedLLCmpJf { .. }
            | Op::FusedLCCmpJf { .. }
            | Op::FusedLLIdx { .. }
            | Op::FusedLCIdx { .. }
            | Op::FusedLLLIdxSt { .. }
            | Op::FusedLLCIdxSt { .. }
            | Op::FusedSIdx { .. }
            | Op::FusedSLIdxSt { .. }
            | Op::FusedSCIdxSt { .. } => OpClass::Stack,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::FloorDiv
            | Op::Mod
            | Op::Pow
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::Neg
            | Op::Not => OpClass::Arith,
            Op::LoadGlobal(_) | Op::StoreGlobal(_) => OpClass::Name,
            Op::IndexLoad | Op::IndexStore | Op::IndexDel | Op::SliceLoad | Op::ListAppend(_) => {
                OpClass::Memory
            }
            Op::CmpIn | Op::CmpNotIn => OpClass::Dict,
            Op::BuildList(_) | Op::BuildTuple(_) | Op::BuildDict(_) => OpClass::Alloc,
            Op::Jump(_)
            | Op::PopJumpIfFalse(_)
            | Op::PopJumpIfTrue(_)
            | Op::JumpIfFalsePeek(_)
            | Op::JumpIfTruePeek(_)
            | Op::GetIter
            | Op::ForIter(_)
            | Op::FusedForSt { .. } => OpClass::Branch,
            Op::Call(_) | Op::CallMethod { .. } | Op::Return => OpClass::Call,
        }
    }

    /// Returns the jump target if this opcode is a jump (including fused ops
    /// that absorbed a conditional jump).
    pub fn jump_target(self) -> Option<u32> {
        match self {
            Op::Jump(t)
            | Op::PopJumpIfFalse(t)
            | Op::PopJumpIfTrue(t)
            | Op::JumpIfFalsePeek(t)
            | Op::JumpIfTruePeek(t)
            | Op::ForIter(t) => Some(t),
            Op::FusedLLCmpJf { t, .. } | Op::FusedLCCmpJf { t, .. } | Op::FusedForSt { t, .. } => {
                Some(u32::from(t))
            }
            _ => None,
        }
    }

    /// Expands a superinstruction back into the exact op sequence it
    /// replaced; `None` for ordinary ops. The fusion pass guarantees that
    /// substituting this sequence over the op and its `Nop` padding yields
    /// the unfused program — tests use this to prove fusion is a pure
    /// re-encoding.
    pub fn unfused_seq(self) -> Option<Vec<Op>> {
        let bin = |i: u8| FUSABLE_BINOPS[i as usize];
        match self {
            Op::FusedLLBin { a, b, bin: i } => {
                Some(vec![Op::LoadLocal(a), Op::LoadLocal(b), bin(i)])
            }
            Op::FusedLCBin { a, c, bin: i } => {
                Some(vec![Op::LoadLocal(a), Op::LoadConst(c), bin(i)])
            }
            Op::FusedLLBinSt { a, b, d, bin: i } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadLocal(b),
                bin(i),
                Op::StoreLocal(d),
            ]),
            Op::FusedLCBinSt { a, c, d, bin: i } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadConst(c),
                bin(i),
                Op::StoreLocal(d),
            ]),
            Op::FusedLLCmpJf { a, b, t, bin: i } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadLocal(b),
                bin(i),
                Op::PopJumpIfFalse(u32::from(t)),
            ]),
            Op::FusedLCCmpJf { a, c, t, bin: i } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadConst(c),
                bin(i),
                Op::PopJumpIfFalse(u32::from(t)),
            ]),
            Op::FusedLLIdx { a, b } => {
                Some(vec![Op::LoadLocal(a), Op::LoadLocal(b), Op::IndexLoad])
            }
            Op::FusedLCIdx { a, c } => {
                Some(vec![Op::LoadLocal(a), Op::LoadConst(c), Op::IndexLoad])
            }
            Op::FusedForSt { t, d } => Some(vec![Op::ForIter(u32::from(t)), Op::StoreLocal(d)]),
            Op::FusedLLLIdxSt { a, b, v } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadLocal(b),
                Op::LoadLocal(v),
                Op::IndexStore,
            ]),
            Op::FusedLLCIdxSt { a, b, c } => Some(vec![
                Op::LoadLocal(a),
                Op::LoadLocal(b),
                Op::LoadConst(c),
                Op::IndexStore,
            ]),
            Op::FusedSIdx { b } => Some(vec![Op::LoadLocal(b), Op::IndexLoad]),
            Op::FusedSLIdxSt { b, v } => {
                Some(vec![Op::LoadLocal(b), Op::LoadLocal(v), Op::IndexStore])
            }
            Op::FusedSCIdxSt { b, c } => {
                Some(vec![Op::LoadLocal(b), Op::LoadConst(c), Op::IndexStore])
            }
            _ => None,
        }
    }
}

/// A compiled function (or module) body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Code {
    /// Function name (`<module>` for the module body).
    pub name: String,
    /// Number of parameters (always the first locals).
    pub n_params: u16,
    /// Total number of local slots.
    pub n_locals: u16,
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Source line for each instruction (parallel to `ops`).
    pub lines: Vec<u32>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned names for globals and methods.
    pub names: Vec<String>,
}

impl Code {
    /// Renders a human-readable disassembly, useful in tests and debugging.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "code {} (params={}, locals={})\n",
            self.name, self.n_params, self.n_locals
        ));
        for (i, op) in self.ops.iter().enumerate() {
            let line = self.lines.get(i).copied().unwrap_or(0);
            out.push_str(&format!("  {i:4}  L{line:<4} {}\n", self.format_op(*op)));
        }
        out
    }

    fn format_op(&self, op: Op) -> String {
        match op {
            Op::LoadConst(i) => format!("LOAD_CONST {:?}", self.consts.get(i as usize)),
            Op::LoadGlobal(i) => format!("LOAD_GLOBAL {}", self.name_at(i)),
            Op::StoreGlobal(i) => format!("STORE_GLOBAL {}", self.name_at(i)),
            Op::CallMethod { name, argc } => {
                format!("CALL_METHOD {} argc={argc}", self.name_at(name))
            }
            Op::FusedLLBin { a, b, bin } => {
                format!(
                    "FUSED LoadLocal({a}) LoadLocal({b}) {:?}",
                    FUSABLE_BINOPS[bin as usize]
                )
            }
            Op::FusedLCBin { a, c, bin } => {
                format!(
                    "FUSED LoadLocal({a}) LOAD_CONST {:?} {:?}",
                    self.consts.get(c as usize),
                    FUSABLE_BINOPS[bin as usize]
                )
            }
            other => match other.unfused_seq() {
                Some(seq) => {
                    let parts: Vec<String> = seq.into_iter().map(|o| self.format_op(o)).collect();
                    format!("FUSED [{}]", parts.join("; "))
                }
                None => format!("{other:?}"),
            },
        }
    }

    fn name_at(&self, i: u16) -> &str {
        self.names
            .get(i as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

/// A fully compiled MiniPy program: the module body plus all function bodies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All code objects. Index 0 is always the module body.
    pub codes: Vec<Code>,
}

impl Program {
    /// The module (top-level) code object.
    pub fn module_code(&self) -> &Code {
        &self.codes[0]
    }

    /// Total instruction count across all code objects.
    pub fn total_ops(&self) -> usize {
        self.codes.iter().map(|c| c.ops.len()).sum()
    }

    /// Verifies the static invariants the dispatch loop relies on for its
    /// unchecked hot-path accesses (verified-bytecode execution):
    ///
    /// * every code object ends with `Return`, so straight-line execution
    ///   can never run off the instruction stream;
    /// * every jump target — including targets absorbed into fused ops — is
    ///   a valid instruction index;
    /// * every local-slot, constant-pool and name-table index is in bounds
    ///   for its code object;
    /// * every fused op is followed by its full `Nop` padding, so its
    ///   fall-through pc is a valid instruction index.
    ///
    /// * the operand stack never underflows, every reachable pc has one
    ///   consistent stack depth, and each code object's maximum depth is
    ///   known (returned per code, in order) — which is what lets the VM
    ///   pre-reserve stack capacity at frame entry and use unchecked
    ///   push/pop in the dispatch loop.
    ///
    /// The VM runs this once at load and refuses programs that fail, making
    /// the per-op bounds checks it skips provably redundant. The compiler
    /// always produces valid programs; this guards hand-built or corrupted
    /// ones.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<Vec<u32>, String> {
        let mut max_stacks = Vec::with_capacity(self.codes.len());
        for (ci, code) in self.codes.iter().enumerate() {
            let n = code.ops.len();
            let ctx = |pc: usize, msg: String| format!("code {ci} ({}) pc {pc}: {msg}", code.name);
            if !matches!(code.ops.last(), Some(Op::Return)) {
                return Err(format!(
                    "code {ci} ({}): does not end with Return",
                    code.name
                ));
            }
            let check_local = |pc: usize, slot: u16| -> Result<(), String> {
                if slot >= code.n_locals {
                    return Err(ctx(pc, format!("local slot {slot} >= {}", code.n_locals)));
                }
                Ok(())
            };
            let check_const = |pc: usize, idx: u16| -> Result<(), String> {
                if idx as usize >= code.consts.len() {
                    return Err(ctx(pc, format!("const index {idx} out of range")));
                }
                Ok(())
            };
            let check_name = |pc: usize, idx: u16| -> Result<(), String> {
                if idx as usize >= code.names.len() {
                    return Err(ctx(pc, format!("name index {idx} out of range")));
                }
                Ok(())
            };
            for (pc, &op) in code.ops.iter().enumerate() {
                if let Some(t) = op.jump_target() {
                    if t as usize >= n {
                        return Err(ctx(pc, format!("jump target {t} out of range")));
                    }
                }
                if let Some(seq) = op.unfused_seq() {
                    if pc + seq.len() > n
                        || code.ops[pc + 1..pc + seq.len()]
                            .iter()
                            .any(|&o| o != Op::Nop)
                    {
                        return Err(ctx(pc, "fused op lacks Nop padding".into()));
                    }
                    for (k, sub) in seq.into_iter().enumerate() {
                        match sub {
                            Op::LoadLocal(i) | Op::StoreLocal(i) => check_local(pc + k, i)?,
                            Op::LoadConst(i) => check_const(pc + k, i)?,
                            _ => {}
                        }
                    }
                    continue;
                }
                match op {
                    Op::LoadLocal(i) | Op::StoreLocal(i) => check_local(pc, i)?,
                    Op::LoadConst(i) | Op::MakeFunction(i) => check_const(pc, i)?,
                    Op::LoadGlobal(i) | Op::StoreGlobal(i) => check_name(pc, i)?,
                    Op::CallMethod { name, .. } => check_name(pc, name)?,
                    _ => {}
                }
            }
            max_stacks.push(
                code.max_stack_depth()
                    .map_err(|e| format!("code {ci} ({}): {e}", code.name))?,
            );
        }
        Ok(max_stacks)
    }
}

/// `(pops, pushes)` of a straight-line primitive op. Branching ops
/// (`Jump`/`PopJumpIf*`/`JumpIf*Peek`/`ForIter`), `Return` and fused ops have
/// path-dependent effects and are handled by [`Code::max_stack_depth`]
/// directly.
fn linear_stack_effect(op: Op) -> (u32, u32) {
    match op {
        Op::LoadConst(_) | Op::LoadLocal(_) | Op::LoadGlobal(_) | Op::MakeFunction(_) => (0, 1),
        Op::StoreLocal(_) | Op::StoreGlobal(_) | Op::Pop => (1, 0),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::FloorDiv
        | Op::Mod
        | Op::Pow
        | Op::CmpEq
        | Op::CmpNe
        | Op::CmpLt
        | Op::CmpLe
        | Op::CmpGt
        | Op::CmpGe
        | Op::CmpIn
        | Op::CmpNotIn
        | Op::IndexLoad => (2, 1),
        Op::Neg | Op::Not | Op::GetIter => (1, 1),
        Op::BuildList(k) | Op::BuildTuple(k) => (u32::from(k), 1),
        Op::BuildDict(k) => (2 * u32::from(k), 1),
        Op::IndexStore => (3, 0),
        Op::IndexDel => (2, 0),
        Op::SliceLoad => (3, 1),
        Op::Dup2 => (2, 4),
        // Pops the value, then touches the list `k - 1` below the new top —
        // encoded as pop-all/push-back so the depth requirement is enforced.
        Op::ListAppend(k) => (u32::from(k) + 1, u32::from(k)),
        Op::Call(k) => (u32::from(k) + 1, 1),
        Op::CallMethod { argc, .. } => (u32::from(argc) + 1, 1),
        Op::UnpackSequence(k) => (1, u32::from(k)),
        Op::Nop => (0, 0),
        _ => unreachable!("non-linear op in linear_stack_effect: {op:?}"),
    }
}

impl Code {
    /// Worklist dataflow over the instruction stream: checks that the
    /// operand stack never underflows and that every reachable pc is entered
    /// at exactly one depth, and returns the maximum depth any reachable
    /// path attains.
    ///
    /// Fused ops are expanded through [`Op::unfused_seq`] and simulated
    /// sub-op by sub-op, so their transient depths count too; the handlers'
    /// own transient stack use never exceeds the unfused sequence's. Must
    /// run after jump targets have been bounds-checked.
    fn max_stack_depth(&self) -> Result<u32, String> {
        let n = self.ops.len();
        let mut depth_at: Vec<Option<u32>> = vec![None; n];
        let mut work: Vec<(usize, u32)> = vec![(0, 0)];
        let mut max_depth: u32 = 0;
        while let Some((pc, d)) = work.pop() {
            match depth_at[pc] {
                Some(seen) if seen == d => continue,
                Some(seen) => {
                    return Err(format!("pc {pc}: inconsistent stack depth ({seen} vs {d})"));
                }
                None => depth_at[pc] = Some(d),
            }
            let op = self.ops[pc];
            let seq = op.unfused_seq().unwrap_or_else(|| vec![op]);
            let mut cur = d;
            let mut falls = true;
            for (k, &sub) in seq.iter().enumerate() {
                let sub_pc = pc + k;
                let need = |cur: u32, pops: u32| -> Result<(), String> {
                    if cur < pops {
                        Err(format!(
                            "pc {sub_pc}: stack underflow (depth {cur}, op pops {pops})"
                        ))
                    } else {
                        Ok(())
                    }
                };
                match sub {
                    Op::Jump(t) => {
                        work.push((t as usize, cur));
                        falls = false;
                        break;
                    }
                    Op::Return => {
                        need(cur, 1)?;
                        falls = false;
                        break;
                    }
                    Op::PopJumpIfFalse(t) | Op::PopJumpIfTrue(t) => {
                        need(cur, 1)?;
                        cur -= 1;
                        work.push((t as usize, cur));
                    }
                    Op::JumpIfFalsePeek(t) | Op::JumpIfTruePeek(t) => {
                        // The jump path keeps TOS; the fall-through pops it.
                        need(cur, 1)?;
                        work.push((t as usize, cur));
                        cur -= 1;
                    }
                    Op::ForIter(t) => {
                        // Exhaustion pops the iterator and jumps; the
                        // fall-through pushes the produced item on top of it.
                        need(cur, 1)?;
                        work.push((t as usize, cur - 1));
                        cur += 1;
                        max_depth = max_depth.max(cur);
                    }
                    sub => {
                        let (pops, pushes) = linear_stack_effect(sub);
                        need(cur, pops)?;
                        cur = cur - pops + pushes;
                        max_depth = max_depth.max(cur);
                    }
                }
            }
            if falls {
                let next = pc + seq.len();
                if next >= n {
                    return Err(format!("pc {pc}: falls through the end of the code"));
                }
                work.push((next, cur));
            }
        }
        Ok(max_depth)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for code in &self.codes {
            writeln!(f, "{}", code.disassemble())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes_cover_costing_buckets() {
        assert_eq!(Op::Add.class(), OpClass::Arith);
        assert_eq!(Op::LoadLocal(0).class(), OpClass::Stack);
        assert_eq!(Op::LoadGlobal(0).class(), OpClass::Name);
        assert_eq!(Op::IndexLoad.class(), OpClass::Memory);
        assert_eq!(Op::BuildList(2).class(), OpClass::Alloc);
        assert_eq!(Op::Jump(0).class(), OpClass::Branch);
        assert_eq!(Op::Call(1).class(), OpClass::Call);
        assert_eq!(Op::CmpIn.class(), OpClass::Dict);
    }

    #[test]
    fn jump_targets() {
        assert_eq!(Op::Jump(7).jump_target(), Some(7));
        assert_eq!(Op::ForIter(3).jump_target(), Some(3));
        assert_eq!(Op::Add.jump_target(), None);
    }

    #[test]
    fn disassembly_mentions_names_and_consts() {
        let code = Code {
            name: "f".into(),
            n_params: 0,
            n_locals: 1,
            ops: vec![
                Op::LoadConst(0),
                Op::StoreLocal(0),
                Op::LoadGlobal(0),
                Op::Return,
            ],
            lines: vec![1, 1, 2, 2],
            consts: vec![Const::Int(42)],
            names: vec!["g".into()],
        };
        let d = code.disassemble();
        assert!(d.contains("LOAD_CONST"));
        assert!(d.contains("42"));
        assert!(d.contains("LOAD_GLOBAL g"));
    }
}
