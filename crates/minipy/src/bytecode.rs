//! Bytecode representation: opcodes, code objects, compiled programs.
//!
//! MiniPy compiles to a conventional stack bytecode, deliberately close in
//! shape to CPython's: constant pools, local slots resolved at compile time
//! (CPython's `LOAD_FAST`), global access by interned name, explicit iterator
//! protocol ops for `for` loops.

use std::fmt;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (interned into the heap once per VM session).
    Str(String),
    /// Reference to another code object (for `def`).
    Func(usize),
}

/// Operation-class buckets used by the cost model and dynamic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Pure stack shuffling: loads of locals/consts, pops, dups.
    Stack,
    /// Arithmetic and comparison.
    Arith,
    /// Global/builtin name lookups.
    Name,
    /// Subscript loads/stores, slicing (memory-touching).
    Memory,
    /// Dict-specific operations.
    Dict,
    /// Object construction (lists, tuples, dicts, strings).
    Alloc,
    /// Control flow: jumps, loop bookkeeping.
    Branch,
    /// Calls and returns.
    Call,
}

/// A single bytecode instruction.
///
/// Jump targets are absolute instruction indices within the owning
/// [`Code::ops`] vector.
#[allow(missing_docs)] // arithmetic/comparison variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[idx]`.
    LoadConst(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push global (falls back to builtin) named `names[idx]`.
    LoadGlobal(u16),
    /// Pop into global named `names[idx]`.
    StoreGlobal(u16),
    /// Binary arithmetic: pops rhs then lhs, pushes result.
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Pow,
    /// Comparisons: pop rhs then lhs, push bool.
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    /// Membership: pops container then item, pushes bool.
    CmpIn,
    CmpNotIn,
    /// Unary negate.
    Neg,
    /// Unary boolean not.
    Not,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if falsy.
    PopJumpIfFalse(u32),
    /// Pop; jump if truthy.
    PopJumpIfTrue(u32),
    /// If TOS falsy: jump, keep TOS. Else pop. (`and`)
    JumpIfFalsePeek(u32),
    /// If TOS truthy: jump, keep TOS. Else pop. (`or`)
    JumpIfTruePeek(u32),
    /// Pop n values, push a new list.
    BuildList(u16),
    /// Pop n values, push a new tuple.
    BuildTuple(u16),
    /// Pop 2n values (k1 v1 k2 v2 ...), push a new dict.
    BuildDict(u16),
    /// Pop index then object, push `object[index]`.
    IndexLoad,
    /// Stack: `[obj, idx, val]` → stores `obj[idx] = val`.
    IndexStore,
    /// Stack: `[obj, idx]` → deletes `obj[idx]`.
    IndexDel,
    /// Stack: `[obj, lo, hi]` (missing bounds are None) → push slice.
    SliceLoad,
    /// Duplicate top two stack values: `[a, b]` → `[a, b, a, b]`.
    Dup2,
    /// Pop TOS and append it to the list `n` slots below the (new) top of
    /// stack — CPython's `LIST_APPEND`, used by list comprehensions.
    ListAppend(u16),
    /// Pop and discard TOS.
    Pop,
    /// Pop callee and `argc` args, push call result.
    Call(u16),
    /// Pop receiver and `argc` args, invoke method `names[idx]`.
    CallMethod {
        name: u16,
        argc: u16,
    },
    /// Pop return value and leave the frame.
    Return,
    /// Pop an iterable, push an iterator over it.
    GetIter,
    /// If the iterator at TOS has a next item, push it; else pop the iterator
    /// and jump to the target.
    ForIter(u32),
    /// Pop a sequence of exactly n elements, push them in reverse order.
    UnpackSequence(u16),
    /// Push a function value for `consts[idx]` (which must be `Const::Func`).
    MakeFunction(u16),
    /// No operation (used to patch out instructions).
    Nop,
}

impl Op {
    /// The cost-model class of this opcode.
    pub fn class(self) -> OpClass {
        match self {
            Op::LoadConst(_)
            | Op::LoadLocal(_)
            | Op::StoreLocal(_)
            | Op::Dup2
            | Op::Pop
            | Op::UnpackSequence(_)
            | Op::Nop
            | Op::MakeFunction(_) => OpClass::Stack,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::FloorDiv
            | Op::Mod
            | Op::Pow
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::Neg
            | Op::Not => OpClass::Arith,
            Op::LoadGlobal(_) | Op::StoreGlobal(_) => OpClass::Name,
            Op::IndexLoad | Op::IndexStore | Op::IndexDel | Op::SliceLoad | Op::ListAppend(_) => {
                OpClass::Memory
            }
            Op::CmpIn | Op::CmpNotIn => OpClass::Dict,
            Op::BuildList(_) | Op::BuildTuple(_) | Op::BuildDict(_) => OpClass::Alloc,
            Op::Jump(_)
            | Op::PopJumpIfFalse(_)
            | Op::PopJumpIfTrue(_)
            | Op::JumpIfFalsePeek(_)
            | Op::JumpIfTruePeek(_)
            | Op::GetIter
            | Op::ForIter(_) => OpClass::Branch,
            Op::Call(_) | Op::CallMethod { .. } | Op::Return => OpClass::Call,
        }
    }

    /// Returns the jump target if this opcode is a jump.
    pub fn jump_target(self) -> Option<u32> {
        match self {
            Op::Jump(t)
            | Op::PopJumpIfFalse(t)
            | Op::PopJumpIfTrue(t)
            | Op::JumpIfFalsePeek(t)
            | Op::JumpIfTruePeek(t)
            | Op::ForIter(t) => Some(t),
            _ => None,
        }
    }
}

/// A compiled function (or module) body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Code {
    /// Function name (`<module>` for the module body).
    pub name: String,
    /// Number of parameters (always the first locals).
    pub n_params: u16,
    /// Total number of local slots.
    pub n_locals: u16,
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Source line for each instruction (parallel to `ops`).
    pub lines: Vec<u32>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned names for globals and methods.
    pub names: Vec<String>,
}

impl Code {
    /// Renders a human-readable disassembly, useful in tests and debugging.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "code {} (params={}, locals={})\n",
            self.name, self.n_params, self.n_locals
        ));
        for (i, op) in self.ops.iter().enumerate() {
            let line = self.lines.get(i).copied().unwrap_or(0);
            out.push_str(&format!("  {i:4}  L{line:<4} {}\n", self.format_op(*op)));
        }
        out
    }

    fn format_op(&self, op: Op) -> String {
        match op {
            Op::LoadConst(i) => format!("LOAD_CONST {:?}", self.consts.get(i as usize)),
            Op::LoadGlobal(i) => format!("LOAD_GLOBAL {}", self.name_at(i)),
            Op::StoreGlobal(i) => format!("STORE_GLOBAL {}", self.name_at(i)),
            Op::CallMethod { name, argc } => {
                format!("CALL_METHOD {} argc={argc}", self.name_at(name))
            }
            other => format!("{other:?}"),
        }
    }

    fn name_at(&self, i: u16) -> &str {
        self.names
            .get(i as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

/// A fully compiled MiniPy program: the module body plus all function bodies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All code objects. Index 0 is always the module body.
    pub codes: Vec<Code>,
}

impl Program {
    /// The module (top-level) code object.
    pub fn module_code(&self) -> &Code {
        &self.codes[0]
    }

    /// Total instruction count across all code objects.
    pub fn total_ops(&self) -> usize {
        self.codes.iter().map(|c| c.ops.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for code in &self.codes {
            writeln!(f, "{}", code.disassemble())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes_cover_costing_buckets() {
        assert_eq!(Op::Add.class(), OpClass::Arith);
        assert_eq!(Op::LoadLocal(0).class(), OpClass::Stack);
        assert_eq!(Op::LoadGlobal(0).class(), OpClass::Name);
        assert_eq!(Op::IndexLoad.class(), OpClass::Memory);
        assert_eq!(Op::BuildList(2).class(), OpClass::Alloc);
        assert_eq!(Op::Jump(0).class(), OpClass::Branch);
        assert_eq!(Op::Call(1).class(), OpClass::Call);
        assert_eq!(Op::CmpIn.class(), OpClass::Dict);
    }

    #[test]
    fn jump_targets() {
        assert_eq!(Op::Jump(7).jump_target(), Some(7));
        assert_eq!(Op::ForIter(3).jump_target(), Some(3));
        assert_eq!(Op::Add.jump_target(), None);
    }

    #[test]
    fn disassembly_mentions_names_and_consts() {
        let code = Code {
            name: "f".into(),
            n_params: 0,
            n_locals: 1,
            ops: vec![
                Op::LoadConst(0),
                Op::StoreLocal(0),
                Op::LoadGlobal(0),
                Op::Return,
            ],
            lines: vec![1, 1, 2, 2],
            consts: vec![Const::Int(42)],
            names: vec!["g".into()],
        };
        let d = code.disassemble();
        assert!(d.contains("LOAD_CONST"));
        assert!(d.contains("42"));
        assert!(d.contains("LOAD_GLOBAL g"));
    }
}
