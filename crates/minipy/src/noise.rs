//! Exogenous nondeterminism sources.
//!
//! Three of the four nondeterminism sources the methodology must contend with
//! are modelled here (the fourth — GC pauses — is endogenous and emerges from
//! the heap itself):
//!
//! * **Hash-seed randomization** — enabled/disabled here, implemented in
//!   [`crate::dict`]. Structural: changes probe counts and iteration order.
//! * **Memory-layout / ASLR factor** — one multiplicative factor per
//!   invocation applied to layout-sensitive opcode classes. Models the
//!   "some process instances are just slower" effect of address-space
//!   randomization and allocator placement.
//! * **OS jitter** — a Poisson process of scheduling pauses in virtual time,
//!   with log-normal pause lengths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Which nondeterminism sources are active for a VM session.
///
/// The Table-4 ablation experiment toggles these one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Randomize the string-hash seed per invocation (`PYTHONHASHSEED`-style).
    /// When false, the seed is pinned to 0 for every invocation.
    pub hash_randomization: bool,
    /// Sample a per-invocation layout factor (ASLR analogue).
    pub layout: bool,
    /// Inject OS scheduling jitter pauses.
    pub os_jitter: bool,
    /// Charge virtual time for GC pauses. Collection still runs (semantics
    /// are unchanged) but costs nothing when disabled.
    pub gc_costed: bool,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            hash_randomization: true,
            layout: true,
            os_jitter: true,
            gc_costed: true,
        }
    }
}

impl NoiseConfig {
    /// All sources disabled: fully deterministic timing given the program.
    pub fn quiescent() -> Self {
        NoiseConfig {
            hash_randomization: false,
            layout: false,
            os_jitter: false,
            gc_costed: false,
        }
    }
}

/// Log-normal sigma of the layout factor; ~3.5% coefficient of variation,
/// in line with measured ASLR/layout effects on real hardware.
const LAYOUT_SIGMA: f64 = 0.035;

/// Samples the per-invocation layout factor.
///
/// Returns exactly 1.0 when disabled, otherwise a log-normal factor centred
/// on 1.0.
pub fn sample_layout_factor(rng: &mut StdRng, enabled: bool) -> f64 {
    if !enabled {
        return 1.0;
    }
    let dist = LogNormal::new(0.0, LAYOUT_SIGMA).expect("valid lognormal");
    dist.sample(rng)
}

/// Mean virtual time between OS jitter events, ns (2 ms).
const JITTER_MEAN_INTERVAL_NS: f64 = 2.0e6;
/// Log-normal parameters of a jitter pause: median ≈ 8 µs, long right tail.
const JITTER_PAUSE_MU: f64 = 9.0; // ln(8103 ns)
const JITTER_PAUSE_SIGMA: f64 = 0.9;

/// A Poisson process of OS scheduling pauses on the virtual timeline.
#[derive(Debug, Clone)]
pub struct OsJitter {
    rng: StdRng,
    enabled: bool,
    next_event_ns: f64,
    pause_dist: LogNormal<f64>,
    /// Total pause time injected so far, ns.
    pub total_injected_ns: f64,
    /// Number of pauses injected so far.
    pub events: u64,
}

impl OsJitter {
    /// Creates the jitter process with its own RNG stream.
    pub fn new(seed: u64, enabled: bool) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let first = Self::sample_interval(&mut rng);
        OsJitter {
            rng,
            enabled,
            next_event_ns: first,
            pause_dist: LogNormal::new(JITTER_PAUSE_MU, JITTER_PAUSE_SIGMA)
                .expect("valid lognormal"),
            total_injected_ns: 0.0,
            events: 0,
        }
    }

    fn sample_interval(rng: &mut StdRng) -> f64 {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -JITTER_MEAN_INTERVAL_NS * u.ln()
    }

    /// Returns the pause time (ns) for all jitter events that fired before
    /// virtual time `now_ns`, advancing the process state.
    pub fn pauses_until(&mut self, now_ns: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let mut total = 0.0;
        while self.next_event_ns <= now_ns {
            let pause = self.pause_dist.sample(&mut self.rng);
            total += pause;
            self.events += 1;
            self.next_event_ns += Self::sample_interval(&mut self.rng);
        }
        self.total_injected_ns += total;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_factor_disabled_is_exactly_one() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_layout_factor(&mut rng, false), 1.0);
    }

    #[test]
    fn layout_factor_is_near_one_but_varies() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..1000)
            .map(|_| sample_layout_factor(&mut rng, true))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().all(|&f| f > 0.8 && f < 1.25));
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.01, "factors must actually vary");
    }

    #[test]
    fn jitter_disabled_injects_nothing() {
        let mut j = OsJitter::new(1, false);
        assert_eq!(j.pauses_until(1e12), 0.0);
        assert_eq!(j.events, 0);
    }

    #[test]
    fn jitter_rate_matches_poisson_mean() {
        let mut j = OsJitter::new(7, true);
        let horizon = 2.0e9; // 2 s of virtual time => ~1000 events expected
        j.pauses_until(horizon);
        let expected = horizon / JITTER_MEAN_INTERVAL_NS;
        assert!(
            (j.events as f64) > expected * 0.8 && (j.events as f64) < expected * 1.2,
            "events {} vs expected {expected}",
            j.events
        );
        assert!(j.total_injected_ns > 0.0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = OsJitter::new(9, true);
        let mut b = OsJitter::new(9, true);
        assert_eq!(a.pauses_until(1e8), b.pauses_until(1e8));
        let mut c = OsJitter::new(10, true);
        // Different seed, almost surely different totals.
        assert_ne!(a.total_injected_ns, c.pauses_until(1e8));
    }

    #[test]
    fn pauses_accumulate_incrementally() {
        let mut j = OsJitter::new(3, true);
        let p1 = j.pauses_until(1e7);
        let p2 = j.pauses_until(2e7);
        let mut k = OsJitter::new(3, true);
        let all = k.pauses_until(2e7);
        assert!((p1 + p2 - all).abs() < 1e-6);
    }
}
