//! The virtual-time cost model.
//!
//! Costs are expressed in virtual nanoseconds per event. The absolute values
//! are calibrated to the rough shape of CPython on commodity hardware
//! (tens of ns per simple bytecode, ~100–200 ns per call, multi-microsecond
//! GC pauses); the *ratios* between interpreter and JIT execution are what
//! the reproduced experiments depend on.

use serde::{Deserialize, Serialize};

use crate::bytecode::OpClass;

/// Per-event virtual-time costs for one execution engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Base cost of one interpreted opcode, per [`OpClass`], in ns.
    pub interp_op: OpClassTable,
    /// Multiplier applied to opcode costs when executing inside a compiled
    /// (JIT) region, per class. Arithmetic benefits the most, dict and call
    /// operations the least — mirroring meta-tracing JITs.
    pub jit_multiplier: OpClassTable,
    /// Extra cost per object allocation (on top of the Alloc opcode), ns.
    pub alloc_object: f64,
    /// Cost per dict probe (slot touched), ns. Memory-like: layout-sensitive.
    pub dict_probe: f64,
    /// Cost per element moved during container construction/copy, ns.
    pub per_element: f64,
    /// GC pause: fixed component, ns.
    pub gc_base: f64,
    /// GC pause: per live (marked) object, ns.
    pub gc_per_live: f64,
    /// GC pause: per freed object, ns.
    pub gc_per_freed: f64,
    /// JIT trace compilation: fixed component, ns.
    pub jit_compile_base: f64,
    /// JIT trace compilation: per bytecode in the compiled region, ns.
    pub jit_compile_per_op: f64,
    /// Penalty for a guard failure (deoptimization), ns.
    pub deopt_penalty: f64,
    /// Cost of the profiling counter bump on each back-edge while cold, ns.
    pub profile_backedge: f64,
}

/// A cost (or multiplier) per opcode class.
#[allow(missing_docs)] // fields mirror the OpClass variants
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpClassTable {
    pub stack: f64,
    pub arith: f64,
    pub name: f64,
    pub memory: f64,
    pub dict: f64,
    pub alloc: f64,
    pub branch: f64,
    pub call: f64,
}

impl OpClassTable {
    /// Looks up the entry for `class`.
    pub fn get(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Stack => self.stack,
            OpClass::Arith => self.arith,
            OpClass::Name => self.name,
            OpClass::Memory => self.memory,
            OpClass::Dict => self.dict,
            OpClass::Alloc => self.alloc,
            OpClass::Branch => self.branch,
            OpClass::Call => self.call,
        }
    }

    /// Returns true when `class` models a memory-touching operation whose
    /// cost is perturbed by the per-invocation layout factor (ASLR analogue).
    pub fn layout_sensitive(class: OpClass) -> bool {
        matches!(
            class,
            OpClass::Memory | OpClass::Dict | OpClass::Alloc | OpClass::Name
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            interp_op: OpClassTable {
                stack: 14.0,
                arith: 32.0,
                name: 48.0,
                memory: 58.0,
                dict: 52.0,
                alloc: 85.0,
                branch: 20.0,
                call: 175.0,
            },
            jit_multiplier: OpClassTable {
                stack: 0.05,
                arith: 0.07,
                name: 0.22,
                memory: 0.30,
                dict: 0.55,
                alloc: 0.60,
                branch: 0.08,
                call: 0.45,
            },
            alloc_object: 62.0,
            dict_probe: 30.0,
            per_element: 7.5,
            gc_base: 18_000.0,
            gc_per_live: 11.0,
            gc_per_freed: 5.0,
            jit_compile_base: 180_000.0,
            jit_compile_per_op: 2_600.0,
            deopt_penalty: 9_500.0,
            profile_backedge: 3.0,
        }
    }
}

impl CostModel {
    /// Cost of executing one opcode of `class` in the interpreter.
    pub fn interp_cost(&self, class: OpClass) -> f64 {
        self.interp_op.get(class)
    }

    /// Cost of executing one opcode of `class` inside a compiled region.
    pub fn jit_cost(&self, class: OpClass) -> f64 {
        self.interp_op.get(class) * self.jit_multiplier.get(class)
    }

    /// Cost of one GC pause given the marked/freed counts.
    pub fn gc_pause(&self, live: u64, freed: u64) -> f64 {
        self.gc_base + self.gc_per_live * live as f64 + self.gc_per_freed * freed as f64
    }

    /// Cost of compiling a trace spanning `ops` bytecodes.
    pub fn compile_cost(&self, ops: usize) -> f64 {
        self.jit_compile_base + self.jit_compile_per_op * ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_is_cheaper_everywhere() {
        let m = CostModel::default();
        for class in [
            OpClass::Stack,
            OpClass::Arith,
            OpClass::Name,
            OpClass::Memory,
            OpClass::Dict,
            OpClass::Alloc,
            OpClass::Branch,
            OpClass::Call,
        ] {
            assert!(
                m.jit_cost(class) < m.interp_cost(class),
                "JIT must beat interp for {class:?}"
            );
        }
    }

    #[test]
    fn arithmetic_speedup_is_order_of_magnitude() {
        let m = CostModel::default();
        let speedup = m.interp_cost(OpClass::Arith) / m.jit_cost(OpClass::Arith);
        assert!(speedup > 8.0, "arith speedup {speedup}");
    }

    #[test]
    fn dict_speedup_is_modest() {
        let m = CostModel::default();
        let speedup = m.interp_cost(OpClass::Dict) / m.jit_cost(OpClass::Dict);
        assert!(speedup < 3.0, "dict speedup {speedup}");
    }

    #[test]
    fn gc_pause_scales_with_work() {
        let m = CostModel::default();
        assert!(m.gc_pause(1000, 1000) > m.gc_pause(10, 10));
        assert!(m.gc_pause(0, 0) >= m.gc_base);
    }

    #[test]
    fn layout_sensitivity_classification() {
        assert!(OpClassTable::layout_sensitive(OpClass::Memory));
        assert!(OpClassTable::layout_sensitive(OpClass::Dict));
        assert!(!OpClassTable::layout_sensitive(OpClass::Arith));
        assert!(!OpClassTable::layout_sensitive(OpClass::Branch));
    }

    #[test]
    fn compile_cost_grows_with_region_size() {
        let m = CostModel::default();
        assert!(m.compile_cost(100) > m.compile_cost(10));
        assert!(m.compile_cost(0) >= m.jit_compile_base);
    }
}
