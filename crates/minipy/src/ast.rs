//! Abstract syntax tree for MiniPy.

use crate::error::Span;

/// A binary operator.
#[allow(missing_docs)] // variants are self-describing operator names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// True division (`/`): always produces a float, as in Python 3.
    Div,
    /// Floor division (`//`).
    FloorDiv,
    /// Modulo with Python sign semantics.
    Mod,
    /// Power (`**`), right-associative.
    Pow,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// Membership test (`in`).
    In,
    /// Negated membership test (`not in`).
    NotIn,
}

impl BinOp {
    /// True for the comparison operators (including membership tests).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::NotEq
                | BinOp::Lt
                | BinOp::LtEq
                | BinOp::Gt
                | BinOp::GtEq
                | BinOp::In
                | BinOp::NotIn
        )
    }
}

/// A unary operator.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Arithmetic identity (`+x`).
    Pos,
    /// Boolean negation.
    Not,
}

/// An expression node.
#[allow(missing_docs)] // field names (value/span/...) are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int { value: i64, span: Span },
    /// Float literal.
    Float { value: f64, span: Span },
    /// String literal.
    Str { value: String, span: Span },
    /// `True` or `False`.
    Bool { value: bool, span: Span },
    /// `None`.
    None { span: Span },
    /// Variable reference.
    Name { name: String, span: Span },
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
        span: Span,
    },
    /// Unary operation.
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
        span: Span,
    },
    /// Short-circuit `and` / `or`.
    BoolChain {
        is_and: bool,
        left: Box<Expr>,
        right: Box<Expr>,
        span: Span,
    },
    /// Function call: `callee(args...)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        span: Span,
    },
    /// Method call: `receiver.method(args...)`.
    MethodCall {
        receiver: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// Subscript: `obj[index]`.
    Index {
        object: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// Slice: `obj[lo:hi]` — either bound may be omitted.
    Slice {
        object: Box<Expr>,
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
        span: Span,
    },
    /// List display: `[a, b, c]`.
    List { items: Vec<Expr>, span: Span },
    /// Tuple display: `(a, b)` or bare `a, b`.
    Tuple { items: Vec<Expr>, span: Span },
    /// Dict display: `{k: v, ...}`.
    Dict {
        pairs: Vec<(Expr, Expr)>,
        span: Span,
    },
    /// Conditional expression: `a if c else b`.
    IfExp {
        cond: Box<Expr>,
        then: Box<Expr>,
        orelse: Box<Expr>,
        span: Span,
    },
    /// List comprehension: `[expr for target in iterable if cond]`.
    ///
    /// Unlike Python 3, the loop target shares the enclosing scope (as in
    /// Python 2) — a deliberate simplification documented in the crate docs.
    ListComp {
        expr: Box<Expr>,
        target: Box<Target>,
        iterable: Box<Expr>,
        cond: Option<Box<Expr>>,
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Float { span, .. }
            | Expr::Str { span, .. }
            | Expr::Bool { span, .. }
            | Expr::None { span }
            | Expr::Name { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::BoolChain { span, .. }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Index { span, .. }
            | Expr::Slice { span, .. }
            | Expr::List { span, .. }
            | Expr::Tuple { span, .. }
            | Expr::Dict { span, .. }
            | Expr::IfExp { span, .. }
            | Expr::ListComp { span, .. } => *span,
        }
    }
}

/// An assignment target.
#[allow(missing_docs)] // field names (value/span/...) are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Plain variable: `x = ...`.
    Name { name: String, span: Span },
    /// Subscript store: `obj[i] = ...`.
    Index {
        object: Expr,
        index: Expr,
        span: Span,
    },
    /// Tuple unpacking: `a, b = ...`.
    Tuple { elts: Vec<Target>, span: Span },
}

impl Target {
    /// The source span of this target.
    pub fn span(&self) -> Span {
        match self {
            Target::Name { span, .. } | Target::Index { span, .. } | Target::Tuple { span, .. } => {
                *span
            }
        }
    }
}

/// A statement node.
#[allow(missing_docs)] // field names (value/span/...) are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression evaluated for effect.
    Expr { value: Expr },
    /// `target = value`.
    Assign { target: Target, value: Expr },
    /// `target <op>= value`.
    AugAssign {
        target: Target,
        op: BinOp,
        value: Expr,
    },
    /// `if` / `elif` / `else` chain (elifs are desugared into nested ifs).
    If {
        cond: Expr,
        then: Vec<Stmt>,
        orelse: Vec<Stmt>,
    },
    /// `while cond:` loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// `for target in iterable:` loop.
    For {
        target: Target,
        iterable: Expr,
        body: Vec<Stmt>,
    },
    /// Function definition.
    Def {
        name: String,
        params: Vec<String>,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `return [value]`.
    Return { value: Option<Expr>, span: Span },
    /// `break`.
    Break { span: Span },
    /// `continue`.
    Continue { span: Span },
    /// `pass`.
    Pass,
    /// `global name, ...`.
    Global { names: Vec<String>, span: Span },
    /// `del obj[key]` — removes a dict entry or list element.
    DelIndex {
        object: Expr,
        index: Expr,
        span: Span,
    },
}

/// A parsed module: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The statements in source order.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::In.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Pow.is_comparison());
    }

    #[test]
    fn expr_span_accessor() {
        let e = Expr::Int {
            value: 3,
            span: Span::new(5, 6, 2),
        };
        assert_eq!(e.span().start, 5);
    }
}
