//! The virtual clock.
//!
//! Every observable cost in MiniPy — opcode execution, allocation, dict probe
//! work, GC pauses, JIT compilation, injected OS jitter — advances this clock.
//! Experiments therefore measure *virtual nanoseconds*: fully reproducible
//! given the seeds, yet statistically shaped like real Python timings.

/// A monotonically increasing virtual clock, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    ns: f64,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        VirtualClock { ns: 0.0 }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.ns
    }

    /// Advances the clock by `delta_ns` (negative deltas are ignored).
    pub fn advance(&mut self, delta_ns: f64) {
        if delta_ns > 0.0 {
            self.ns += delta_ns;
        }
    }

    /// Returns elapsed nanoseconds since `start_ns`.
    pub fn elapsed_since(&self, start_ns: f64) -> f64 {
        (self.ns - start_ns).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(10.0);
        c.advance(5.5);
        assert!((c.now_ns() - 15.5).abs() < 1e-12);
    }

    #[test]
    fn negative_deltas_ignored() {
        let mut c = VirtualClock::new();
        c.advance(10.0);
        c.advance(-100.0);
        assert_eq!(c.now_ns(), 10.0);
    }

    #[test]
    fn elapsed_since_checkpoint() {
        let mut c = VirtualClock::new();
        c.advance(100.0);
        let t0 = c.now_ns();
        c.advance(42.0);
        assert!((c.elapsed_since(t0) - 42.0).abs() < 1e-12);
    }
}
