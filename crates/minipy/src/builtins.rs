//! Built-in functions and built-in-type methods.
//!
//! Builtins are bound to global slots at session load (shadowable by user
//! code, like Python). Methods are resolved to dense [`MethodId`]s at load so
//! the hot call path never touches strings; dispatch is on
//! `(receiver type, method id)`.

use crate::error::{MpError, MpResult, RuntimeErrorKind};
use crate::heap::{IterState, Object};
use crate::value::{Handle, Value};
use crate::vm::Vm;

/// Arities up to this use a fixed stack buffer instead of a heap `Vec` when
/// copying call arguments out of the operand stack.
const INLINE_ARGS: usize = 8;

/// Identifier of a built-in function.
#[allow(missing_docs)] // variants mirror the Python builtin names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFn {
    Print,
    Len,
    Range,
    Abs,
    Min,
    Max,
    Sum,
    Int,
    Float,
    Str,
    Bool,
    Sorted,
    Chr,
    Ord,
    List,
    Tuple,
    Dict,
    Enumerate,
    Zip,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Floor,
    Ceil,
    Round,
}

/// Resolves a global name to a builtin, if it is one.
pub fn resolve_builtin(name: &str) -> Option<BuiltinFn> {
    Some(match name {
        "print" => BuiltinFn::Print,
        "len" => BuiltinFn::Len,
        "range" => BuiltinFn::Range,
        "abs" => BuiltinFn::Abs,
        "min" => BuiltinFn::Min,
        "max" => BuiltinFn::Max,
        "sum" => BuiltinFn::Sum,
        "int" => BuiltinFn::Int,
        "float" => BuiltinFn::Float,
        "str" => BuiltinFn::Str,
        "bool" => BuiltinFn::Bool,
        "sorted" => BuiltinFn::Sorted,
        "chr" => BuiltinFn::Chr,
        "ord" => BuiltinFn::Ord,
        "list" => BuiltinFn::List,
        "tuple" => BuiltinFn::Tuple,
        "dict" => BuiltinFn::Dict,
        "enumerate" => BuiltinFn::Enumerate,
        "zip" => BuiltinFn::Zip,
        "sqrt" => BuiltinFn::Sqrt,
        "sin" => BuiltinFn::Sin,
        "cos" => BuiltinFn::Cos,
        "exp" => BuiltinFn::Exp,
        "log" => BuiltinFn::Log,
        "floor" => BuiltinFn::Floor,
        "ceil" => BuiltinFn::Ceil,
        "round" => BuiltinFn::Round,
        _ => return None,
    })
}

/// Identifier of a built-in-type method (dispatched by receiver type).
#[allow(missing_docs)] // variants mirror the Python method names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodId {
    Append,
    Pop,
    Insert,
    Extend,
    Reverse,
    Sort,
    Count,
    Index,
    Remove,
    Clear,
    Copy,
    Get,
    Keys,
    Values,
    Items,
    SetDefault,
    Update,
    Split,
    Join,
    Upper,
    Lower,
    Strip,
    Replace,
    StartsWith,
    EndsWith,
    Find,
}

/// Resolves a method name to its id, if it is a known method.
pub fn resolve_method(name: &str) -> Option<MethodId> {
    Some(match name {
        "append" => MethodId::Append,
        "pop" => MethodId::Pop,
        "insert" => MethodId::Insert,
        "extend" => MethodId::Extend,
        "reverse" => MethodId::Reverse,
        "sort" => MethodId::Sort,
        "count" => MethodId::Count,
        "index" => MethodId::Index,
        "remove" => MethodId::Remove,
        "clear" => MethodId::Clear,
        "copy" => MethodId::Copy,
        "get" => MethodId::Get,
        "keys" => MethodId::Keys,
        "values" => MethodId::Values,
        "items" => MethodId::Items,
        "setdefault" => MethodId::SetDefault,
        "update" => MethodId::Update,
        "split" => MethodId::Split,
        "join" => MethodId::Join,
        "upper" => MethodId::Upper,
        "lower" => MethodId::Lower,
        "strip" => MethodId::Strip,
        "replace" => MethodId::Replace,
        "startswith" => MethodId::StartsWith,
        "endswith" => MethodId::EndsWith,
        "find" => MethodId::Find,
        _ => return None,
    })
}

fn value_err(msg: impl Into<String>) -> MpError {
    MpError::runtime(RuntimeErrorKind::Value, msg)
}

fn index_err(msg: impl Into<String>) -> MpError {
    MpError::runtime(RuntimeErrorKind::Index, msg)
}

impl Vm {
    fn arity_error(&self, what: &str, expected: &str, got: usize) -> MpError {
        MpError::type_error(format!(
            "{what}() takes {expected} arguments but {got} were given"
        ))
    }

    fn as_number(&self, v: Value, what: &str) -> MpResult<f64> {
        v.as_f64().ok_or_else(|| {
            MpError::type_error(format!(
                "{what}() requires a number, got {}",
                self.heap.type_name(v)
            ))
        })
    }

    fn as_int_strict(&self, v: Value, what: &str) -> MpResult<i64> {
        v.as_int().ok_or_else(|| {
            MpError::type_error(format!(
                "{what} requires an integer, got {}",
                self.heap.type_name(v)
            ))
        })
    }

    fn str_content(&self, v: Value) -> Option<&str> {
        match v {
            Value::Obj(h) => match self.heap.get(h) {
                Object::Str(s) => Some(s.as_str()),
                _ => None,
            },
            _ => None,
        }
    }

    /// Materializes any iterable into a vector of values, charging
    /// per-element cost. Strings yield freshly allocated one-char strings.
    pub(crate) fn iterable_to_vec(&mut self, v: Value) -> MpResult<Vec<Value>> {
        let out: Vec<Value> = match v {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) | Object::Tuple(items) => items.clone(),
                Object::Range { start, stop, step } => {
                    let (start, stop, step) = (*start, *stop, *step);
                    let mut vals = Vec::new();
                    let mut i = start;
                    if step > 0 {
                        while i < stop {
                            vals.push(Value::Int(i));
                            i += step;
                        }
                    } else {
                        while i > stop {
                            vals.push(Value::Int(i));
                            i += step;
                        }
                    }
                    vals
                }
                Object::Str(s) => {
                    let chars: Vec<String> = s.chars().map(|c| c.to_string()).collect();
                    let mut vals = Vec::with_capacity(chars.len());
                    for c in chars {
                        let h = self.alloc(Object::Str(c));
                        vals.push(Value::Obj(h));
                    }
                    vals
                }
                Object::Dict(d) => d.entries().map(|(k, _)| k).collect(),
                _ => {
                    return Err(MpError::type_error(format!(
                        "'{}' object is not iterable",
                        self.heap.type_name(v)
                    )));
                }
            },
            _ => {
                return Err(MpError::type_error(format!(
                    "'{}' object is not iterable",
                    self.heap.type_name(v)
                )));
            }
        };
        self.charge_aux(self.cost.per_element * out.len() as f64, true);
        Ok(out)
    }

    /// Invokes builtin `b` with `argc` arguments on the stack (callee below
    /// them); replaces callee+args with the result.
    pub(crate) fn invoke_builtin(&mut self, b: BuiltinFn, argc: usize) -> MpResult<()> {
        let len = self.stack.len();
        let args_start = len - argc;
        // Copy args out (Values are Copy); callee sits at args_start - 1.
        // Small arities use a stack buffer so hot call sites never allocate.
        let result = if argc <= INLINE_ARGS {
            let mut buf = [Value::None; INLINE_ARGS];
            buf[..argc].copy_from_slice(&self.stack[args_start..]);
            self.builtin_result(b, &buf[..argc])?
        } else {
            let args: Vec<Value> = self.stack[args_start..].to_vec();
            self.builtin_result(b, &args)?
        };
        self.stack.truncate(args_start - 1);
        self.stack.push(result);
        Ok(())
    }

    fn builtin_result(&mut self, b: BuiltinFn, args: &[Value]) -> MpResult<Value> {
        match b {
            BuiltinFn::Print => {
                if self.capture_output {
                    let parts: Vec<String> = args.iter().map(|&a| self.heap.render(a)).collect();
                    let line = parts.join(" ");
                    // Rendering cost proportional to output length.
                    self.charge_aux(120.0 + 3.0 * line.len() as f64, false);
                    self.stdout.push_str(&line);
                    self.stdout.push('\n');
                } else {
                    self.charge_aux(80.0, false);
                }
                Ok(Value::None)
            }
            BuiltinFn::Len => {
                let [v] = args else {
                    return Err(self.arity_error("len", "1", args.len()));
                };
                let n = match *v {
                    Value::Obj(h) => match self.heap.get(h) {
                        Object::Str(s) => s.chars().count() as i64,
                        Object::List(v) | Object::Tuple(v) => v.len() as i64,
                        Object::Dict(d) => d.len() as i64,
                        Object::Range { start, stop, step } => {
                            if *step > 0 {
                                ((stop - start).max(0) + step - 1) / step
                            } else {
                                ((start - stop).max(0) + (-step) - 1) / (-step)
                            }
                        }
                        _ => {
                            return Err(MpError::type_error(format!(
                                "object of type '{}' has no len()",
                                self.heap.type_name(*v)
                            )));
                        }
                    },
                    _ => {
                        return Err(MpError::type_error(format!(
                            "object of type '{}' has no len()",
                            self.heap.type_name(*v)
                        )));
                    }
                };
                Ok(Value::Int(n))
            }
            BuiltinFn::Range => {
                let (start, stop, step) = match args {
                    [stop] => (0, self.as_int_strict(*stop, "range")?, 1),
                    [start, stop] => (
                        self.as_int_strict(*start, "range")?,
                        self.as_int_strict(*stop, "range")?,
                        1,
                    ),
                    [start, stop, step] => (
                        self.as_int_strict(*start, "range")?,
                        self.as_int_strict(*stop, "range")?,
                        self.as_int_strict(*step, "range")?,
                    ),
                    _ => return Err(self.arity_error("range", "1 to 3", args.len())),
                };
                if step == 0 {
                    return Err(value_err("range() arg 3 must not be zero"));
                }
                let h = self.alloc(Object::Range { start, stop, step });
                Ok(Value::Obj(h))
            }
            BuiltinFn::Abs => {
                let [v] = args else {
                    return Err(self.arity_error("abs", "1", args.len()));
                };
                match *v {
                    Value::Int(i) => Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                        MpError::runtime(RuntimeErrorKind::Overflow, "abs overflow")
                    })?)),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    Value::Bool(b) => Ok(Value::Int(i64::from(b))),
                    _ => Err(MpError::type_error("bad operand type for abs()")),
                }
            }
            BuiltinFn::Min | BuiltinFn::Max => {
                let want_min = b == BuiltinFn::Min;
                let name = if want_min { "min" } else { "max" };
                let candidates: Vec<Value> = if args.len() == 1 {
                    self.iterable_to_vec(args[0])?
                } else if args.len() >= 2 {
                    args.to_vec()
                } else {
                    return Err(self.arity_error(name, "at least 1", args.len()));
                };
                let mut best = *candidates
                    .first()
                    .ok_or_else(|| value_err(format!("{name}() arg is an empty sequence")))?;
                self.charge_aux(self.cost.per_element * candidates.len() as f64, false);
                for &c in &candidates[1..] {
                    let ord = self.heap.value_cmp(c, best).ok_or_else(|| {
                        MpError::type_error(format!("{name}() got unorderable types"))
                    })?;
                    let better = if want_min {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    };
                    if better {
                        best = c;
                    }
                }
                Ok(best)
            }
            BuiltinFn::Sum => {
                let [v] = args else {
                    return Err(self.arity_error("sum", "1", args.len()));
                };
                let items = self.iterable_to_vec(*v)?;
                self.charge_aux(self.cost.per_element * items.len() as f64, false);
                let mut acc_i: i64 = 0;
                let mut acc_f: f64 = 0.0;
                let mut is_float = false;
                for item in items {
                    match item {
                        Value::Int(i) => {
                            if is_float {
                                acc_f += i as f64;
                            } else {
                                acc_i = acc_i.checked_add(i).ok_or_else(|| {
                                    MpError::runtime(RuntimeErrorKind::Overflow, "sum overflow")
                                })?;
                            }
                        }
                        Value::Bool(bv) => {
                            if is_float {
                                acc_f += f64::from(bv);
                            } else {
                                acc_i += i64::from(bv);
                            }
                        }
                        Value::Float(f) => {
                            if !is_float {
                                acc_f = acc_i as f64;
                                is_float = true;
                            }
                            acc_f += f;
                        }
                        other => {
                            return Err(MpError::type_error(format!(
                                "unsupported operand type for sum: '{}'",
                                self.heap.type_name(other)
                            )));
                        }
                    }
                }
                Ok(if is_float {
                    Value::Float(acc_f)
                } else {
                    Value::Int(acc_i)
                })
            }
            BuiltinFn::Int => {
                let [v] = args else {
                    return Err(self.arity_error("int", "1", args.len()));
                };
                match *v {
                    Value::Int(i) => Ok(Value::Int(i)),
                    Value::Bool(bv) => Ok(Value::Int(i64::from(bv))),
                    Value::Float(f) => {
                        if f.is_finite() && f.abs() < 9.2e18 {
                            Ok(Value::Int(f.trunc() as i64))
                        } else {
                            Err(MpError::runtime(
                                RuntimeErrorKind::Overflow,
                                "float too large",
                            ))
                        }
                    }
                    _ => {
                        match self.str_content(*v) {
                            Some(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                                value_err(format!("invalid literal for int(): '{s}'"))
                            }),
                            None => Err(MpError::type_error(
                                "int() argument must be a number or str",
                            )),
                        }
                    }
                }
            }
            BuiltinFn::Float => {
                let [v] = args else {
                    return Err(self.arity_error("float", "1", args.len()));
                };
                match *v {
                    Value::Float(f) => Ok(Value::Float(f)),
                    Value::Int(i) => Ok(Value::Float(i as f64)),
                    Value::Bool(bv) => Ok(Value::Float(f64::from(bv))),
                    _ => {
                        match self.str_content(*v) {
                            Some(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                                value_err(format!("could not convert '{s}' to float"))
                            }),
                            None => Err(MpError::type_error(
                                "float() argument must be a number or str",
                            )),
                        }
                    }
                }
            }
            BuiltinFn::Str => {
                let [v] = args else {
                    return Err(self.arity_error("str", "1", args.len()));
                };
                let s = self.heap.render(*v);
                self.charge_aux(2.0 * s.len() as f64, false);
                let h = self.alloc(Object::Str(s));
                Ok(Value::Obj(h))
            }
            BuiltinFn::Bool => {
                let [v] = args else {
                    return Err(self.arity_error("bool", "1", args.len()));
                };
                Ok(Value::Bool(self.heap.truthy(*v)))
            }
            BuiltinFn::Sorted => {
                let [v] = args else {
                    return Err(self.arity_error("sorted", "1", args.len()));
                };
                let mut items = self.iterable_to_vec(*v)?;
                self.sort_values(&mut items)?;
                let h = self.alloc(Object::List(items));
                Ok(Value::Obj(h))
            }
            BuiltinFn::Chr => {
                let [v] = args else {
                    return Err(self.arity_error("chr", "1", args.len()));
                };
                let i = self.as_int_strict(*v, "chr")?;
                let c = u32::try_from(i)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| value_err("chr() arg not in range"))?;
                let h = self.alloc(Object::Str(c.to_string()));
                Ok(Value::Obj(h))
            }
            BuiltinFn::Ord => {
                let [v] = args else {
                    return Err(self.arity_error("ord", "1", args.len()));
                };
                let s = self
                    .str_content(*v)
                    .ok_or_else(|| MpError::type_error("ord() expected a string"))?;
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(Value::Int(c as i64)),
                    _ => Err(MpError::type_error("ord() expected a character")),
                }
            }
            BuiltinFn::List => match args {
                [] => {
                    let h = self.alloc(Object::List(Vec::new()));
                    Ok(Value::Obj(h))
                }
                [v] => {
                    let items = self.iterable_to_vec(*v)?;
                    let h = self.alloc(Object::List(items));
                    Ok(Value::Obj(h))
                }
                _ => Err(self.arity_error("list", "0 or 1", args.len())),
            },
            BuiltinFn::Tuple => match args {
                [] => {
                    let h = self.alloc(Object::Tuple(Vec::new()));
                    Ok(Value::Obj(h))
                }
                [v] => {
                    let items = self.iterable_to_vec(*v)?;
                    let h = self.alloc(Object::Tuple(items));
                    Ok(Value::Obj(h))
                }
                _ => Err(self.arity_error("tuple", "0 or 1", args.len())),
            },
            BuiltinFn::Dict => match args {
                [] => {
                    let h = self.alloc(Object::Dict(crate::dict::Dict::new()));
                    Ok(Value::Obj(h))
                }
                _ => Err(self.arity_error("dict", "0", args.len())),
            },
            BuiltinFn::Enumerate => {
                let [v] = args else {
                    return Err(self.arity_error("enumerate", "1", args.len()));
                };
                let items = self.iterable_to_vec(*v)?;
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.into_iter().enumerate() {
                    let t = self.alloc(Object::Tuple(vec![Value::Int(i as i64), item]));
                    out.push(Value::Obj(t));
                }
                let h = self.alloc(Object::List(out));
                Ok(Value::Obj(h))
            }
            BuiltinFn::Zip => {
                let [a, bx] = args else {
                    return Err(self.arity_error("zip", "2", args.len()));
                };
                let xs = self.iterable_to_vec(*a)?;
                let ys = self.iterable_to_vec(*bx)?;
                let n = xs.len().min(ys.len());
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let t = self.alloc(Object::Tuple(vec![xs[i], ys[i]]));
                    out.push(Value::Obj(t));
                }
                let h = self.alloc(Object::List(out));
                Ok(Value::Obj(h))
            }
            BuiltinFn::Sqrt | BuiltinFn::Sin | BuiltinFn::Cos | BuiltinFn::Exp | BuiltinFn::Log => {
                let name = match b {
                    BuiltinFn::Sqrt => "sqrt",
                    BuiltinFn::Sin => "sin",
                    BuiltinFn::Cos => "cos",
                    BuiltinFn::Exp => "exp",
                    _ => "log",
                };
                let [v] = args else {
                    return Err(self.arity_error(name, "1", args.len()));
                };
                let x = self.as_number(*v, name)?;
                let r = match b {
                    BuiltinFn::Sqrt => {
                        if x < 0.0 {
                            return Err(value_err("math domain error"));
                        }
                        x.sqrt()
                    }
                    BuiltinFn::Sin => x.sin(),
                    BuiltinFn::Cos => x.cos(),
                    BuiltinFn::Exp => x.exp(),
                    _ => {
                        if x <= 0.0 {
                            return Err(value_err("math domain error"));
                        }
                        x.ln()
                    }
                };
                Ok(Value::Float(r))
            }
            BuiltinFn::Floor | BuiltinFn::Ceil | BuiltinFn::Round => {
                let name = match b {
                    BuiltinFn::Floor => "floor",
                    BuiltinFn::Ceil => "ceil",
                    _ => "round",
                };
                let [v] = args else {
                    return Err(self.arity_error(name, "1", args.len()));
                };
                let x = self.as_number(*v, name)?;
                let r = match b {
                    BuiltinFn::Floor => x.floor(),
                    BuiltinFn::Ceil => x.ceil(),
                    _ => x.round(),
                };
                if r.is_finite() && r.abs() < 9.2e18 {
                    Ok(Value::Int(r as i64))
                } else {
                    Err(MpError::runtime(
                        RuntimeErrorKind::Overflow,
                        "result out of range",
                    ))
                }
            }
        }
    }

    /// Sorts values in place with Python ordering; charges n·log n work.
    pub(crate) fn sort_values(&mut self, items: &mut [Value]) -> MpResult<()> {
        let n = items.len();
        if n > 1 {
            let work = self.cost.per_element * 2.2 * n as f64 * (n as f64).log2().max(1.0);
            self.charge_aux(work, true);
        }
        let mut failed = false;
        items.sort_by(|a, b| match self.heap.value_cmp(*a, *b) {
            Some(o) => o,
            None => {
                failed = true;
                std::cmp::Ordering::Equal
            }
        });
        if failed {
            return Err(MpError::type_error("unorderable types in sort"));
        }
        Ok(())
    }

    /// Invokes method `mid` with `argc` args on the stack (receiver below
    /// them); replaces receiver+args with the result.
    pub(crate) fn invoke_method(&mut self, mid: MethodId, argc: usize) -> MpResult<()> {
        let len = self.stack.len();
        let args_start = len - argc;
        let receiver = self.stack[args_start - 1];
        let result = if argc <= INLINE_ARGS {
            let mut buf = [Value::None; INLINE_ARGS];
            buf[..argc].copy_from_slice(&self.stack[args_start..]);
            self.method_result(receiver, mid, &buf[..argc])?
        } else {
            let args: Vec<Value> = self.stack[args_start..].to_vec();
            self.method_result(receiver, mid, &args)?
        };
        self.stack.truncate(args_start - 1);
        self.stack.push(result);
        Ok(())
    }

    fn method_type_error(&self, receiver: Value, mid: MethodId) -> MpError {
        MpError::type_error(format!(
            "'{}' object has no method '{:?}'",
            self.heap.type_name(receiver),
            mid
        ))
    }

    fn method_result(&mut self, receiver: Value, mid: MethodId, args: &[Value]) -> MpResult<Value> {
        use crate::value::TypeTag;
        let tag = self.heap.type_tag(receiver);
        match tag {
            TypeTag::List => self.list_method(receiver, mid, args),
            TypeTag::Dict => self.dict_method(receiver, mid, args),
            TypeTag::Str => self.str_method(receiver, mid, args),
            _ => Err(self.method_type_error(receiver, mid)),
        }
    }

    fn expect_handle(&self, v: Value) -> Handle {
        match v {
            Value::Obj(h) => h,
            _ => unreachable!("caller checked the type tag"),
        }
    }

    fn list_method(&mut self, receiver: Value, mid: MethodId, args: &[Value]) -> MpResult<Value> {
        let h = self.expect_handle(receiver);
        match mid {
            MethodId::Append => {
                let [v] = args else {
                    return Err(self.arity_error("append", "1", args.len()));
                };
                let v = *v;
                match self.heap.get_mut(h) {
                    Object::List(items) => items.push(v),
                    _ => unreachable!("tag checked"),
                }
                Ok(Value::None)
            }
            MethodId::Pop => {
                let idx = match args {
                    [] => None,
                    [i] => Some(self.as_int_strict(*i, "pop")?),
                    _ => return Err(self.arity_error("pop", "0 or 1", args.len())),
                };
                match self.heap.get_mut(h) {
                    Object::List(items) => {
                        if items.is_empty() {
                            return Err(index_err("pop from empty list"));
                        }
                        let n = items.len() as i64;
                        let i = match idx {
                            None => n - 1,
                            Some(i) if i < 0 => i + n,
                            Some(i) => i,
                        };
                        if i < 0 || i >= n {
                            return Err(index_err("pop index out of range"));
                        }
                        Ok(items.remove(i as usize))
                    }
                    _ => unreachable!("tag checked"),
                }
            }
            MethodId::Insert => {
                let [i, v] = args else {
                    return Err(self.arity_error("insert", "2", args.len()));
                };
                let i = self.as_int_strict(*i, "insert")?;
                let v = *v;
                let n = match self.heap.get(h) {
                    Object::List(items) => items.len() as i64,
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * n as f64 * 0.5, true);
                let pos = if i < 0 { (i + n).max(0) } else { i.min(n) } as usize;
                match self.heap.get_mut(h) {
                    Object::List(items) => items.insert(pos, v),
                    _ => unreachable!("tag checked"),
                }
                Ok(Value::None)
            }
            MethodId::Extend => {
                let [v] = args else {
                    return Err(self.arity_error("extend", "1", args.len()));
                };
                let other = self.iterable_to_vec(*v)?;
                match self.heap.get_mut(h) {
                    Object::List(items) => items.extend(other),
                    _ => unreachable!("tag checked"),
                }
                Ok(Value::None)
            }
            MethodId::Reverse => {
                let n = match self.heap.get_mut(h) {
                    Object::List(items) => {
                        items.reverse();
                        items.len()
                    }
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * n as f64 * 0.5, true);
                Ok(Value::None)
            }
            MethodId::Sort => {
                let mut items = match self.heap.get_mut(h) {
                    Object::List(items) => std::mem::take(items),
                    _ => unreachable!("tag checked"),
                };
                let result = self.sort_values(&mut items);
                match self.heap.get_mut(h) {
                    Object::List(slot) => *slot = items,
                    _ => unreachable!("tag checked"),
                }
                result.map(|_| Value::None)
            }
            MethodId::Count => {
                let [v] = args else {
                    return Err(self.arity_error("count", "1", args.len()));
                };
                let items = match self.heap.get(h) {
                    Object::List(items) => items.clone(),
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * items.len() as f64, true);
                let n = items.iter().filter(|&&x| self.heap.value_eq(x, *v)).count();
                Ok(Value::Int(n as i64))
            }
            MethodId::Index => {
                let [v] = args else {
                    return Err(self.arity_error("index", "1", args.len()));
                };
                let items = match self.heap.get(h) {
                    Object::List(items) => items.clone(),
                    _ => unreachable!("tag checked"),
                };
                for (i, &x) in items.iter().enumerate() {
                    self.charge_aux(self.cost.per_element, true);
                    if self.heap.value_eq(x, *v) {
                        return Ok(Value::Int(i as i64));
                    }
                }
                Err(value_err("value not in list"))
            }
            MethodId::Remove => {
                let [v] = args else {
                    return Err(self.arity_error("remove", "1", args.len()));
                };
                let items = match self.heap.get(h) {
                    Object::List(items) => items.clone(),
                    _ => unreachable!("tag checked"),
                };
                let pos = items.iter().position(|&x| self.heap.value_eq(x, *v));
                self.charge_aux(self.cost.per_element * items.len() as f64 * 0.5, true);
                match pos {
                    Some(i) => {
                        match self.heap.get_mut(h) {
                            Object::List(items) => {
                                items.remove(i);
                            }
                            _ => unreachable!("tag checked"),
                        }
                        Ok(Value::None)
                    }
                    None => Err(value_err("list.remove(x): x not in list")),
                }
            }
            MethodId::Clear => {
                match self.heap.get_mut(h) {
                    Object::List(items) => items.clear(),
                    _ => unreachable!("tag checked"),
                }
                Ok(Value::None)
            }
            MethodId::Copy => {
                let items = match self.heap.get(h) {
                    Object::List(items) => items.clone(),
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * items.len() as f64, true);
                let new = self.alloc(Object::List(items));
                Ok(Value::Obj(new))
            }
            _ => Err(self.method_type_error(receiver, mid)),
        }
    }

    fn dict_method(&mut self, receiver: Value, mid: MethodId, args: &[Value]) -> MpResult<Value> {
        let h = self.expect_handle(receiver);
        match mid {
            MethodId::Get => {
                let (key, default) = match args {
                    [k] => (*k, Value::None),
                    [k, d] => (*k, *d),
                    _ => return Err(self.arity_error("get", "1 or 2", args.len())),
                };
                let mut probes = 0;
                let found = match self.heap.get(h) {
                    // Shared-access lookup: no need for the `with_dict_mut`
                    // move-out/move-back, which is probe-for-probe identical.
                    Object::Dict(d) => d.try_get(&self.heap, key, &mut probes)?,
                    _ => unreachable!("receiver checked as dict"),
                };
                self.charge_probes(probes);
                Ok(found.unwrap_or(default))
            }
            MethodId::Keys | MethodId::Values | MethodId::Items => {
                let entries: Vec<(Value, Value)> = match self.heap.get(h) {
                    Object::Dict(d) => d.entries().collect(),
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * entries.len() as f64, true);
                let items: Vec<Value> = match mid {
                    MethodId::Keys => entries.into_iter().map(|(k, _)| k).collect(),
                    MethodId::Values => entries.into_iter().map(|(_, v)| v).collect(),
                    _ => {
                        let mut out = Vec::with_capacity(entries.len());
                        for (k, v) in entries {
                            let t = self.alloc(Object::Tuple(vec![k, v]));
                            out.push(Value::Obj(t));
                        }
                        out
                    }
                };
                let l = self.alloc(Object::List(items));
                Ok(Value::Obj(l))
            }
            MethodId::Pop => {
                let (key, default) = match args {
                    [k] => (*k, None),
                    [k, d] => (*k, Some(*d)),
                    _ => return Err(self.arity_error("pop", "1 or 2", args.len())),
                };
                let mut probes = 0;
                let removed = self
                    .heap
                    .with_dict_mut(h, |dict, heap| dict.remove(heap, key, &mut probes))?;
                self.charge_probes(probes);
                match (removed, default) {
                    (Some(v), _) => Ok(v),
                    (None, Some(d)) => Ok(d),
                    (None, None) => Err(MpError::runtime(RuntimeErrorKind::Key, "key not found")),
                }
            }
            MethodId::SetDefault => {
                let (key, default) = match args {
                    [k] => (*k, Value::None),
                    [k, d] => (*k, *d),
                    _ => return Err(self.arity_error("setdefault", "1 or 2", args.len())),
                };
                let mut probes = 0;
                let result = self
                    .heap
                    .with_dict_mut(h, |dict, heap| -> MpResult<Value> {
                        match dict.try_get(heap, key, &mut probes)? {
                            Some(v) => Ok(v),
                            None => {
                                dict.insert(heap, key, default, &mut probes)?;
                                Ok(default)
                            }
                        }
                    })?;
                self.charge_probes(probes);
                Ok(result)
            }
            MethodId::Update => {
                let [other] = args else {
                    return Err(self.arity_error("update", "1", args.len()));
                };
                let entries: Vec<(Value, Value)> = match *other {
                    Value::Obj(oh) => match self.heap.get(oh) {
                        Object::Dict(d) => d.entries().collect(),
                        _ => return Err(MpError::type_error("update() requires a dict")),
                    },
                    _ => return Err(MpError::type_error("update() requires a dict")),
                };
                let mut probes = 0;
                self.heap.with_dict_mut(h, |dict, heap| -> MpResult<()> {
                    for (k, v) in entries {
                        dict.insert(heap, k, v, &mut probes)?;
                    }
                    Ok(())
                })?;
                self.charge_probes(probes);
                Ok(Value::None)
            }
            MethodId::Clear => {
                match self.heap.get_mut(h) {
                    // clear_in_place bumps the dict version so inline caches
                    // keyed on the old layout are invalidated.
                    Object::Dict(d) => d.clear_in_place(),
                    _ => unreachable!("tag checked"),
                }
                Ok(Value::None)
            }
            MethodId::Copy => {
                let entries: Vec<(Value, Value)> = match self.heap.get(h) {
                    Object::Dict(d) => d.entries().collect(),
                    _ => unreachable!("tag checked"),
                };
                self.charge_aux(self.cost.per_element * entries.len() as f64, true);
                let new = self.alloc(Object::Dict(crate::dict::Dict::new()));
                let mut probes = 0;
                self.heap.with_dict_mut(new, |dict, heap| -> MpResult<()> {
                    for (k, v) in entries {
                        dict.insert(heap, k, v, &mut probes)?;
                    }
                    Ok(())
                })?;
                self.charge_probes(probes);
                Ok(Value::Obj(new))
            }
            _ => Err(self.method_type_error(receiver, mid)),
        }
    }

    fn str_method(&mut self, receiver: Value, mid: MethodId, args: &[Value]) -> MpResult<Value> {
        let h = self.expect_handle(receiver);
        let content = match self.heap.get(h) {
            Object::Str(s) => s.clone(),
            _ => unreachable!("tag checked"),
        };
        self.charge_aux(self.cost.per_element * 0.25 * content.len() as f64, true);
        match mid {
            MethodId::Split => {
                let parts: Vec<String> = match args {
                    [] => content.split_whitespace().map(str::to_string).collect(),
                    [sep] => {
                        let sep = self
                            .str_content(*sep)
                            .ok_or_else(|| MpError::type_error("split() separator must be str"))?
                            .to_string();
                        if sep.is_empty() {
                            return Err(value_err("empty separator"));
                        }
                        content.split(&sep).map(str::to_string).collect()
                    }
                    _ => return Err(self.arity_error("split", "0 or 1", args.len())),
                };
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    let sh = self.alloc(Object::Str(p));
                    out.push(Value::Obj(sh));
                }
                let l = self.alloc(Object::List(out));
                Ok(Value::Obj(l))
            }
            MethodId::Join => {
                let [v] = args else {
                    return Err(self.arity_error("join", "1", args.len()));
                };
                let items = self.iterable_to_vec(*v)?;
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    match self.str_content(item) {
                        Some(s) => parts.push(s.to_string()),
                        None => {
                            return Err(MpError::type_error("join() requires str items"));
                        }
                    }
                }
                let joined = parts.join(&content);
                self.charge_aux(2.0 * joined.len() as f64, true);
                let sh = self.alloc(Object::Str(joined));
                Ok(Value::Obj(sh))
            }
            MethodId::Upper => {
                let sh = self.alloc(Object::Str(content.to_uppercase()));
                Ok(Value::Obj(sh))
            }
            MethodId::Lower => {
                let sh = self.alloc(Object::Str(content.to_lowercase()));
                Ok(Value::Obj(sh))
            }
            MethodId::Strip => {
                let sh = self.alloc(Object::Str(content.trim().to_string()));
                Ok(Value::Obj(sh))
            }
            MethodId::Replace => {
                let [from, to] = args else {
                    return Err(self.arity_error("replace", "2", args.len()));
                };
                let from = self
                    .str_content(*from)
                    .ok_or_else(|| MpError::type_error("replace() args must be str"))?
                    .to_string();
                let to = self
                    .str_content(*to)
                    .ok_or_else(|| MpError::type_error("replace() args must be str"))?
                    .to_string();
                if from.is_empty() {
                    return Err(value_err("empty pattern"));
                }
                let sh = self.alloc(Object::Str(content.replace(&from, &to)));
                Ok(Value::Obj(sh))
            }
            MethodId::StartsWith | MethodId::EndsWith => {
                let [p] = args else {
                    return Err(self.arity_error("startswith", "1", args.len()));
                };
                let p = self
                    .str_content(*p)
                    .ok_or_else(|| MpError::type_error("prefix must be str"))?;
                let r = if mid == MethodId::StartsWith {
                    content.starts_with(p)
                } else {
                    content.ends_with(p)
                };
                Ok(Value::Bool(r))
            }
            MethodId::Find => {
                let [p] = args else {
                    return Err(self.arity_error("find", "1", args.len()));
                };
                let p = self
                    .str_content(*p)
                    .ok_or_else(|| MpError::type_error("find() argument must be str"))?;
                match content.find(p) {
                    // Byte offset == char offset for the ASCII strings MiniPy
                    // programs use; acceptable approximation.
                    Some(i) => Ok(Value::Int(i as i64)),
                    None => Ok(Value::Int(-1)),
                }
            }
            MethodId::Count => {
                let [p] = args else {
                    return Err(self.arity_error("count", "1", args.len()));
                };
                let p = self
                    .str_content(*p)
                    .ok_or_else(|| MpError::type_error("count() argument must be str"))?;
                if p.is_empty() {
                    return Ok(Value::Int(content.chars().count() as i64 + 1));
                }
                Ok(Value::Int(content.matches(p).count() as i64))
            }
            _ => Err(self.method_type_error(receiver, mid)),
        }
    }

    /// Creates an iterator object for `v` (the `GetIter` opcode).
    pub(crate) fn make_iterator(&mut self, v: Value) -> MpResult<Value> {
        let state = match v {
            Value::Obj(h) => match self.heap.get(h) {
                Object::Range { start, stop, step } => IterState::Range {
                    next: *start,
                    stop: *stop,
                    step: *step,
                },
                Object::List(_) | Object::Tuple(_) | Object::Str(_) => {
                    IterState::Seq { seq: h, index: 0 }
                }
                Object::Dict(_) => IterState::DictKeys { dict: h, slot: 0 },
                Object::Iter(_) => return Ok(v),
                _ => {
                    return Err(MpError::type_error(format!(
                        "'{}' object is not iterable",
                        self.heap.type_name(v)
                    )));
                }
            },
            _ => {
                return Err(MpError::type_error(format!(
                    "'{}' object is not iterable",
                    self.heap.type_name(v)
                )));
            }
        };
        let h = self.alloc(Object::Iter(state));
        Ok(Value::Obj(h))
    }

    /// Advances the iterator `it`; returns the next value or `None` when
    /// exhausted (the `ForIter` opcode).
    pub(crate) fn iterator_next(&mut self, it: Value) -> MpResult<Option<Value>> {
        let ih = match it {
            Value::Obj(h) => h,
            _ => {
                return Err(MpError::runtime(
                    RuntimeErrorKind::Internal,
                    "ForIter on non-iterator",
                ));
            }
        };
        // Range iteration needs no second heap access: advance in place.
        if let Object::Iter(IterState::Range { next, stop, step }) = self.heap.get_mut(ih) {
            let done = if *step > 0 {
                *next >= *stop
            } else {
                *next <= *stop
            };
            if done {
                return Ok(None);
            }
            let item = Value::Int(*next);
            *next += *step;
            return Ok(Some(item));
        }
        // Read the state, compute the step, then write back.
        let state = match self.heap.get(ih) {
            Object::Iter(s) => s.clone(),
            _ => {
                return Err(MpError::runtime(
                    RuntimeErrorKind::Internal,
                    "ForIter on non-iterator",
                ));
            }
        };
        let (next_state, item): (IterState, Option<Value>) = match state {
            IterState::Range { next, stop, step } => {
                let done = if step > 0 { next >= stop } else { next <= stop };
                if done {
                    (IterState::Range { next, stop, step }, None)
                } else {
                    (
                        IterState::Range {
                            next: next + step,
                            stop,
                            step,
                        },
                        Some(Value::Int(next)),
                    )
                }
            }
            IterState::Seq { seq, index } => match self.heap.get(seq) {
                Object::List(items) | Object::Tuple(items) => {
                    if index < items.len() {
                        let v = items[index];
                        (
                            IterState::Seq {
                                seq,
                                index: index + 1,
                            },
                            Some(v),
                        )
                    } else {
                        (IterState::Seq { seq, index }, None)
                    }
                }
                Object::Str(s) => {
                    let c = s.chars().nth(index);
                    match c {
                        Some(c) => {
                            let sh = self.alloc(Object::Str(c.to_string()));
                            (
                                IterState::Seq {
                                    seq,
                                    index: index + 1,
                                },
                                Some(Value::Obj(sh)),
                            )
                        }
                        None => (IterState::Seq { seq, index }, None),
                    }
                }
                _ => {
                    return Err(MpError::runtime(
                        RuntimeErrorKind::Internal,
                        "sequence iterator over non-sequence",
                    ));
                }
            },
            IterState::DictKeys { dict, slot } => match self.heap.get(dict) {
                Object::Dict(d) => match d.next_entry_from(slot) {
                    Some((s, k, _v)) => (IterState::DictKeys { dict, slot: s + 1 }, Some(k)),
                    None => (IterState::DictKeys { dict, slot }, None),
                },
                _ => {
                    return Err(MpError::runtime(
                        RuntimeErrorKind::Internal,
                        "dict iterator over non-dict",
                    ));
                }
            },
        };
        match self.heap.get_mut(ih) {
            Object::Iter(s) => *s = next_state,
            _ => unreachable!("checked above"),
        }
        Ok(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_resolution_covers_core_names() {
        assert_eq!(resolve_builtin("print"), Some(BuiltinFn::Print));
        assert_eq!(resolve_builtin("len"), Some(BuiltinFn::Len));
        assert_eq!(resolve_builtin("range"), Some(BuiltinFn::Range));
        assert_eq!(resolve_builtin("sqrt"), Some(BuiltinFn::Sqrt));
        assert_eq!(resolve_builtin("nope"), None);
    }

    #[test]
    fn method_resolution() {
        assert_eq!(resolve_method("append"), Some(MethodId::Append));
        assert_eq!(resolve_method("setdefault"), Some(MethodId::SetDefault));
        assert_eq!(resolve_method("nonsense"), None);
    }
}
