//! # MiniPy — a simulated Python for benchmarking-methodology research
//!
//! MiniPy is the workload substrate of the `rigor` workspace: a from-scratch
//! dynamic language with Python-like syntax and semantics, executed by two
//! engines over a **virtual clock**:
//!
//! * an **interpreter engine** shaped like CPython (switch dispatch, constant
//!   pools, local slots, global dict, mark-sweep GC), and
//! * a **tracing-JIT engine** shaped like PyPy (back-edge profiling, hot-loop
//!   trace compilation with visible compile pauses, type guards and
//!   deoptimization).
//!
//! Every cost — opcode execution, allocation, dict probe, GC pause, JIT
//! compile, injected OS jitter — advances the virtual clock, so measured
//! "times" are reproducible given the seeds while exhibiting the statistical
//! phenomena real Python benchmarking must contend with: JIT warmup, hash-seed
//! and layout (ASLR-like) inter-invocation variation, autocorrelated GC noise.
//!
//! ## Quick example
//!
//! ```rust
//! use minipy::{Session, VmConfig};
//!
//! # fn main() -> Result<(), minipy::MpError> {
//! let source = "\
//! N = 100
//! def run():
//!     s = 0
//!     for i in range(N):
//!         s += i * i
//!     return s
//! ";
//! let mut session = Session::start(source, /* seed */ 1, VmConfig::interp())?;
//! let iteration = session.run_iteration()?;
//! assert!(iteration.virtual_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod clock;
pub mod compiler;
pub mod cost;
pub mod dict;
pub mod error;
pub mod frame;
pub mod gc;
pub mod heap;
mod interp;
pub mod jit;
pub mod noise;
pub mod parser;
pub mod session;
pub mod token;
pub mod value;
pub mod vm;

pub use bytecode::Program;
pub use compiler::{compile, compile_unfused};
pub use cost::CostModel;
pub use error::{MpError, MpResult, RuntimeErrorKind};
pub use frame::DynCounters;
pub use jit::{JitConfig, JitMode};
pub use noise::NoiseConfig;
pub use parser::parse;
pub use session::{
    check_engines_agree, measure, CompiledProgram, IterationResult, Session, VmEventDeltas,
    RUN_FUNCTION,
};
pub use value::{Handle, TypeTag, Value};
pub use vm::{invocation_seed, EngineKind, Vm, VmConfig};
