//! Tokenizer for MiniPy: a Python-like, indentation-sensitive surface syntax.
//!
//! The lexer produces a flat token stream in which block structure is made
//! explicit through [`TokenKind::Indent`] / [`TokenKind::Dedent`] tokens,
//! exactly like CPython's tokenizer. Blank lines and comment-only lines do not
//! affect indentation.

use crate::error::{MpError, MpResult, Span};

/// The kind of a lexical token.
#[allow(missing_docs)] // keyword/operator variants are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names.
    /// Integer literal (decimal).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal, already unescaped.
    Str(String),
    /// Identifier (not a keyword).
    Name(String),

    // Keywords.
    Def,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Pass,
    And,
    Or,
    Not,
    True,
    False,
    NoneLit,
    Global,
    Del,

    // Operators and punctuation.
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Eq,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    SlashSlashEq,
    PercentEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,

    // Layout.
    /// End of a logical line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Name(n) => format!("name '{n}'"),
            TokenKind::Newline => "newline".to_string(),
            TokenKind::Indent => "indent".to_string(),
            TokenKind::Dedent => "dedent".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("'{}'", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Def => "def",
            TokenKind::Return => "return",
            TokenKind::If => "if",
            TokenKind::Elif => "elif",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::In => "in",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::Pass => "pass",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::True => "True",
            TokenKind::False => "False",
            TokenKind::NoneLit => "None",
            TokenKind::Global => "global",
            TokenKind::Del => "del",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::StarStar => "**",
            TokenKind::Slash => "/",
            TokenKind::SlashSlash => "//",
            TokenKind::Percent => "%",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::LtEq => "<=",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
            TokenKind::PlusEq => "+=",
            TokenKind::MinusEq => "-=",
            TokenKind::StarEq => "*=",
            TokenKind::SlashEq => "/=",
            TokenKind::SlashSlashEq => "//=",
            TokenKind::PercentEq => "%=",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            _ => "?",
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from in the source.
    pub span: Span,
}

/// Tokenizes an entire MiniPy source module.
///
/// # Errors
///
/// Returns [`MpError::Lex`] on invalid characters, malformed numbers,
/// unterminated strings or inconsistent indentation.
pub fn tokenize(source: &str) -> MpResult<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    indents: Vec<usize>,
    tokens: Vec<Token>,
    paren_depth: usize,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            indents: vec![0],
            tokens: Vec::new(),
            paren_depth: 0,
            at_line_start: true,
        }
    }

    fn err(&self, message: impl Into<String>) -> MpError {
        MpError::Lex {
            message: message.into(),
            span: Span::new(self.pos, self.pos + 1, self.line),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos, self.line),
        });
    }

    fn run(mut self) -> MpResult<Vec<Token>> {
        loop {
            if self.at_line_start && self.paren_depth == 0 && !self.handle_line_start()? {
                break;
            }
            match self.peek() {
                None => break,
                Some(b' ') | Some(b'\t') => {
                    self.pos += 1;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    if self.paren_depth == 0 {
                        // Suppress newline tokens for blank lines: only emit if the
                        // last token on this logical line was real content.
                        if matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(k) if !matches!(k, TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent)
                        ) {
                            self.push(TokenKind::Newline, self.pos - 1);
                        }
                        self.at_line_start = true;
                    }
                }
                Some(c) if c.is_ascii_digit() => self.lex_number()?,
                Some(b'"') | Some(b'\'') => self.lex_string()?,
                Some(c) if c == b'_' || c.is_ascii_alphabetic() => self.lex_name(),
                Some(_) => self.lex_operator()?,
            }
        }
        // Final newline (if missing) and closing dedents.
        if matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(k) if !matches!(k, TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent)
        ) {
            self.push(TokenKind::Newline, self.pos);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(TokenKind::Dedent, self.pos);
        }
        self.push(TokenKind::Eof, self.pos);
        Ok(self.tokens)
    }

    /// Measures indentation at the start of a logical line and emits
    /// Indent/Dedent tokens. Returns `false` at end of input.
    fn handle_line_start(&mut self) -> MpResult<bool> {
        loop {
            let line_start = self.pos;
            let mut width = 0usize;
            loop {
                match self.peek() {
                    Some(b' ') => {
                        width += 1;
                        self.pos += 1;
                    }
                    Some(b'\t') => {
                        // Tabs advance to the next multiple of 8, like CPython.
                        width = (width / 8 + 1) * 8;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => {
                    self.at_line_start = false;
                    return Ok(false);
                }
                Some(b'\n') => {
                    // Blank line: skip entirely.
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                Some(b'\r') => {
                    self.pos += 1;
                    continue;
                }
                Some(b'#') => {
                    // Comment-only line: consume to end of line and skip.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                    continue;
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.tokens.push(Token {
                            kind: TokenKind::Indent,
                            span: Span::new(line_start, self.pos, self.line),
                        });
                    } else if width < current {
                        while width < *self.indents.last().expect("indent stack never empty") {
                            self.indents.pop();
                            self.tokens.push(Token {
                                kind: TokenKind::Dedent,
                                span: Span::new(line_start, self.pos, self.line),
                            });
                        }
                        if width != *self.indents.last().expect("indent stack never empty") {
                            return Err(self.err("unindent does not match any outer level"));
                        }
                    }
                    self.at_line_start = false;
                    return Ok(true);
                }
            }
        }
    }

    fn lex_number(&mut self) -> MpResult<()> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("numeric bytes are ASCII")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        let kind = if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal '{text}'")))?;
            TokenKind::Float(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad int literal '{text}'")))?;
            TokenKind::Int(v)
        };
        self.push(kind, start);
        Ok(())
    }

    fn lex_string(&mut self) -> MpResult<()> {
        let start = self.pos;
        let quote = self.bump().expect("caller saw a quote");
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(self.err("unterminated string literal"));
                }
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'\'') => out.push('\''),
                    Some(b'"') => out.push('"'),
                    Some(b'0') => out.push('\0'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other as char);
                    }
                    None => return Err(self.err("unterminated string literal")),
                },
                Some(c) if c == quote => break,
                Some(c) => {
                    // Pass through raw bytes; MiniPy sources are expected to be
                    // ASCII but we tolerate UTF-8 continuation bytes verbatim.
                    out.push(c as char);
                }
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn lex_name(&mut self) {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("name bytes are ASCII");
        let kind = match text {
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "pass" => TokenKind::Pass,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "True" => TokenKind::True,
            "False" => TokenKind::False,
            "None" => TokenKind::NoneLit,
            "global" => TokenKind::Global,
            "del" => TokenKind::Del,
            _ => TokenKind::Name(text.to_string()),
        };
        self.push(kind, start);
    }

    fn lex_operator(&mut self) -> MpResult<()> {
        let start = self.pos;
        let c = self.bump().expect("caller saw a char");
        let next = self.peek();
        let kind = match (c, next) {
            (b'*', Some(b'*')) => {
                self.pos += 1;
                TokenKind::StarStar
            }
            (b'*', Some(b'=')) => {
                self.pos += 1;
                TokenKind::StarEq
            }
            (b'*', _) => TokenKind::Star,
            (b'/', Some(b'/')) => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::SlashSlashEq
                } else {
                    TokenKind::SlashSlash
                }
            }
            (b'/', Some(b'=')) => {
                self.pos += 1;
                TokenKind::SlashEq
            }
            (b'/', _) => TokenKind::Slash,
            (b'+', Some(b'=')) => {
                self.pos += 1;
                TokenKind::PlusEq
            }
            (b'+', _) => TokenKind::Plus,
            (b'-', Some(b'=')) => {
                self.pos += 1;
                TokenKind::MinusEq
            }
            (b'-', _) => TokenKind::Minus,
            (b'%', Some(b'=')) => {
                self.pos += 1;
                TokenKind::PercentEq
            }
            (b'%', _) => TokenKind::Percent,
            (b'=', Some(b'=')) => {
                self.pos += 1;
                TokenKind::EqEq
            }
            (b'=', _) => TokenKind::Eq,
            (b'!', Some(b'=')) => {
                self.pos += 1;
                TokenKind::NotEq
            }
            (b'!', _) => return Err(self.err("unexpected character '!'")),
            (b'<', Some(b'=')) => {
                self.pos += 1;
                TokenKind::LtEq
            }
            (b'<', _) => TokenKind::Lt,
            (b'>', Some(b'=')) => {
                self.pos += 1;
                TokenKind::GtEq
            }
            (b'>', _) => TokenKind::Gt,
            (b'(', _) => {
                self.paren_depth += 1;
                TokenKind::LParen
            }
            (b')', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RParen
            }
            (b'[', _) => {
                self.paren_depth += 1;
                TokenKind::LBracket
            }
            (b']', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RBracket
            }
            (b'{', _) => {
                self.paren_depth += 1;
                TokenKind::LBrace
            }
            (b'}', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RBrace
            }
            (b',', _) => TokenKind::Comma,
            (b':', _) => TokenKind::Colon,
            (b'.', _) => TokenKind::Dot,
            (other, _) => {
                return Err(self.err(format!("unexpected character '{}'", other as char)));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("tokenize")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn simple_expression() {
        let ks = kinds("x = 1 + 2\n");
        assert_eq!(
            ks,
            vec![
                TokenKind::Name("x".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let ks = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(ks.contains(&TokenKind::Indent));
        assert!(ks.contains(&TokenKind::Dedent));
        let indent_pos = ks.iter().position(|k| *k == TokenKind::Indent).unwrap();
        let dedent_pos = ks.iter().position(|k| *k == TokenKind::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_dedents_close_all_levels() {
        let ks = kinds("if a:\n    if b:\n        c = 1\n");
        let dedents = ks.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_and_comment_lines_ignored_for_indent() {
        let ks = kinds("if a:\n    x = 1\n\n    # comment\n    y = 2\n");
        let dedents = ks.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(dedents, 1);
        let indents = ks.iter().filter(|k| **k == TokenKind::Indent).count();
        assert_eq!(indents, 1);
    }

    #[test]
    fn float_and_int_literals() {
        let ks = kinds("a = 1.5\nb = 2e3\nc = 10\nd = 1_000\n");
        assert!(ks.contains(&TokenKind::Float(1.5)));
        assert!(ks.contains(&TokenKind::Float(2000.0)));
        assert!(ks.contains(&TokenKind::Int(10)));
        assert!(ks.contains(&TokenKind::Int(1000)));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds("s = \"a\\nb\"\nt = 'q\\t'\n");
        assert!(ks.contains(&TokenKind::Str("a\nb".into())));
        assert!(ks.contains(&TokenKind::Str("q\t".into())));
    }

    #[test]
    fn operators_two_char() {
        let ks = kinds("a //= 2\nb ** 3\nc != d\ne <= f\n");
        assert!(ks.contains(&TokenKind::SlashSlashEq));
        assert!(ks.contains(&TokenKind::StarStar));
        assert!(ks.contains(&TokenKind::NotEq));
        assert!(ks.contains(&TokenKind::LtEq));
    }

    #[test]
    fn newline_suppressed_inside_parens() {
        let ks = kinds("a = (1 +\n     2)\n");
        let newlines = ks.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn bad_indent_is_error() {
        let r = tokenize("if a:\n    x = 1\n  y = 2\n");
        assert!(r.is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("s = \"abc\n").is_err());
    }

    #[test]
    fn keywords_vs_names() {
        let ks = kinds("formula = 1\nfor i in x:\n    pass\n");
        assert!(ks.contains(&TokenKind::Name("formula".into())));
        assert!(ks.contains(&TokenKind::For));
        assert!(ks.contains(&TokenKind::Pass));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let ks = kinds("x = 1");
        assert_eq!(ks.last(), Some(&TokenKind::Eof));
        assert!(ks.contains(&TokenKind::Newline));
    }

    #[test]
    fn del_keyword() {
        let ks = kinds("del x\n");
        assert_eq!(ks[0], TokenKind::Del);
    }
}
