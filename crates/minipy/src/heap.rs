//! Object heap: arena storage, allocation accounting, equality/ordering
//! helpers, and string rendering. The mark-sweep collector lives in
//! [`crate::gc`] but operates on the structures defined here.

use std::cell::Cell;
use std::cmp::Ordering;

use crate::dict::Dict;
use crate::value::{Handle, TypeTag, Value};

/// Iterator state for `for` loops (created by `GetIter`).
#[allow(missing_docs)] // cursor fields are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum IterState {
    /// Iterating a `range(...)`.
    Range { next: i64, stop: i64, step: i64 },
    /// Iterating a list, tuple or string by index.
    Seq { seq: Handle, index: usize },
    /// Iterating a dict's keys by slot cursor.
    DictKeys { dict: Handle, slot: usize },
}

/// A heap-allocated object.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// Immutable string.
    Str(String),
    /// Mutable list.
    List(Vec<Value>),
    /// Immutable tuple.
    Tuple(Vec<Value>),
    /// Hash table with seeded, probe-costed open addressing.
    Dict(Dict),
    /// Lazy `range(start, stop, step)`.
    Range {
        /// First value produced.
        start: i64,
        /// Exclusive bound.
        stop: i64,
        /// Step (never zero).
        step: i64,
    },
    /// User-defined function referencing a code object.
    Function {
        /// Index into [`crate::bytecode::Program::codes`].
        code_id: usize,
    },
    /// Built-in function (`len`, `range`, `print`, ...).
    Builtin(crate::builtins::BuiltinFn),
    /// In-flight loop iterator.
    Iter(IterState),
}

impl Object {
    /// The dynamic type tag of this object.
    pub fn tag(&self) -> TypeTag {
        match self {
            Object::Str(_) => TypeTag::Str,
            Object::List(_) => TypeTag::List,
            Object::Tuple(_) => TypeTag::Tuple,
            Object::Dict(_) => TypeTag::Dict,
            Object::Range { .. } => TypeTag::Range,
            Object::Function { .. } | Object::Builtin(_) => TypeTag::Function,
            Object::Iter(_) => TypeTag::Iter,
        }
    }

    /// Approximate payload size in bytes, for allocation accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Object::Str(s) => 48 + s.len(),
            Object::List(v) => 56 + v.len() * 16,
            Object::Tuple(v) => 40 + v.len() * 16,
            Object::Dict(d) => 64 + d.capacity() * 32,
            Object::Range { .. } => 48,
            Object::Function { .. } => 56,
            Object::Builtin(_) => 32,
            Object::Iter(_) => 48,
        }
    }
}

struct HeapSlot {
    obj: Object,
    /// Epoch stamp: the slot is marked iff this equals the heap's current
    /// `mark_epoch`. Bumping the epoch unmarks every slot at once, so a
    /// collection never needs a clear-marks pass over the whole heap.
    mark: u64,
    /// Memoized seeded string hash (for `Object::Str` slots); starts at
    /// [`STR_HASH_UNSET`] and is filled on first use. Strings are immutable
    /// and slots are only recycled by replacing the whole `HeapSlot`, so the
    /// cache can never go stale.
    str_hash: Cell<u64>,
}

/// Sentinel for "hash not computed yet". A string whose real hash collides
/// with the sentinel is simply re-hashed every lookup — still correct.
const STR_HASH_UNSET: u64 = u64::MAX;

/// Counters describing allocation and collection activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HeapStats {
    /// Objects allocated over the heap's lifetime.
    pub total_allocations: u64,
    /// Approximate bytes allocated over the heap's lifetime.
    pub total_bytes: u64,
    /// Completed GC cycles.
    pub gc_cycles: u64,
    /// Objects freed across all GC cycles.
    pub gc_freed: u64,
    /// Objects live after the most recent cycle.
    pub last_live: u64,
}

/// The object heap.
///
/// Objects are stored in an arena indexed by [`Handle`]; freed slots are
/// recycled through a free list. Collection itself is driven by
/// [`crate::gc::collect`], which needs the roots only the VM knows.
pub struct Heap {
    slots: Vec<Option<HeapSlot>>,
    free: Vec<Handle>,
    allocs_since_gc: u64,
    /// Allocation-count threshold that arms the next collection.
    pub(crate) gc_threshold: u64,
    /// Baseline threshold; the post-sweep threshold never drops below it.
    base_threshold: u64,
    /// When true (default), the threshold grows with the live set (2x),
    /// CPython-style. Disabled by explicit [`Heap::set_gc_threshold`].
    adaptive_threshold: bool,
    stats: HeapStats,
    /// Per-invocation string-hash seed (CPython's `PYTHONHASHSEED`).
    hash_seed: u64,
    /// Bumped by every sweep. Paired with a [`Handle`] this uniquely
    /// identifies an object lifetime (handles are only recycled through the
    /// free list, which is only refilled by sweeps) — the interpreter's
    /// inline caches key on it.
    generation: u64,
    /// Current mark epoch; see the `mark` field of `HeapSlot`.
    mark_epoch: u64,
}

/// Initial GC trigger: collections start once this many objects have been
/// allocated since the previous cycle.
pub const DEFAULT_GC_THRESHOLD: u64 = 8_192;

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap with the default GC threshold and seed 0.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates an empty heap whose string hashes are perturbed by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Heap {
            slots: Vec::with_capacity(1024),
            free: Vec::new(),
            allocs_since_gc: 0,
            gc_threshold: DEFAULT_GC_THRESHOLD,
            base_threshold: DEFAULT_GC_THRESHOLD,
            adaptive_threshold: true,
            stats: HeapStats::default(),
            hash_seed: seed,
            generation: 0,
            mark_epoch: 0,
        }
    }

    /// The per-invocation string-hash seed.
    pub fn hash_seed(&self) -> u64 {
        self.hash_seed
    }

    /// The current GC generation: bumped by every sweep, so an inline cache
    /// stamped with (handle, generation) can never observe a recycled slot.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The seeded hash of the string behind `h`, memoized per heap slot so
    /// repeated dict probes with the same key object skip re-hashing.
    #[inline(always)]
    pub(crate) fn memoized_str_hash(&self, h: Handle, s: &str) -> u64 {
        debug_assert!(
            matches!(self.slots.get(h as usize), Some(Some(_))),
            "dangling handle"
        );
        // Same liveness contract as `Heap::get`: the handle was just
        // dereferenced to obtain `s`, so the slot is live.
        let cell = unsafe {
            match self.slots.get_unchecked(h as usize) {
                Some(s) => &s.str_hash,
                None => std::hint::unreachable_unchecked(),
            }
        };
        let cached = cell.get();
        if cached != STR_HASH_UNSET {
            return cached;
        }
        let hv = crate::dict::hash_str(self.hash_seed, s);
        cell.set(hv);
        hv
    }

    /// Pins the GC allocation threshold to an exact value, disabling the
    /// adaptive (live-set-proportional) growth. Used by GC ablation studies.
    pub fn set_gc_threshold(&mut self, threshold: u64) {
        self.gc_threshold = threshold.max(1);
        self.base_threshold = threshold.max(1);
        self.adaptive_threshold = false;
    }

    /// Allocates `obj`, returning its handle.
    pub fn alloc(&mut self, obj: Object) -> Handle {
        self.allocs_since_gc += 1;
        self.stats.total_allocations += 1;
        self.stats.total_bytes += obj.approx_bytes() as u64;
        let slot = HeapSlot {
            obj,
            mark: 0,
            str_hash: Cell::new(STR_HASH_UNSET),
        };
        match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = Some(slot);
                h
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as Handle
            }
        }
    }

    /// Allocates a string object.
    pub fn alloc_str(&mut self, s: impl Into<String>) -> Handle {
        self.alloc(Object::Str(s.into()))
    }

    /// Allocates a list object.
    pub fn alloc_list(&mut self, items: Vec<Value>) -> Handle {
        self.alloc(Object::List(items))
    }

    /// Allocates a tuple object.
    pub fn alloc_tuple(&mut self, items: Vec<Value>) -> Handle {
        self.alloc(Object::Tuple(items))
    }

    /// Allocates an empty dict.
    pub fn alloc_dict(&mut self) -> Handle {
        self.alloc(Object::Dict(Dict::new()))
    }

    /// Borrows the object behind `h`.
    ///
    /// Handles are minted only by [`Heap::alloc`] and invalidated only by a
    /// sweep, which frees nothing the interpreter can still reach (the VM
    /// roots its stack, locals, globals and iterator state, and inline
    /// caches are generation-stamped). Release builds therefore skip the
    /// bounds/liveness check on this hottest of paths; debug builds keep it.
    #[inline(always)]
    pub fn get(&self, h: Handle) -> &Object {
        debug_assert!(
            matches!(self.slots.get(h as usize), Some(Some(_))),
            "dangling handle"
        );
        unsafe {
            match self.slots.get_unchecked(h as usize) {
                Some(s) => &s.obj,
                None => std::hint::unreachable_unchecked(),
            }
        }
    }

    /// Mutably borrows the object behind `h`. Same liveness contract as
    /// [`Heap::get`]: release builds elide the check, debug builds keep it.
    #[inline(always)]
    pub fn get_mut(&mut self, h: Handle) -> &mut Object {
        debug_assert!(
            matches!(self.slots.get(h as usize), Some(Some(_))),
            "dangling handle"
        );
        unsafe {
            match self.slots.get_unchecked_mut(h as usize) {
                Some(s) => &mut s.obj,
                None => std::hint::unreachable_unchecked(),
            }
        }
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Allocation/GC counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Allocations since the last collection.
    pub fn allocs_since_gc(&self) -> u64 {
        self.allocs_since_gc
    }

    /// True once enough allocation has happened to warrant a collection.
    pub fn should_collect(&self) -> bool {
        self.allocs_since_gc >= self.gc_threshold
    }

    /// Temporarily moves the dict behind `h` out of the heap, runs `f` with
    /// the dict and the (dict-less) heap, then puts it back. This sidesteps
    /// the double-borrow that would otherwise arise because key equality
    /// needs `&Heap` while the dict itself needs `&mut`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not a dict.
    pub fn with_dict_mut<R>(&mut self, h: Handle, f: impl FnOnce(&mut Dict, &mut Heap) -> R) -> R {
        let mut dict = match self.get_mut(h) {
            Object::Dict(d) => std::mem::take(d),
            other => panic!("with_dict_mut on {:?}", other.tag()),
        };
        let result = f(&mut dict, self);
        match self.get_mut(h) {
            Object::Dict(d) => *d = dict,
            _ => unreachable!("slot type changed during with_dict_mut"),
        }
        result
    }

    /// The dynamic type tag of a value.
    pub fn type_tag(&self, v: Value) -> TypeTag {
        match v {
            Value::None => TypeTag::None,
            Value::Bool(_) => TypeTag::Bool,
            Value::Int(_) => TypeTag::Int,
            Value::Float(_) => TypeTag::Float,
            Value::Obj(h) => self.get(h).tag(),
        }
    }

    /// Human-readable type name of a value, for error messages.
    pub fn type_name(&self, v: Value) -> &'static str {
        match self.type_tag(v) {
            TypeTag::None => "NoneType",
            TypeTag::Bool => "bool",
            TypeTag::Int => "int",
            TypeTag::Float => "float",
            TypeTag::Str => "str",
            TypeTag::List => "list",
            TypeTag::Tuple => "tuple",
            TypeTag::Dict => "dict",
            TypeTag::Range => "range",
            TypeTag::Function => "function",
            TypeTag::Iter => "iterator",
        }
    }

    /// Python-style truthiness, including heap values (empty containers and
    /// empty strings are falsy).
    pub fn truthy(&self, v: Value) -> bool {
        if let Some(b) = v.inline_truthy() {
            return b;
        }
        match v {
            Value::Obj(h) => match self.get(h) {
                Object::Str(s) => !s.is_empty(),
                Object::List(v) => !v.is_empty(),
                Object::Tuple(v) => !v.is_empty(),
                Object::Dict(d) => !d.is_empty(),
                Object::Range { start, stop, step } => {
                    if *step > 0 {
                        start < stop
                    } else {
                        start > stop
                    }
                }
                Object::Function { .. } | Object::Builtin(_) | Object::Iter(_) => true,
            },
            _ => unreachable!("inline values handled above"),
        }
    }

    /// Structural equality with Python semantics: numeric values compare
    /// across int/float/bool; containers compare element-wise.
    pub fn value_eq(&self, a: Value, b: Value) -> bool {
        self.value_eq_depth(a, b, 0)
    }

    fn value_eq_depth(&self, a: Value, b: Value, depth: u32) -> bool {
        if depth > 64 {
            // Deeply nested or cyclic structures: fall back to identity.
            return matches!((a, b), (Value::Obj(x), Value::Obj(y)) if x == y);
        }
        if a.is_number() && b.is_number() {
            // Bool participates in numeric equality like Python (1 == True).
            return match (a, b) {
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                _ => a.as_f64() == b.as_f64(),
            };
        }
        match (a, b) {
            (Value::None, Value::None) => true,
            (Value::Obj(x), Value::Obj(y)) => {
                if x == y {
                    return true;
                }
                match (self.get(x), self.get(y)) {
                    (Object::Str(s1), Object::Str(s2)) => s1 == s2,
                    (Object::List(v1), Object::List(v2))
                    | (Object::Tuple(v1), Object::Tuple(v2)) => {
                        v1.len() == v2.len()
                            && v1
                                .iter()
                                .zip(v2.iter())
                                .all(|(p, q)| self.value_eq_depth(*p, *q, depth + 1))
                    }
                    (Object::Dict(d1), Object::Dict(d2)) => {
                        if d1.len() != d2.len() {
                            return false;
                        }
                        let mut probes = 0u64;
                        d1.entries()
                            .all(|(k, v)| match d2.get_with_eq(self, k, &mut probes) {
                                Some(v2) => self.value_eq_depth(v, v2, depth + 1),
                                None => false,
                            })
                    }
                    (
                        Object::Range {
                            start: a1,
                            stop: b1,
                            step: c1,
                        },
                        Object::Range {
                            start: a2,
                            stop: b2,
                            step: c2,
                        },
                    ) => a1 == a2 && b1 == b2 && c1 == c2,
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Ordering with Python semantics: numbers by value, strings and
    /// sequences lexicographically. Returns `None` for unordered type pairs.
    pub fn value_cmp(&self, a: Value, b: Value) -> Option<Ordering> {
        if a.is_number() && b.is_number() {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            return x.partial_cmp(&y);
        }
        match (a, b) {
            (Value::Obj(x), Value::Obj(y)) => match (self.get(x), self.get(y)) {
                (Object::Str(s1), Object::Str(s2)) => Some(s1.cmp(s2)),
                (Object::List(v1), Object::List(v2)) | (Object::Tuple(v1), Object::Tuple(v2)) => {
                    for (p, q) in v1.iter().zip(v2.iter()) {
                        if !self.value_eq(*p, *q) {
                            return self.value_cmp(*p, *q);
                        }
                    }
                    Some(v1.len().cmp(&v2.len()))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Renders a value the way Python's `str()` would (approximately).
    pub fn render(&self, v: Value) -> String {
        self.render_depth(v, 0, false)
    }

    /// Renders a value the way Python's `repr()` would (strings quoted).
    pub fn render_repr(&self, v: Value) -> String {
        self.render_depth(v, 0, true)
    }

    fn render_depth(&self, v: Value, depth: u32, repr: bool) -> String {
        if depth > 16 {
            return "...".to_string();
        }
        match v {
            Value::None => "None".to_string(),
            Value::Bool(true) => "True".to_string(),
            Value::Bool(false) => "False".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.is_finite() && f == f.trunc() && f.abs() < 1e16 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Obj(h) => match self.get(h) {
                Object::Str(s) => {
                    if repr {
                        format!("'{s}'")
                    } else {
                        s.clone()
                    }
                }
                Object::List(items) => {
                    let parts: Vec<String> = items
                        .iter()
                        .map(|i| self.render_depth(*i, depth + 1, true))
                        .collect();
                    format!("[{}]", parts.join(", "))
                }
                Object::Tuple(items) => {
                    let parts: Vec<String> = items
                        .iter()
                        .map(|i| self.render_depth(*i, depth + 1, true))
                        .collect();
                    if parts.len() == 1 {
                        format!("({},)", parts[0])
                    } else {
                        format!("({})", parts.join(", "))
                    }
                }
                Object::Dict(d) => {
                    let parts: Vec<String> = d
                        .entries()
                        .map(|(k, v)| {
                            format!(
                                "{}: {}",
                                self.render_depth(k, depth + 1, true),
                                self.render_depth(v, depth + 1, true)
                            )
                        })
                        .collect();
                    format!("{{{}}}", parts.join(", "))
                }
                Object::Range { start, stop, step } => {
                    if *step == 1 {
                        format!("range({start}, {stop})")
                    } else {
                        format!("range({start}, {stop}, {step})")
                    }
                }
                Object::Function { code_id } => format!("<function #{code_id}>"),
                Object::Builtin(b) => format!("<builtin {b:?}>"),
                Object::Iter(_) => "<iterator>".to_string(),
            },
        }
    }

    // ---- GC support (called from crate::gc) ----

    /// Unmarks every slot in O(1) by advancing the mark epoch (slots compare
    /// their stamp against it; a stale stamp means unmarked).
    pub(crate) fn clear_marks(&mut self) {
        self.mark_epoch += 1;
    }

    pub(crate) fn mark_one(&mut self, h: Handle) -> bool {
        let epoch = self.mark_epoch;
        match self.slots[h as usize].as_mut() {
            Some(s) if s.mark != epoch => {
                s.mark = epoch;
                true
            }
            _ => false,
        }
    }

    /// Children of an object, pushed onto the GC worklist.
    pub(crate) fn push_children(&self, h: Handle, out: &mut Vec<Handle>) {
        fn push_value(v: Value, out: &mut Vec<Handle>) {
            if let Value::Obj(h) = v {
                out.push(h);
            }
        }
        match self.get(h) {
            Object::Str(_)
            | Object::Range { .. }
            | Object::Function { .. }
            | Object::Builtin(_) => {}
            Object::List(items) | Object::Tuple(items) => {
                for v in items {
                    push_value(*v, out);
                }
            }
            Object::Dict(d) => {
                for (k, v) in d.entries() {
                    push_value(k, out);
                    push_value(v, out);
                }
            }
            Object::Iter(state) => match state {
                IterState::Range { .. } => {}
                IterState::Seq { seq, .. } => out.push(*seq),
                IterState::DictKeys { dict, .. } => out.push(*dict),
            },
        }
    }

    /// Sweeps unmarked slots. Returns (live, freed).
    pub(crate) fn sweep(&mut self) -> (u64, u64) {
        let mut live = 0u64;
        let mut freed = 0u64;
        let epoch = self.mark_epoch;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            match slot {
                Some(s) if s.mark == epoch => live += 1,
                Some(_) => {
                    *slot = None;
                    self.free.push(i as Handle);
                    freed += 1;
                }
                None => {}
            }
        }
        self.allocs_since_gc = 0;
        self.generation += 1;
        self.gc_threshold = if self.adaptive_threshold {
            self.base_threshold.max(live * 2)
        } else {
            self.base_threshold
        };
        self.stats.gc_cycles += 1;
        self.stats.gc_freed += freed;
        self.stats.last_live = live;
        (live, freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_roundtrip() {
        let mut heap = Heap::new();
        let h = heap.alloc_str("hello");
        assert!(matches!(heap.get(h), Object::Str(s) if s == "hello"));
        assert_eq!(heap.live_count(), 1);
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut heap = Heap::new();
        let a = heap.alloc_str("a");
        let _b = heap.alloc_str("b");
        heap.clear_marks();
        // Mark only b.
        heap.mark_one(_b);
        heap.sweep();
        let c = heap.alloc_str("c");
        assert_eq!(c, a, "slot should be recycled");
        assert_eq!(heap.live_count(), 2);
    }

    #[test]
    fn truthiness_of_containers() {
        let mut heap = Heap::new();
        let empty = heap.alloc_list(vec![]);
        let full = heap.alloc_list(vec![Value::Int(1)]);
        let estr = heap.alloc_str("");
        assert!(!heap.truthy(Value::Obj(empty)));
        assert!(heap.truthy(Value::Obj(full)));
        assert!(!heap.truthy(Value::Obj(estr)));
    }

    #[test]
    fn numeric_cross_type_equality() {
        let heap = Heap::new();
        assert!(heap.value_eq(Value::Int(1), Value::Bool(true)));
        assert!(heap.value_eq(Value::Int(2), Value::Float(2.0)));
        assert!(!heap.value_eq(Value::Int(2), Value::Float(2.5)));
        assert!(!heap.value_eq(Value::None, Value::Int(0)));
    }

    #[test]
    fn deep_list_equality_and_ordering() {
        let mut heap = Heap::new();
        let a = heap.alloc_list(vec![Value::Int(1), Value::Int(2)]);
        let b = heap.alloc_list(vec![Value::Int(1), Value::Int(2)]);
        let c = heap.alloc_list(vec![Value::Int(1), Value::Int(3)]);
        assert!(heap.value_eq(Value::Obj(a), Value::Obj(b)));
        assert!(!heap.value_eq(Value::Obj(a), Value::Obj(c)));
        assert_eq!(
            heap.value_cmp(Value::Obj(a), Value::Obj(c)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn string_ordering() {
        let mut heap = Heap::new();
        let a = heap.alloc_str("apple");
        let b = heap.alloc_str("banana");
        assert_eq!(
            heap.value_cmp(Value::Obj(a), Value::Obj(b)),
            Some(Ordering::Less)
        );
        assert_eq!(heap.value_cmp(Value::Obj(a), Value::Int(1)), None);
    }

    #[test]
    fn render_matches_python_conventions() {
        let mut heap = Heap::new();
        let s = heap.alloc_str("hi");
        let l = heap.alloc_list(vec![Value::Int(1), Value::Obj(s)]);
        assert_eq!(heap.render(Value::Obj(l)), "[1, 'hi']");
        assert_eq!(heap.render(Value::Obj(s)), "hi");
        assert_eq!(heap.render_repr(Value::Obj(s)), "'hi'");
        assert_eq!(heap.render(Value::Float(3.0)), "3.0");
        assert_eq!(heap.render(Value::Float(3.5)), "3.5");
        assert_eq!(heap.render(Value::Bool(true)), "True");
        let t = heap.alloc_tuple(vec![Value::Int(1)]);
        assert_eq!(heap.render(Value::Obj(t)), "(1,)");
    }

    #[test]
    fn should_collect_after_threshold() {
        let mut heap = Heap::new();
        assert!(!heap.should_collect());
        for _ in 0..DEFAULT_GC_THRESHOLD {
            heap.alloc(Object::Range {
                start: 0,
                stop: 1,
                step: 1,
            });
        }
        assert!(heap.should_collect());
    }
}
