//! The virtual machine: session state, engine selection, cost charging.
//!
//! One [`Vm`] corresponds to one *VM invocation* in benchmarking-methodology
//! terms: it owns a fresh heap, fresh seeds for every nondeterminism source,
//! fresh JIT state, and a virtual clock starting at zero. The interpreter
//! loop itself lives in the crate-private `interp` module.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builtins::{resolve_builtin, resolve_method, BuiltinFn, MethodId};
use crate::bytecode::{Const, OpClass, Program};
use crate::clock::VirtualClock;
use crate::compiler::compile;
use crate::cost::{CostModel, OpClassTable};
use crate::error::{MpError, MpResult, RuntimeErrorKind};
use crate::frame::{op_class_index, DynCounters, Frame, ALL_OP_CLASSES};
use crate::gc;
use crate::heap::{Heap, Object};
use crate::jit::{JitConfig, JitState};
use crate::noise::{sample_layout_factor, NoiseConfig, OsJitter};
use crate::value::{Handle, Value};

/// Which execution engine a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// CPython-like switch-dispatch interpreter.
    Interp,
    /// Tracing-JIT engine (PyPy-like), with the given configuration.
    Jit(JitConfig),
}

impl EngineKind {
    /// Short display name used in reports (distinguishes JIT modes).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Jit(cfg) => match cfg.mode {
                crate::jit::JitMode::Full => "jit",
                crate::jit::JitMode::LoopsOnly => "jit-loops",
                crate::jit::JitMode::FunctionsOnly => "jit-methods",
            },
        }
    }
}

/// Configuration for a VM session.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Execution engine.
    pub engine: EngineKind,
    /// Active nondeterminism sources.
    pub noise: NoiseConfig,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Whether `print` output is rendered and captured (it always costs
    /// virtual time proportional to the rendered length when enabled).
    pub capture_output: bool,
    /// Abort execution with a typed `Timeout` error when the virtual clock
    /// passes this deadline.
    pub time_budget_ns: Option<f64>,
    /// Abort execution with a typed `FuelExhausted` error after this many
    /// executed opcodes. Unlike the virtual-time deadline this is immune to
    /// cost-model changes, so it bounds divergent workloads deterministically.
    pub step_budget: Option<u64>,
    /// Maximum call-stack depth.
    pub recursion_limit: usize,
    /// Pins the GC allocation threshold (disables adaptive growth);
    /// `None` keeps the default adaptive behaviour.
    pub gc_threshold: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            engine: EngineKind::Interp,
            noise: NoiseConfig::default(),
            cost: CostModel::default(),
            capture_output: false,
            time_budget_ns: Some(60.0e9),
            step_budget: None,
            recursion_limit: 4_000,
            gc_threshold: None,
        }
    }
}

impl VmConfig {
    /// Interpreter engine with default settings.
    pub fn interp() -> Self {
        VmConfig::default()
    }

    /// JIT engine with default settings.
    pub fn jit() -> Self {
        VmConfig {
            engine: EngineKind::Jit(JitConfig::default()),
            ..VmConfig::default()
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-code-object tables resolved once at load and immutable afterwards:
/// constant pools as runtime values, name → global-slot bindings, name →
/// builtin-method ids. Grouped per code so the dispatch loop holds one
/// reference instead of indexing three parallel vectors.
pub(crate) struct CodeStatics {
    /// Constant pool resolved to runtime values.
    pub(crate) consts: Vec<Value>,
    /// Name index → global slot.
    pub(crate) name_slots: Vec<u32>,
    /// Name index → builtin method id, if the name is one.
    pub(crate) method_ids: Vec<Option<MethodId>>,
    /// Per-pc [`op_class_index`] values, parallel to the code's ops: one
    /// byte load replaces two match lookups in the dispatch loop's charge.
    pub(crate) class_idx: Vec<u8>,
    /// Maximum operand-stack depth any reachable path through this code can
    /// attain, proven by the load-time dataflow in [`Program::validate`].
    /// Frame entry reserves this much stack capacity so the dispatch loop's
    /// unchecked pushes can never write past it.
    pub(crate) max_stack: u32,
}

/// A monomorphic per-site dict-lookup cache: replays a previously resolved
/// probe when nothing that could move the entry has happened. Valid only
/// while the heap generation matches (no sweep — no handle recycling), the
/// dict's structural version matches (no insert/remove/resize/clear), and the
/// key is the *identical* `Value` (handle identity for objects).
#[derive(Clone, Copy)]
pub(crate) struct DictIc {
    pub(crate) dict: Handle,
    pub(crate) generation: u64,
    pub(crate) version: u64,
    pub(crate) key: Value,
    pub(crate) slot: u32,
    /// The probe count of the original lookup; replayed on a hit so the
    /// virtual-time charge and `dict_probes` counter are bit-identical to an
    /// uncached lookup (same table layout + same hash ⇒ same probe path).
    pub(crate) probes: u64,
}

/// What a `Call` site resolved to.
#[derive(Clone, Copy)]
pub(crate) enum CallTarget {
    /// A user function (code object id).
    Function(usize),
    /// A builtin function.
    Builtin(BuiltinFn),
}

/// A monomorphic per-site callee cache, valid while the heap generation is
/// unchanged (the handle cannot have been recycled).
#[derive(Clone, Copy)]
pub(crate) struct CallIc {
    pub(crate) callee: Handle,
    pub(crate) generation: u64,
    pub(crate) target: CallTarget,
}

/// Per-(code, pc) inline-cache slots, sized to each code's op count at load.
#[derive(Default)]
pub(crate) struct InlineCaches {
    pub(crate) dict: Vec<Vec<Option<DictIc>>>,
    pub(crate) call: Vec<Vec<Option<CallIc>>>,
}

impl InlineCaches {
    fn for_program(program: &Program) -> InlineCaches {
        InlineCaches {
            dict: program
                .codes
                .iter()
                .map(|c| vec![None; c.ops.len()])
                .collect(),
            call: program
                .codes
                .iter()
                .map(|c| vec![None; c.ops.len()])
                .collect(),
        }
    }
}

/// One VM invocation: program + heap + engine + clock + noise.
pub struct Vm {
    pub(crate) program: Arc<Program>,
    pub(crate) heap: Heap,
    /// Global variable slots (interned across all code objects).
    pub(crate) globals: Vec<Option<Value>>,
    pub(crate) global_names: HashMap<String, u32>,
    /// Per code object: load-time-resolved tables (consts, names, methods).
    /// Shared with the dispatch loop through the `Arc` so handlers can take
    /// `&mut self` while a view is held.
    pub(crate) statics: Arc<Vec<CodeStatics>>,
    /// GC roots that live for the whole session (interned consts, builtins).
    pub(crate) pinned: Vec<Value>,
    pub(crate) stack: Vec<Value>,
    pub(crate) frames: Vec<Frame>,
    pub(crate) clock: VirtualClock,
    pub(crate) cost: CostModel,
    pub(crate) layout_factor: f64,
    /// Effective per-op-class costs with the layout factor pre-applied:
    /// `eff_cost[compiled as usize][op_class_index(class)]`. Products are
    /// computed once at load in the same association order as the original
    /// per-op computation, so every `clock.advance` sees bit-identical
    /// operands.
    pub(crate) eff_cost: [[f64; 8]; 2],
    pub(crate) jitter: OsJitter,
    pub(crate) noise: NoiseConfig,
    pub(crate) counters: DynCounters,
    /// Op counts accumulated by the dispatch loop since the last flush
    /// (virtual time is still advanced per op — f64 addition order is
    /// observable — but integer counters batch).
    pub(crate) pending_ops: [u64; 8],
    pub(crate) pending_jit_ops: u64,
    pub(crate) ics: InlineCaches,
    /// Recycled frame-locals buffers (capped; allocation cost is virtual, so
    /// pooling changes wall-clock only).
    pub(crate) locals_pool: Vec<Vec<Value>>,
    pub(crate) jit: Option<JitState>,
    pub(crate) stdout: String,
    pub(crate) capture_output: bool,
    pub(crate) time_budget_ns: Option<f64>,
    pub(crate) step_budget: Option<u64>,
    pub(crate) recursion_limit: usize,
    pub(crate) ops_since_housekeeping: u32,
    engine: EngineKind,
    /// The invocation seed this session was created with.
    seed: u64,
}

impl Vm {
    /// Compiles `source` and creates a session with the given invocation
    /// `seed` and configuration.
    ///
    /// # Errors
    ///
    /// Returns lex/parse/compile errors from `source`.
    pub fn compile_and_load(source: &str, seed: u64, config: VmConfig) -> MpResult<Vm> {
        let program = compile(source)?;
        Ok(Self::load(program, seed, config))
    }

    /// Creates a session for an already compiled program.
    pub fn load(program: Program, seed: u64, config: VmConfig) -> Vm {
        Self::load_shared(Arc::new(program), seed, config)
    }

    /// Creates a session over a shared, already compiled program — the
    /// parse-once path: many invocations can be instantiated from one
    /// `Arc<Program>` without re-lexing, re-parsing or re-compiling.
    ///
    /// # Panics
    ///
    /// If the program fails [`Program::validate`]. The dispatch loop skips
    /// per-op bounds checks that validation proves redundant, so executing
    /// an unvalidated program is never allowed. Compiler output always
    /// passes; only hand-built programs can trip this.
    pub fn load_shared(program: Arc<Program>, seed: u64, config: VmConfig) -> Vm {
        let max_stacks = match program.validate() {
            Ok(depths) => depths,
            Err(msg) => panic!("refusing to load invalid program: {msg}"),
        };
        let mut seed_state = seed;
        let hash_entropy = splitmix64(&mut seed_state);
        let layout_seed = splitmix64(&mut seed_state);
        let jitter_seed = splitmix64(&mut seed_state);

        let hash_seed = if config.noise.hash_randomization {
            hash_entropy
        } else {
            0
        };
        let mut heap = Heap::with_seed(hash_seed);
        if let Some(t) = config.gc_threshold {
            heap.set_gc_threshold(t);
        }
        let mut layout_rng = StdRng::seed_from_u64(layout_seed);
        let layout_factor = sample_layout_factor(&mut layout_rng, config.noise.layout);
        let jitter = OsJitter::new(jitter_seed, config.noise.os_jitter);

        // Intern globals across all code objects; bind builtins. The name
        // and method tables land in per-code `CodeStatics` alongside the
        // resolved constant pools.
        let mut global_names: HashMap<String, u32> = HashMap::new();
        let mut globals: Vec<Option<Value>> = Vec::new();
        let mut pinned: Vec<Value> = Vec::new();
        let mut statics: Vec<CodeStatics> = Vec::with_capacity(program.codes.len());
        for (code, &max_stack) in program.codes.iter().zip(&max_stacks) {
            let mut slots = Vec::with_capacity(code.names.len());
            let mut mids = Vec::with_capacity(code.names.len());
            for name in &code.names {
                let slot = *global_names.entry(name.clone()).or_insert_with(|| {
                    globals.push(None);
                    (globals.len() - 1) as u32
                });
                // Bind builtins lazily, once per name.
                if globals[slot as usize].is_none() {
                    if let Some(b) = resolve_builtin(name) {
                        let h = heap.alloc(Object::Builtin(b));
                        let v = Value::Obj(h);
                        globals[slot as usize] = Some(v);
                        pinned.push(v);
                    }
                }
                slots.push(slot);
                mids.push(resolve_method(name));
            }
            statics.push(CodeStatics {
                consts: Vec::new(),
                name_slots: slots,
                method_ids: mids,
                class_idx: code
                    .ops
                    .iter()
                    .map(|op| op_class_index(op.class()) as u8)
                    .collect(),
                max_stack,
            });
        }

        // Resolve constant pools into runtime values.
        for (code, cs) in program.codes.iter().zip(&mut statics) {
            let mut vals = Vec::with_capacity(code.consts.len());
            for c in &code.consts {
                let v = match c {
                    Const::None => Value::None,
                    Const::Bool(b) => Value::Bool(*b),
                    Const::Int(i) => Value::Int(*i),
                    Const::Float(f) => Value::Float(*f),
                    Const::Str(s) => {
                        let h = heap.alloc_str(s.clone());
                        let v = Value::Obj(h);
                        pinned.push(v);
                        v
                    }
                    Const::Func(code_id) => {
                        let h = heap.alloc(Object::Function { code_id: *code_id });
                        let v = Value::Obj(h);
                        pinned.push(v);
                        v
                    }
                };
                vals.push(v);
            }
            cs.consts = vals;
        }

        // Pre-apply the layout factor per op class, preserving the exact
        // operands and association order of the original per-op computation
        // (`base * layout_factor`), so virtual time stays bit-identical.
        let mut eff_cost = [[0.0f64; 8]; 2];
        for (i, &class) in ALL_OP_CLASSES.iter().enumerate() {
            let interp = config.cost.interp_cost(class);
            let jit = config.cost.jit_cost(class);
            if OpClassTable::layout_sensitive(class) {
                eff_cost[0][i] = interp * layout_factor;
                eff_cost[1][i] = jit * layout_factor;
            } else {
                eff_cost[0][i] = interp;
                eff_cost[1][i] = jit;
            }
        }

        let ics = InlineCaches::for_program(&program);

        let jit = match config.engine {
            EngineKind::Interp => None,
            EngineKind::Jit(jc) => {
                let op_counts: Vec<usize> = program.codes.iter().map(|c| c.ops.len()).collect();
                Some(JitState::new(jc, &op_counts))
            }
        };

        Vm {
            program,
            heap,
            globals,
            global_names,
            statics: Arc::new(statics),
            pinned,
            stack: Vec::with_capacity(256),
            frames: Vec::with_capacity(32),
            clock: VirtualClock::new(),
            cost: config.cost,
            layout_factor,
            eff_cost,
            jitter,
            noise: config.noise,
            counters: DynCounters::default(),
            pending_ops: [0; 8],
            pending_jit_ops: 0,
            ics,
            locals_pool: Vec::new(),
            jit,
            stdout: String::new(),
            capture_output: config.capture_output,
            time_budget_ns: config.time_budget_ns,
            step_budget: config.step_budget,
            recursion_limit: config.recursion_limit,
            ops_since_housekeeping: 0,
            engine: config.engine,
            seed,
        }
    }

    /// The engine this session runs on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The invocation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> f64 {
        self.clock.now_ns()
    }

    /// Dynamic-execution counters so far.
    pub fn counters(&self) -> DynCounters {
        self.counters
    }

    /// Heap statistics so far.
    pub fn heap_stats(&self) -> crate::heap::HeapStats {
        self.heap.stats()
    }

    /// JIT state summary: (compiled regions, blacklisted heads), zero for the
    /// interpreter engine.
    pub fn jit_summary(&self) -> (usize, usize) {
        match &self.jit {
            Some(j) => (j.compiled_regions(), j.blacklisted_count()),
            None => (0, 0),
        }
    }

    /// Takes and clears everything `print` has emitted so far.
    pub fn take_stdout(&mut self) -> String {
        std::mem::take(&mut self.stdout)
    }

    /// Advances the virtual clock by `ns` without executing anything — a
    /// hook for fault-injection harnesses that model external stalls
    /// (noisy neighbours, page faults). The stall counts toward any
    /// configured virtual-time deadline, so injected slowness exercises
    /// the same timeout machinery as a genuinely divergent workload.
    pub fn inject_stall(&mut self, ns: f64) {
        self.clock.advance(ns);
        self.counters.jitter_ns += ns;
        self.counters.jitter_events += 1;
    }

    /// Borrows the heap (for inspecting returned values).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Runs the module body (top-level statements). Typically used once per
    /// session for workload setup.
    ///
    /// # Errors
    ///
    /// Returns any runtime error raised by the program.
    pub fn run_module(&mut self) -> MpResult<Value> {
        self.stack.reserve(self.statics[0].max_stack as usize);
        let frame = Frame {
            code_id: 0,
            pc: 0,
            locals: vec![Value::None; self.program.codes[0].n_locals as usize],
            stack_base: self.stack.len(),
        };
        self.frames.push(frame);
        let min_frames = self.frames.len() - 1;
        self.execute_until(min_frames)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        let slot = *self.global_names.get(name)?;
        self.globals[slot as usize]
    }

    /// Calls the global function `name` with `args`, returning its result.
    ///
    /// This is the harness's per-iteration entry point: the convention is
    /// that a workload module defines `run()` and the harness calls it once
    /// per iteration.
    ///
    /// # Errors
    ///
    /// `NameError` if the global is missing, `TypeError` if it is not
    /// callable or the arity mismatches, plus any error the code raises.
    pub fn call_function(&mut self, name: &str, args: &[Value]) -> MpResult<Value> {
        let callee = self.global(name).ok_or_else(|| MpError::name_error(name))?;
        let code_id = match callee {
            Value::Obj(h) => match self.heap.get(h) {
                Object::Function { code_id } => *code_id,
                _ => return Err(MpError::type_error(format!("'{name}' is not callable"))),
            },
            _ => return Err(MpError::type_error(format!("'{name}' is not callable"))),
        };
        let code = &self.program.codes[code_id];
        if args.len() != code.n_params as usize {
            return Err(MpError::type_error(format!(
                "{name}() takes {} arguments but {} were given",
                code.n_params,
                args.len()
            )));
        }
        let mut locals = vec![Value::None; code.n_locals as usize];
        locals[..args.len()].copy_from_slice(args);
        self.stack.reserve(self.statics[code_id].max_stack as usize);
        let frame = Frame {
            code_id,
            pc: 0,
            locals,
            stack_base: self.stack.len(),
        };
        // Charge the call like any other call opcode.
        self.charge(OpClass::Call, false);
        let min_frames = self.frames.len();
        self.frames.push(frame);
        self.execute_until(min_frames)
    }

    // ---- cost charging and housekeeping (used by the interpreter) ----

    /// Charges one opcode of `class`, in interpreted or compiled mode.
    #[inline]
    pub(crate) fn charge(&mut self, class: OpClass, compiled: bool) {
        self.clock
            .advance(self.eff_cost[usize::from(compiled)][op_class_index(class)]);
        self.counters.count_op(class, compiled);
    }

    /// The dispatch-loop variant of [`Vm::charge`]: virtual time advances
    /// immediately (f64 addition order is observable), integer counters batch
    /// into `pending_*` and are folded in by [`Vm::flush_op_counters`].
    #[inline]
    pub(crate) fn charge_batched(&mut self, class_idx: usize, compiled: bool) {
        // There are exactly 8 op classes; masking proves the index in range
        // so the hot path carries no bounds checks.
        let class_idx = class_idx & 7;
        self.clock
            .advance(self.eff_cost[usize::from(compiled)][class_idx]);
        self.pending_ops[class_idx] += 1;
        self.pending_jit_ops += u64::from(compiled);
    }

    /// Folds batched op counts into the public counters. Runs at the top of
    /// every housekeeping (the step budget reads `total_ops` there) and at
    /// every dispatch exit, so externally observable counters are always
    /// exact.
    pub(crate) fn flush_op_counters(&mut self) {
        let mut total = 0;
        for i in 0..8 {
            self.counters.ops_by_class[i] += self.pending_ops[i];
            total += self.pending_ops[i];
            self.pending_ops[i] = 0;
        }
        self.counters.total_ops += total;
        self.counters.jit_ops += self.pending_jit_ops;
        self.pending_jit_ops = 0;
    }

    /// Whether the JIT has compiled the region containing `(code_id, pc)`.
    /// `false` for the interpreter engine.
    #[inline]
    pub(crate) fn jit_compiled_at(&self, code_id: usize, pc: usize) -> bool {
        match &self.jit {
            Some(j) => j.is_compiled(code_id, pc),
            None => false,
        }
    }

    /// Charges auxiliary (non-opcode) work such as per-element copying.
    #[inline]
    pub(crate) fn charge_aux(&mut self, ns: f64, layout_sensitive: bool) {
        let cost = if layout_sensitive {
            ns * self.layout_factor
        } else {
            ns
        };
        self.clock.advance(cost);
    }

    /// Charges accumulated dict probe work.
    #[inline]
    pub(crate) fn charge_probes(&mut self, probes: u64) {
        self.counters.dict_probes += probes;
        self.charge_aux(self.cost.dict_probe * probes as f64, true);
    }

    /// Allocates an object, charging allocation cost.
    pub(crate) fn alloc(&mut self, obj: Object) -> crate::value::Handle {
        self.counters.allocations += 1;
        self.charge_aux(self.cost.alloc_object, true);
        self.heap.alloc(obj)
    }

    /// Runs housekeeping due at an op boundary: GC (if armed), OS jitter,
    /// time budget. Called by the interpreter between instructions.
    pub(crate) fn housekeeping(&mut self) -> MpResult<()> {
        self.flush_op_counters();
        if self.heap.should_collect() {
            self.run_gc();
        }
        self.ops_since_housekeeping = 0;
        let pause = self.jitter.pauses_until(self.clock.now_ns());
        if pause > 0.0 {
            self.clock.advance(pause);
            self.counters.jitter_ns += pause;
            self.counters.jitter_events += 1;
        }
        if let Some(budget) = self.time_budget_ns {
            if self.clock.now_ns() > budget {
                return Err(MpError::runtime(
                    RuntimeErrorKind::Timeout,
                    format!("virtual-time deadline of {budget} ns passed"),
                ));
            }
        }
        if let Some(budget) = self.step_budget {
            if self.counters.total_ops > budget {
                return Err(MpError::runtime(
                    RuntimeErrorKind::FuelExhausted,
                    format!("step budget of {budget} opcodes exhausted"),
                ));
            }
        }
        Ok(())
    }

    /// Runs a GC cycle with full roots and charges the pause.
    pub(crate) fn run_gc(&mut self) {
        // Feed the roots straight to the collector without materializing
        // them: the iterator borrows stack/frames/globals/pinned shared while
        // the collector mutates only the (disjoint) heap field. Root order is
        // stack, frame locals, globals, pinned — same as ever.
        let Vm {
            heap,
            stack,
            frames,
            globals,
            pinned,
            ..
        } = self;
        let roots = stack
            .iter()
            .copied()
            .chain(frames.iter().flat_map(|f| f.locals.iter().copied()))
            .chain(globals.iter().flatten().copied())
            .chain(pinned.iter().copied());
        let outcome = gc::collect(heap, roots);
        self.counters.gc_cycles += 1;
        if self.noise.gc_costed {
            let pause = self.cost.gc_pause(outcome.live, outcome.freed);
            self.clock.advance(pause);
            self.counters.gc_pause_ns += pause;
        }
    }

    /// Renders a value using the session heap (for examples and tests).
    pub fn render(&self, v: Value) -> String {
        self.heap.render(v)
    }
}

/// Derives a deterministic per-invocation seed from an experiment seed, a
/// benchmark identifier and the invocation index.
pub fn invocation_seed(experiment_seed: u64, benchmark: &str, invocation: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ experiment_seed.rotate_left(17);
    for b in benchmark.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(invocation).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut state = h;
    // One splitmix round for avalanche.
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a quick RNG for tests that need arbitrary values.
pub fn test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a random `u64` — exposed so downstream crates don't need a direct
/// `rand` dependency for simple seeding tasks.
pub fn random_seed_from(rng: &mut StdRng) -> u64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_seeds_are_distinct() {
        let a = invocation_seed(1, "nbody", 0);
        let b = invocation_seed(1, "nbody", 1);
        let c = invocation_seed(1, "fib", 0);
        let d = invocation_seed(2, "nbody", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, invocation_seed(1, "nbody", 0));
    }

    #[test]
    fn hash_seed_pinned_when_randomization_off() {
        let mut cfg = VmConfig::interp();
        cfg.noise.hash_randomization = false;
        let vm1 = Vm::compile_and_load("x = 1\n", 1, cfg.clone()).unwrap();
        let vm2 = Vm::compile_and_load("x = 1\n", 999, cfg).unwrap();
        assert_eq!(vm1.heap.hash_seed(), 0);
        assert_eq!(vm2.heap.hash_seed(), 0);
    }

    #[test]
    fn hash_seed_varies_when_randomization_on() {
        let cfg = VmConfig::interp();
        let vm1 = Vm::compile_and_load("x = 1\n", 1, cfg.clone()).unwrap();
        let vm2 = Vm::compile_and_load("x = 1\n", 2, cfg).unwrap();
        assert_ne!(vm1.heap.hash_seed(), vm2.heap.hash_seed());
    }

    #[test]
    fn layout_factor_is_one_when_disabled() {
        let mut cfg = VmConfig::interp();
        cfg.noise.layout = false;
        let vm = Vm::compile_and_load("x = 1\n", 5, cfg).unwrap();
        assert_eq!(vm.layout_factor, 1.0);
    }

    #[test]
    fn step_budget_aborts_divergent_loop() {
        let mut cfg = VmConfig::interp();
        cfg.step_budget = Some(10_000);
        let mut vm = Vm::compile_and_load("while True:\n    pass\n", 1, cfg).unwrap();
        let err = vm.run_module().expect_err("must exhaust fuel");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::FuelExhausted));
        // The budget is enforced at housekeeping boundaries, so overshoot is
        // bounded by one housekeeping interval.
        assert!(vm.counters().total_ops < 10_000 + 128);
    }

    #[test]
    fn injected_stall_advances_clock_and_counts() {
        let mut vm = Vm::compile_and_load("x = 1\n", 1, VmConfig::interp()).unwrap();
        vm.run_module().unwrap();
        let before = vm.now_ns();
        vm.inject_stall(5_000.0);
        assert!((vm.now_ns() - before - 5_000.0).abs() < 1e-9);
        assert_eq!(vm.counters().jitter_events, 1);
    }

    #[test]
    fn injected_stall_trips_the_deadline() {
        let mut cfg = VmConfig::interp();
        cfg.time_budget_ns = Some(1.0e6);
        let src =
            "def run():\n    s = 0\n    for i in range(1000):\n        s += i\n    return s\n";
        let mut vm = Vm::compile_and_load(src, 1, cfg).unwrap();
        vm.run_module().unwrap();
        vm.inject_stall(2.0e6);
        let err = vm.call_function("run", &[]).expect_err("deadline passed");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::Timeout));
    }

    #[test]
    fn engine_names() {
        assert_eq!(EngineKind::Interp.name(), "interp");
        assert_eq!(EngineKind::Jit(JitConfig::default()).name(), "jit");
        assert_eq!(EngineKind::Jit(JitConfig::loops_only()).name(), "jit-loops");
        assert_eq!(
            EngineKind::Jit(JitConfig::functions_only()).name(),
            "jit-methods"
        );
    }
}
