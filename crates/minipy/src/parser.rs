//! Recursive-descent parser for MiniPy.
//!
//! Grammar (informal, Python-like):
//!
//! ```text
//! module     := stmt* EOF
//! stmt       := simple_stmt NEWLINE | compound_stmt
//! simple     := expr | assign | aug_assign | return | break | continue
//!             | pass | global | del
//! compound   := if | while | for | def
//! expr       := ternary
//! ternary    := or_expr ['if' or_expr 'else' ternary]
//! or_expr    := and_expr ('or' and_expr)*
//! and_expr   := not_expr ('and' not_expr)*
//! not_expr   := 'not' not_expr | comparison
//! comparison := arith ((==|!=|<|<=|>|>=|in|not in) arith)*   -- chained
//! arith      := term ((+|-) term)*
//! term       := factor ((*|/|//|%) factor)*
//! factor     := (-|+) factor | power
//! power      := postfix ['**' factor]
//! postfix    := atom (call | index | slice | attr)*
//! atom       := literal | NAME | '(' ... ')' | '[' ... ']' | '{' ... '}'
//! ```

use crate::ast::{BinOp, Expr, Module, Stmt, Target, UnaryOp};
use crate::error::{MpError, MpResult, Span};
use crate::token::{tokenize, Token, TokenKind};

/// Parses a MiniPy source module.
///
/// # Errors
///
/// Returns [`MpError::Lex`] or [`MpError::Parse`] on malformed input.
pub fn parse(source: &str) -> MpResult<Module> {
    let tokens = tokenize(source)?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .module()
}

/// Maximum expression nesting depth, mirroring CPython's "too many nested
/// parentheses" guard — a recursive-descent parser must bound its own stack.
/// 40 levels is far beyond what real programs use while keeping the worst
/// case (~11 stack frames per level in debug builds) well inside thread
/// stacks.
const MAX_EXPR_DEPTH: usize = 40;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> MpResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err(&self, message: impl Into<String>) -> MpError {
        MpError::Parse {
            message: message.into(),
            span: self.peek_span(),
        }
    }

    fn module(mut self) -> MpResult<Module> {
        let mut body = Vec::new();
        while !self.at(&TokenKind::Eof) {
            body.push(self.statement()?);
        }
        Ok(Module { body })
    }

    fn block(&mut self) -> MpResult<Vec<Stmt>> {
        self.expect(&TokenKind::Colon)?;
        self.expect(&TokenKind::Newline)?;
        self.expect(&TokenKind::Indent)?;
        let mut body = Vec::new();
        while !self.at(&TokenKind::Dedent) && !self.at(&TokenKind::Eof) {
            body.push(self.statement()?);
        }
        self.expect(&TokenKind::Dedent)?;
        if body.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(body)
    }

    fn statement(&mut self) -> MpResult<Stmt> {
        match self.peek().clone() {
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Def => self.def_stmt(),
            TokenKind::Return => {
                let span = self.peek_span();
                self.bump();
                let value = if self.at(&TokenKind::Newline) {
                    None
                } else {
                    Some(self.expr_or_tuple()?)
                };
                self.expect(&TokenKind::Newline)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Break => {
                let span = self.peek_span();
                self.bump();
                self.expect(&TokenKind::Newline)?;
                Ok(Stmt::Break { span })
            }
            TokenKind::Continue => {
                let span = self.peek_span();
                self.bump();
                self.expect(&TokenKind::Newline)?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::Pass => {
                self.bump();
                self.expect(&TokenKind::Newline)?;
                Ok(Stmt::Pass)
            }
            TokenKind::Global => {
                let span = self.peek_span();
                self.bump();
                let mut names = vec![self.name()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.name()?);
                }
                self.expect(&TokenKind::Newline)?;
                Ok(Stmt::Global { names, span })
            }
            TokenKind::Del => {
                let span = self.peek_span();
                self.bump();
                let target = self.expr()?;
                self.expect(&TokenKind::Newline)?;
                match target {
                    Expr::Index { object, index, .. } => Ok(Stmt::DelIndex {
                        object: *object,
                        index: *index,
                        span,
                    }),
                    _ => Err(MpError::Parse {
                        message: "del only supports subscript targets".into(),
                        span,
                    }),
                }
            }
            _ => self.expr_or_assign_stmt(),
        }
    }

    fn name(&mut self) -> MpResult<String> {
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.err(format!("expected name, found {}", other.describe()))),
        }
    }

    fn if_stmt(&mut self) -> MpResult<Stmt> {
        self.expect(&TokenKind::If)?;
        let cond = self.expr()?;
        let then = self.block()?;
        let orelse = if self.at(&TokenKind::Elif) {
            // Desugar `elif` into a nested `if` in the else branch.
            // Rewrite the token so `if_stmt` can re-parse from here.
            self.tokens[self.pos].kind = TokenKind::If;
            vec![self.if_stmt()?]
        } else if self.eat(&TokenKind::Else) {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, orelse })
    }

    fn while_stmt(&mut self) -> MpResult<Stmt> {
        self.expect(&TokenKind::While)?;
        let cond = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> MpResult<Stmt> {
        self.expect(&TokenKind::For)?;
        let target = self.for_target()?;
        self.expect(&TokenKind::In)?;
        let iterable = self.expr_or_tuple()?;
        let body = self.block()?;
        Ok(Stmt::For {
            target,
            iterable,
            body,
        })
    }

    /// Parses a `for` loop target: a name or a comma-separated tuple of names.
    fn for_target(&mut self) -> MpResult<Target> {
        let span = self.peek_span();
        let first = self.name()?;
        if self.at(&TokenKind::Comma) {
            let mut elts = vec![Target::Name { name: first, span }];
            while self.eat(&TokenKind::Comma) {
                if self.at(&TokenKind::In) {
                    break;
                }
                let s = self.peek_span();
                elts.push(Target::Name {
                    name: self.name()?,
                    span: s,
                });
            }
            Ok(Target::Tuple { elts, span })
        } else {
            Ok(Target::Name { name: first, span })
        }
    }

    fn def_stmt(&mut self) -> MpResult<Stmt> {
        let span = self.peek_span();
        self.expect(&TokenKind::Def)?;
        let name = self.name()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            params.push(self.name()?);
            while self.eat(&TokenKind::Comma) {
                if self.at(&TokenKind::RParen) {
                    break;
                }
                params.push(self.name()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::Def {
            name,
            params,
            body,
            span,
        })
    }

    /// Parses an expression statement, assignment, or augmented assignment.
    fn expr_or_assign_stmt(&mut self) -> MpResult<Stmt> {
        let first = self.expr_or_tuple()?;
        let stmt = if self.eat(&TokenKind::Eq) {
            let target = Self::expr_to_target(first)?;
            let value = self.expr_or_tuple()?;
            Stmt::Assign { target, value }
        } else {
            let aug = match self.peek() {
                TokenKind::PlusEq => Some(BinOp::Add),
                TokenKind::MinusEq => Some(BinOp::Sub),
                TokenKind::StarEq => Some(BinOp::Mul),
                TokenKind::SlashEq => Some(BinOp::Div),
                TokenKind::SlashSlashEq => Some(BinOp::FloorDiv),
                TokenKind::PercentEq => Some(BinOp::Mod),
                _ => None,
            };
            if let Some(op) = aug {
                self.bump();
                let target = Self::expr_to_target(first)?;
                if matches!(target, Target::Tuple { .. }) {
                    return Err(self.err("augmented assignment target cannot be a tuple"));
                }
                let value = self.expr_or_tuple()?;
                Stmt::AugAssign { target, op, value }
            } else {
                Stmt::Expr { value: first }
            }
        };
        self.expect(&TokenKind::Newline)?;
        Ok(stmt)
    }

    fn expr_to_target(e: Expr) -> MpResult<Target> {
        match e {
            Expr::Name { name, span } => Ok(Target::Name { name, span }),
            Expr::Index {
                object,
                index,
                span,
            } => Ok(Target::Index {
                object: *object,
                index: *index,
                span,
            }),
            Expr::Tuple { items, span } => {
                let elts = items
                    .into_iter()
                    .map(Self::expr_to_target)
                    .collect::<MpResult<Vec<_>>>()?;
                Ok(Target::Tuple { elts, span })
            }
            other => Err(MpError::Parse {
                message: "invalid assignment target".into(),
                span: other.span(),
            }),
        }
    }

    /// Parses `a, b, c` as a tuple, or a single expression if no comma follows.
    fn expr_or_tuple(&mut self) -> MpResult<Expr> {
        let span = self.peek_span();
        let first = self.expr()?;
        if self.at(&TokenKind::Comma) {
            let mut items = vec![first];
            while self.eat(&TokenKind::Comma) {
                if self.at(&TokenKind::Newline) || self.at(&TokenKind::Eq) {
                    break;
                }
                items.push(self.expr()?);
            }
            Ok(Expr::Tuple { items, span })
        } else {
            Ok(first)
        }
    }

    fn expr(&mut self) -> MpResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression nesting too deep"));
        }
        let result = self.ternary();
        self.depth -= 1;
        result
    }

    fn ternary(&mut self) -> MpResult<Expr> {
        let span = self.peek_span();
        let value = self.or_expr()?;
        if self.eat(&TokenKind::If) {
            let cond = self.or_expr()?;
            self.expect(&TokenKind::Else)?;
            let orelse = self.ternary()?;
            Ok(Expr::IfExp {
                cond: Box::new(cond),
                then: Box::new(value),
                orelse: Box::new(orelse),
                span,
            })
        } else {
            Ok(value)
        }
    }

    fn or_expr(&mut self) -> MpResult<Expr> {
        let mut left = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            let span = self.peek_span();
            self.bump();
            let right = self.and_expr()?;
            left = Expr::BoolChain {
                is_and: false,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> MpResult<Expr> {
        let mut left = self.not_expr()?;
        while self.at(&TokenKind::And) {
            let span = self.peek_span();
            self.bump();
            let right = self.not_expr()?;
            left = Expr::BoolChain {
                is_and: true,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> MpResult<Expr> {
        if self.at(&TokenKind::Not) {
            let span = self.peek_span();
            self.bump();
            let operand = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
                span,
            })
        } else {
            self.comparison()
        }
    }

    fn comparison_op(&mut self) -> Option<BinOp> {
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            TokenKind::In => BinOp::In,
            TokenKind::Not
                // `not in`
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::In) => {
                    self.bump();
                    BinOp::NotIn
                }
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn comparison(&mut self) -> MpResult<Expr> {
        let first = self.arith()?;
        let span = first.span();
        let mut comparisons: Vec<(BinOp, Expr)> = Vec::new();
        while let Some(op) = self.comparison_op() {
            let right = self.arith()?;
            comparisons.push((op, right));
        }
        if comparisons.is_empty() {
            return Ok(first);
        }
        // Desugar chained comparison `a < b < c` into `(a < b) and (b < c)`.
        // The middle operand is duplicated; MiniPy expressions are effect-free
        // enough in practice (benchmarks) that re-evaluation is acceptable and
        // it keeps the bytecode compiler simple.
        let mut left_operand = first;
        let mut result: Option<Expr> = None;
        for (op, right) in comparisons {
            let cmp = Expr::Binary {
                op,
                left: Box::new(left_operand.clone()),
                right: Box::new(right.clone()),
                span,
            };
            result = Some(match result {
                None => cmp,
                Some(acc) => Expr::BoolChain {
                    is_and: true,
                    left: Box::new(acc),
                    right: Box::new(cmp),
                    span,
                },
            });
            left_operand = right;
        }
        Ok(result.expect("at least one comparison"))
    }

    fn arith(&mut self) -> MpResult<Expr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let right = self.term()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> MpResult<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::SlashSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            let span = self.peek_span();
            self.bump();
            let right = self.factor()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> MpResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                let span = self.peek_span();
                self.bump();
                let operand = self.factor()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Plus => {
                let span = self.peek_span();
                self.bump();
                let operand = self.factor()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Pos,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.power(),
        }
    }

    fn power(&mut self) -> MpResult<Expr> {
        let base = self.postfix()?;
        if self.at(&TokenKind::StarStar) {
            let span = self.peek_span();
            self.bump();
            // Right-associative; exponent may itself be signed (`2 ** -3`).
            let exp = self.factor()?;
            Ok(Expr::Binary {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
                span,
            })
        } else {
            Ok(base)
        }
    }

    fn postfix(&mut self) -> MpResult<Expr> {
        let mut value = self.atom()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    let span = self.peek_span();
                    self.bump();
                    let args = self.call_args()?;
                    value = Expr::Call {
                        callee: Box::new(value),
                        args,
                        span,
                    };
                }
                TokenKind::LBracket => {
                    let span = self.peek_span();
                    self.bump();
                    value = self.subscript_rest(value, span)?;
                }
                TokenKind::Dot => {
                    let span = self.peek_span();
                    self.bump();
                    let method = self.name()?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.call_args()?;
                    value = Expr::MethodCall {
                        receiver: Box::new(value),
                        method,
                        args,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(value)
    }

    fn call_args(&mut self) -> MpResult<Vec<Expr>> {
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                if self.at(&TokenKind::RParen) {
                    break;
                }
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    /// Parses the remainder of `value[...` — either an index or a slice.
    fn subscript_rest(&mut self, object: Expr, span: Span) -> MpResult<Expr> {
        if self.at(&TokenKind::Colon) {
            // `[:hi]` or `[:]`
            self.bump();
            let hi = if self.at(&TokenKind::RBracket) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            self.expect(&TokenKind::RBracket)?;
            return Ok(Expr::Slice {
                object: Box::new(object),
                lo: None,
                hi,
                span,
            });
        }
        let first = self.expr()?;
        if self.eat(&TokenKind::Colon) {
            let hi = if self.at(&TokenKind::RBracket) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            self.expect(&TokenKind::RBracket)?;
            Ok(Expr::Slice {
                object: Box::new(object),
                lo: Some(Box::new(first)),
                hi,
                span,
            })
        } else {
            self.expect(&TokenKind::RBracket)?;
            Ok(Expr::Index {
                object: Box::new(object),
                index: Box::new(first),
                span,
            })
        }
    }

    fn atom(&mut self) -> MpResult<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int { value: v, span })
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float { value: v, span })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str { value: s, span })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool { value: true, span })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool { value: false, span })
            }
            TokenKind::NoneLit => {
                self.bump();
                Ok(Expr::None { span })
            }
            TokenKind::Name(n) => {
                self.bump();
                Ok(Expr::Name { name: n, span })
            }
            TokenKind::LParen => {
                self.bump();
                if self.eat(&TokenKind::RParen) {
                    return Ok(Expr::Tuple {
                        items: Vec::new(),
                        span,
                    });
                }
                let first = self.expr()?;
                if self.at(&TokenKind::Comma) {
                    let mut items = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        if self.at(&TokenKind::RParen) {
                            break;
                        }
                        items.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Tuple { items, span })
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    items.push(self.expr()?);
                    if self.at(&TokenKind::For) {
                        // List comprehension: [expr for target in iterable if cond]
                        self.bump();
                        let target = self.for_target()?;
                        self.expect(&TokenKind::In)?;
                        let iterable = self.or_expr()?;
                        let cond = if self.eat(&TokenKind::If) {
                            Some(Box::new(self.or_expr()?))
                        } else {
                            None
                        };
                        self.expect(&TokenKind::RBracket)?;
                        let expr = items.pop().expect("pushed above");
                        return Ok(Expr::ListComp {
                            expr: Box::new(expr),
                            target: Box::new(target),
                            iterable: Box::new(iterable),
                            cond,
                            span,
                        });
                    }
                    while self.eat(&TokenKind::Comma) {
                        if self.at(&TokenKind::RBracket) {
                            break;
                        }
                        items.push(self.expr()?);
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List { items, span })
            }
            TokenKind::LBrace => {
                self.bump();
                let mut pairs = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        let key = self.expr()?;
                        self.expect(&TokenKind::Colon)?;
                        let value = self.expr()?;
                        pairs.push((key, value));
                        if !self.eat(&TokenKind::Comma) || self.at(&TokenKind::RBrace) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Expr::Dict { pairs, span })
            }
            other => Err(self.err(format!("unexpected {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn assignment_and_expr() {
        let m = parse_ok("x = 1 + 2 * 3\n");
        assert_eq!(m.body.len(), 1);
        match &m.body[0] {
            Stmt::Assign {
                target: Target::Name { name, .. },
                value,
            } => {
                assert_eq!(name, "x");
                // 1 + (2 * 3): precedence check.
                match value {
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    } => {
                        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let m = parse_ok("x = 2 ** 3 ** 2\n");
        match &m.body[0] {
            Stmt::Assign {
                value:
                    Expr::Binary {
                        op: BinOp::Pow,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_binds_tighter_than_mul_via_factor() {
        let m = parse_ok("x = -a * b\n");
        match &m.body[0] {
            Stmt::Assign {
                value:
                    Expr::Binary {
                        op: BinOp::Mul,
                        left,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **left,
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_comparison_desugars_to_and() {
        let m = parse_ok("y = 1 < x < 10\n");
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::BoolChain { is_and: true, .. },
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elif_else_desugars() {
        let m = parse_ok("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match &m.body[0] {
            Stmt::If { orelse, .. } => {
                assert_eq!(orelse.len(), 1);
                match &orelse[0] {
                    Stmt::If {
                        orelse: inner_else, ..
                    } => assert_eq!(inner_else.len(), 1),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn def_with_params_and_return() {
        let m = parse_ok("def f(a, b):\n    return a + b\n");
        match &m.body[0] {
            Stmt::Def {
                name, params, body, ..
            } => {
                assert_eq!(name, "f");
                assert_eq!(params, &["a".to_string(), "b".to_string()]);
                assert!(matches!(body[0], Stmt::Return { value: Some(_), .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_over_range_with_tuple_target() {
        let m = parse_ok("for k, v in d.items():\n    s += v\n");
        match &m.body[0] {
            Stmt::For {
                target: Target::Tuple { elts, .. },
                iterable,
                ..
            } => {
                assert_eq!(elts.len(), 2);
                assert!(matches!(iterable, Expr::MethodCall { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_call_and_index_chain() {
        let m = parse_ok("x = d.get(k)[0]\n");
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Index { object, .. },
                ..
            } => {
                assert!(matches!(**object, Expr::MethodCall { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slices() {
        let m = parse_ok("a = s[1:3]\nb = s[:2]\nc = s[2:]\nd = s[:]\n");
        for stmt in &m.body {
            match stmt {
                Stmt::Assign {
                    value: Expr::Slice { .. },
                    ..
                } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn dict_and_list_displays() {
        let m = parse_ok("d = {1: 'a', 'k': 2}\nl = [1, 2, 3]\nt = (1, 2)\ne = ()\n");
        assert_eq!(m.body.len(), 4);
        assert!(
            matches!(&m.body[0], Stmt::Assign { value: Expr::Dict { pairs, .. }, .. } if pairs.len() == 2)
        );
        assert!(
            matches!(&m.body[1], Stmt::Assign { value: Expr::List { items, .. }, .. } if items.len() == 3)
        );
        assert!(
            matches!(&m.body[2], Stmt::Assign { value: Expr::Tuple { items, .. }, .. } if items.len() == 2)
        );
        assert!(
            matches!(&m.body[3], Stmt::Assign { value: Expr::Tuple { items, .. }, .. } if items.is_empty())
        );
    }

    #[test]
    fn aug_assign_variants() {
        let m = parse_ok("x += 1\ny[0] -= 2\nz *= 3\nw //= 4\nv %= 5\nu /= 6\n");
        assert_eq!(m.body.len(), 6);
        assert!(matches!(
            &m.body[1],
            Stmt::AugAssign {
                target: Target::Index { .. },
                op: BinOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn tuple_assignment() {
        let m = parse_ok("a, b = b, a\n");
        match &m.body[0] {
            Stmt::Assign {
                target: Target::Tuple { elts, .. },
                value: Expr::Tuple { items, .. },
            } => {
                assert_eq!(elts.len(), 2);
                assert_eq!(items.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn membership_operators() {
        let m = parse_ok("a = k in d\nb = k not in d\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                value: Expr::Binary { op: BinOp::In, .. },
                ..
            }
        ));
        assert!(matches!(
            &m.body[1],
            Stmt::Assign {
                value: Expr::Binary {
                    op: BinOp::NotIn,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn ternary_expression() {
        let m = parse_ok("x = a if c else b\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                value: Expr::IfExp { .. },
                ..
            }
        ));
    }

    #[test]
    fn global_statement() {
        let m = parse_ok("def f():\n    global a, b\n    a = 1\n");
        match &m.body[0] {
            Stmt::Def { body, .. } => {
                assert!(matches!(&body[0], Stmt::Global { names, .. } if names.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn del_subscript() {
        let m = parse_ok("del d[k]\n");
        assert!(matches!(&m.body[0], Stmt::DelIndex { .. }));
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        assert!(parse("1 = x\n").is_err());
        assert!(parse("f() = 3\n").is_err());
    }

    #[test]
    fn while_with_break_continue() {
        let m = parse_ok("while True:\n    if x:\n        break\n    continue\n");
        match &m.body[0] {
            Stmt::While { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_in_vs_not() {
        let m = parse_ok("a = not x\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                value: Expr::Unary {
                    op: UnaryOp::Not,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn nested_function_calls() {
        let m = parse_ok("r = f(g(1), h(2, 3))\n");
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Call { args, .. },
                ..
            } => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiline_parenthesized_expression() {
        let m = parse_ok("x = (1 +\n     2 +\n     3)\n");
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn empty_block_rejected() {
        assert!(parse("if x:\npass\n").is_err());
    }
}
