//! Seeded open-addressing hash table — MiniPy's `dict`.
//!
//! This mirrors the two properties of CPython dicts that matter for the
//! benchmarking methodology:
//!
//! * **String hashes are randomized per invocation** (CPython's
//!   `PYTHONHASHSEED`). The seed lives on the [`Heap`]; with different seeds
//!   the same program does different amounts of probe work and iterates dicts
//!   in different orders — a genuine inter-invocation nondeterminism source.
//! * **Probe work is observable.** Every lookup/insert reports how many slots
//!   it touched through the `probes` out-counter, which the VM converts into
//!   virtual time.
//!
//! Probing uses CPython's `5*i + 1 + perturb` recurrence; deletion uses
//! tombstones; tables resize at 2/3 fill.

use crate::error::{MpError, MpResult};
use crate::heap::{Heap, Object};
use crate::value::Value;

const MIN_CAPACITY: usize = 8;
const PERTURB_SHIFT: u32 = 5;

#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Empty,
    Tombstone,
    Entry { hash: u64, key: Value, value: Value },
}

/// An insertion-point or hit returned by the probe loop.
enum Probe {
    /// Key present at this slot.
    Found(usize),
    /// Key absent; this is the slot to insert into (first tombstone if any,
    /// otherwise the terminating empty slot).
    Vacant(usize),
}

/// A probed insert destination from [`Dict::plan_insert`]: the key's hash,
/// the slot to write, and whether the key is already present there. Only
/// valid against the exact dict state it was planned on.
#[derive(Clone, Copy)]
pub struct InsertPlan {
    hash: u64,
    slot: usize,
    found: bool,
}

/// MiniPy's hash table.
#[derive(Debug, Clone, PartialEq)]
pub struct Dict {
    slots: Vec<Slot>,
    /// Live entries.
    used: usize,
    /// Live entries plus tombstones (controls resize).
    fill: usize,
    /// Bumped on every *structural* change — insertion into a vacant slot,
    /// removal, resize, clear. Overwriting the value of a present key is not
    /// structural: slot positions and probe paths are unchanged. The
    /// interpreter's inline caches key on this to replay a cached probe.
    version: u64,
}

impl Default for Dict {
    fn default() -> Self {
        Dict::new()
    }
}

/// Hashes a value for dict-key use.
///
/// Int hashes are deliberately **not** seeded (CPython randomizes only
/// str/bytes); string hashes mix in `heap`'s per-invocation seed.
///
/// # Errors
///
/// Returns a `TypeError` for unhashable values (lists, dicts, iterators).
pub fn hash_value(heap: &Heap, v: Value) -> MpResult<u64> {
    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer: good avalanche for sequential ints is NOT
        // desired for ints (Python keeps them near-identity), so this is only
        // used for floats and aggregate combination.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    match v {
        Value::None => Ok(0x6e6f_6e65_6861_7368),
        Value::Bool(b) => Ok(u64::from(b)),
        // Near-identity like CPython: equal small ints hash to themselves so
        // int-keyed dicts behave deterministically across invocations.
        Value::Int(i) => Ok(i as u64),
        Value::Float(f) => {
            if f.is_finite() && f == f.trunc() && f.abs() < 9.2e18 {
                // hash(2.0) == hash(2) in Python.
                Ok(f as i64 as u64)
            } else {
                Ok(mix(f.to_bits()))
            }
        }
        Value::Obj(h) => match heap.get(h) {
            // Memoized per heap slot: same hash_str result, computed once.
            Object::Str(s) => Ok(heap.memoized_str_hash(h, s)),
            Object::Tuple(items) => {
                // Python's tuple hash: combine element hashes order-sensitively.
                let mut acc: u64 = 0x3456_789a_bcde_f012;
                for item in items {
                    let hv = hash_value(heap, *item)?;
                    acc = mix(acc ^ hv).rotate_left(13);
                }
                Ok(acc)
            }
            other => Err(MpError::type_error(format!(
                "unhashable type: '{}'",
                match other {
                    Object::List(_) => "list",
                    Object::Dict(_) => "dict",
                    _ => "object",
                }
            ))),
        },
    }
}

/// Seeded FNV-1a over the string bytes: cheap stand-in for CPython's siphash,
/// with the same property that the seed perturbs every string hash.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // One extra mixing round so short strings spread across the table.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

impl Dict {
    /// Creates an empty dict.
    pub fn new() -> Self {
        Dict {
            slots: Vec::new(),
            used: 0,
            fill: 0,
            version: 0,
        }
    }

    /// The structural version counter (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Empties the dict in place, preserving version monotonicity — callers
    /// must use this rather than replacing the whole `Dict`, which would
    /// reset the version and could make a stale inline cache look valid.
    pub fn clear_in_place(&mut self) {
        self.slots = Vec::new();
        self.used = 0;
        self.fill = 0;
        self.version += 1;
    }

    /// Reads the entry at a raw slot index as `(key, value)`, if that slot
    /// holds one. Inline caches use this to re-read a slot they resolved
    /// earlier; validity is guarded by [`Dict::version`].
    pub fn slot_entry(&self, slot: usize) -> Option<(Value, Value)> {
        match self.slots.get(slot) {
            Some(Slot::Entry { key, value, .. }) => Some((*key, *value)),
            _ => None,
        }
    }

    /// Overwrites the value at a raw slot index; returns `false` if the slot
    /// no longer holds an entry. Not a structural change (matches `insert` on
    /// a present key), so the version is not bumped.
    pub fn slot_set_value(&mut self, slot: usize, value: Value) -> bool {
        match self.slots.get_mut(slot) {
            Some(Slot::Entry { value: v, .. }) => {
                *v = value;
                true
            }
            _ => false,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.used
    }

    /// True if the dict has no entries.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Current slot-table capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates live `(key, value)` entries in slot order.
    ///
    /// Slot order depends on hash values — and therefore on the per-invocation
    /// string-hash seed — which is exactly the Python behaviour the
    /// methodology needs to contend with.
    pub fn entries(&self) -> impl Iterator<Item = (Value, Value)> + '_ {
        self.slots.iter().filter_map(|s| match s {
            Slot::Entry { key, value, .. } => Some((*key, *value)),
            _ => None,
        })
    }

    /// Returns the first live entry at slot index >= `slot`, with its slot.
    /// Used by dict-key iterators to walk the table incrementally.
    pub fn next_entry_from(&self, slot: usize) -> Option<(usize, Value, Value)> {
        self.slots[slot.min(self.slots.len())..]
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Slot::Entry { key, value, .. } => Some((slot + i, *key, *value)),
                _ => None,
            })
    }

    fn probe(&self, heap: &Heap, hash: u64, key: Value, probes: &mut u64) -> Probe {
        debug_assert!(!self.slots.is_empty());
        let mask = (self.slots.len() - 1) as u64;
        let mut i = hash & mask;
        let mut perturb = hash;
        let mut first_tombstone: Option<usize> = None;
        loop {
            *probes += 1;
            match &self.slots[i as usize] {
                Slot::Empty => {
                    return Probe::Vacant(first_tombstone.unwrap_or(i as usize));
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i as usize);
                    }
                }
                Slot::Entry {
                    hash: h, key: k, ..
                } => {
                    if *h == hash && heap.value_eq(*k, key) {
                        return Probe::Found(i as usize);
                    }
                }
            }
            perturb >>= PERTURB_SHIFT;
            i = (i.wrapping_mul(5).wrapping_add(1).wrapping_add(perturb)) & mask;
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn try_get(&self, heap: &Heap, key: Value, probes: &mut u64) -> MpResult<Option<Value>> {
        Ok(self.try_get_slot(heap, key, probes)?.map(|(_, v)| v))
    }

    /// Like [`Dict::try_get`] but also reports the slot index of a hit, for
    /// the interpreter's inline caches.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn try_get_slot(
        &self,
        heap: &Heap,
        key: Value,
        probes: &mut u64,
    ) -> MpResult<Option<(usize, Value)>> {
        if self.slots.is_empty() {
            return Ok(None);
        }
        let hash = hash_value(heap, key)?;
        match self.probe(heap, hash, key, probes) {
            Probe::Found(i) => match &self.slots[i] {
                Slot::Entry { value, .. } => Ok(Some((i, *value))),
                _ => unreachable!("probe returned Found for non-entry"),
            },
            Probe::Vacant(_) => Ok(None),
        }
    }

    /// Infallible lookup for keys that are known hashable (e.g. keys taken
    /// out of another dict during equality checks).
    ///
    /// # Panics
    ///
    /// Panics if `key` is unhashable.
    pub fn get_with_eq(&self, heap: &Heap, key: Value, probes: &mut u64) -> Option<Value> {
        self.try_get(heap, key, probes)
            .expect("key known to be hashable")
    }

    /// True if `key` is present.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn contains(&self, heap: &Heap, key: Value, probes: &mut u64) -> MpResult<bool> {
        Ok(self.try_get(heap, key, probes)?.is_some())
    }

    /// Inserts `key → value`, returning any previous value.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn insert(
        &mut self,
        heap: &Heap,
        key: Value,
        value: Value,
        probes: &mut u64,
    ) -> MpResult<Option<Value>> {
        Ok(self.insert_slot(heap, key, value, probes)?.1)
    }

    /// Like [`Dict::insert`] but also reports the slot written, for the
    /// interpreter's store inline cache. The slot index is only meaningful
    /// when the previous value is `Some` (an overwrite cannot resize the
    /// table; a fresh insertion may, invalidating the index).
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn insert_slot(
        &mut self,
        heap: &Heap,
        key: Value,
        value: Value,
        probes: &mut u64,
    ) -> MpResult<(usize, Option<Value>)> {
        let hash = hash_value(heap, key)?;
        if self.slots.is_empty() {
            self.slots = vec![Slot::Empty; MIN_CAPACITY];
        }
        match self.probe(heap, hash, key, probes) {
            Probe::Found(i) => match &mut self.slots[i] {
                Slot::Entry { value: v, .. } => Ok((i, Some(std::mem::replace(v, value)))),
                _ => unreachable!("probe returned Found for non-entry"),
            },
            Probe::Vacant(i) => {
                let was_tombstone = matches!(self.slots[i], Slot::Tombstone);
                self.slots[i] = Slot::Entry { hash, key, value };
                self.used += 1;
                self.version += 1;
                if !was_tombstone {
                    self.fill += 1;
                }
                if self.fill * 3 >= self.slots.len() * 2 {
                    self.resize(probes);
                }
                Ok((i, None))
            }
        }
    }

    /// The read-only half of an insert: hashes the key and probes its
    /// destination slot without touching the table. The caller runs this
    /// under a *shared* heap borrow and then commits the write with
    /// [`Dict::commit_insert`] under a disjoint `&mut Dict` — avoiding the
    /// take/put of [`crate::heap::Heap::with_dict_mut`] on the hot store
    /// path. Returns `None` when the table is unallocated (first-ever
    /// insert); route that through [`Dict::insert_slot`] instead.
    ///
    /// Probe charging is identical to [`Dict::insert_slot`]: the probe runs
    /// exactly once, here.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn plan_insert(
        &self,
        heap: &Heap,
        key: Value,
        probes: &mut u64,
    ) -> MpResult<Option<InsertPlan>> {
        if self.slots.is_empty() {
            return Ok(None);
        }
        let hash = hash_value(heap, key)?;
        let (slot, found) = match self.probe(heap, hash, key, probes) {
            Probe::Found(i) => (i, true),
            Probe::Vacant(i) => (i, false),
        };
        Ok(Some(InsertPlan { hash, slot, found }))
    }

    /// The mutating half of [`Dict::plan_insert`]: writes the planned slot,
    /// with the same bookkeeping (and possible growth) as
    /// [`Dict::insert_slot`]. The dict must not have been modified between
    /// plan and commit.
    pub fn commit_insert(
        &mut self,
        plan: InsertPlan,
        key: Value,
        value: Value,
        probes: &mut u64,
    ) -> (usize, Option<Value>) {
        let InsertPlan { hash, slot, found } = plan;
        if found {
            match &mut self.slots[slot] {
                Slot::Entry { value: v, .. } => (slot, Some(std::mem::replace(v, value))),
                _ => unreachable!("planned overwrite of a non-entry slot"),
            }
        } else {
            let was_tombstone = matches!(self.slots[slot], Slot::Tombstone);
            self.slots[slot] = Slot::Entry { hash, key, value };
            self.used += 1;
            self.version += 1;
            if !was_tombstone {
                self.fill += 1;
            }
            if self.fill * 3 >= self.slots.len() * 2 {
                self.resize(probes);
            }
            (slot, None)
        }
    }

    /// The read-only half of a removal: probes for the key's slot. Commit a
    /// hit with [`Dict::commit_remove`]; a `None` means the key is absent
    /// (nothing to commit).
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn plan_remove(
        &self,
        heap: &Heap,
        key: Value,
        probes: &mut u64,
    ) -> MpResult<Option<usize>> {
        if self.slots.is_empty() {
            return Ok(None);
        }
        let hash = hash_value(heap, key)?;
        match self.probe(heap, hash, key, probes) {
            Probe::Found(i) => Ok(Some(i)),
            Probe::Vacant(_) => Ok(None),
        }
    }

    /// The mutating half of [`Dict::plan_remove`]: tombstones the planned
    /// slot and returns its value. The dict must not have been modified
    /// between plan and commit.
    pub fn commit_remove(&mut self, slot: usize) -> Value {
        let old = std::mem::replace(&mut self.slots[slot], Slot::Tombstone);
        self.used -= 1;
        self.version += 1;
        match old {
            Slot::Entry { value, .. } => value,
            _ => unreachable!("planned removal of a non-entry slot"),
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `key` is unhashable.
    pub fn remove(&mut self, heap: &Heap, key: Value, probes: &mut u64) -> MpResult<Option<Value>> {
        if self.slots.is_empty() {
            return Ok(None);
        }
        let hash = hash_value(heap, key)?;
        match self.probe(heap, hash, key, probes) {
            Probe::Found(i) => {
                let old = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
                self.used -= 1;
                self.version += 1;
                match old {
                    Slot::Entry { value, .. } => Ok(Some(value)),
                    _ => unreachable!("probe returned Found for non-entry"),
                }
            }
            Probe::Vacant(_) => Ok(None),
        }
    }

    fn resize(&mut self, probes: &mut u64) {
        let target = (self.used * 3).max(MIN_CAPACITY).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; target]);
        self.fill = self.used;
        self.version += 1;
        let mask = (target - 1) as u64;
        for slot in old {
            if let Slot::Entry { hash, key, value } = slot {
                // Re-insert without equality checks: all keys are distinct.
                let mut i = hash & mask;
                let mut perturb = hash;
                loop {
                    *probes += 1;
                    if matches!(self.slots[i as usize], Slot::Empty) {
                        self.slots[i as usize] = Slot::Entry { hash, key, value };
                        break;
                    }
                    perturb >>= PERTURB_SHIFT;
                    i = (i.wrapping_mul(5).wrapping_add(1).wrapping_add(perturb)) & mask;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_seed(seed: u64) -> Heap {
        Heap::with_seed(seed)
    }

    #[test]
    fn insert_get_roundtrip() {
        let heap = heap_with_seed(1);
        let mut d = Dict::new();
        let mut probes = 0;
        for i in 0..100 {
            d.insert(&heap, Value::Int(i), Value::Int(i * 10), &mut probes)
                .unwrap();
        }
        assert_eq!(d.len(), 100);
        for i in 0..100 {
            assert_eq!(
                d.try_get(&heap, Value::Int(i), &mut probes).unwrap(),
                Some(Value::Int(i * 10))
            );
        }
        assert_eq!(
            d.try_get(&heap, Value::Int(100), &mut probes).unwrap(),
            None
        );
    }

    #[test]
    fn overwrite_returns_old_value() {
        let heap = heap_with_seed(1);
        let mut d = Dict::new();
        let mut probes = 0;
        d.insert(&heap, Value::Int(1), Value::Int(10), &mut probes)
            .unwrap();
        let old = d
            .insert(&heap, Value::Int(1), Value::Int(20), &mut probes)
            .unwrap();
        assert_eq!(old, Some(Value::Int(10)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn remove_uses_tombstones_and_lookup_still_works() {
        let heap = heap_with_seed(7);
        let mut d = Dict::new();
        let mut probes = 0;
        for i in 0..50 {
            d.insert(&heap, Value::Int(i), Value::Int(i), &mut probes)
                .unwrap();
        }
        for i in (0..50).step_by(2) {
            assert_eq!(
                d.remove(&heap, Value::Int(i), &mut probes).unwrap(),
                Some(Value::Int(i))
            );
        }
        assert_eq!(d.len(), 25);
        for i in 0..50 {
            let expect = if i % 2 == 1 {
                Some(Value::Int(i))
            } else {
                None
            };
            assert_eq!(
                d.try_get(&heap, Value::Int(i), &mut probes).unwrap(),
                expect
            );
        }
    }

    #[test]
    fn string_keys_compare_by_content() {
        let mut heap = heap_with_seed(3);
        let k1 = heap.alloc_str("key");
        let k2 = heap.alloc_str("key");
        let mut d = Dict::new();
        let mut probes = 0;
        d.insert(&heap, Value::Obj(k1), Value::Int(1), &mut probes)
            .unwrap();
        assert_eq!(
            d.try_get(&heap, Value::Obj(k2), &mut probes).unwrap(),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn string_hash_depends_on_seed_int_hash_does_not() {
        assert_ne!(hash_str(1, "hello"), hash_str(2, "hello"));
        let h1 = heap_with_seed(1);
        let h2 = heap_with_seed(2);
        assert_eq!(
            hash_value(&h1, Value::Int(42)).unwrap(),
            hash_value(&h2, Value::Int(42)).unwrap()
        );
    }

    #[test]
    fn float_int_hash_consistency() {
        let heap = heap_with_seed(1);
        assert_eq!(
            hash_value(&heap, Value::Float(2.0)).unwrap(),
            hash_value(&heap, Value::Int(2)).unwrap()
        );
        assert_ne!(
            hash_value(&heap, Value::Float(2.5)).unwrap(),
            hash_value(&heap, Value::Int(2)).unwrap()
        );
    }

    #[test]
    fn unhashable_key_is_type_error() {
        let mut heap = heap_with_seed(1);
        let l = heap.alloc_list(vec![]);
        let mut d = Dict::new();
        let mut probes = 0;
        assert!(d
            .insert(&heap, Value::Obj(l), Value::Int(1), &mut probes)
            .is_err());
    }

    #[test]
    fn iteration_order_changes_with_seed_for_string_keys() {
        let keys = [
            "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
        ];
        let order_for = |seed: u64| -> Vec<String> {
            let mut heap = heap_with_seed(seed);
            let mut d = Dict::new();
            let mut probes = 0;
            for k in keys {
                let h = heap.alloc_str(k);
                d.insert(&heap, Value::Obj(h), Value::None, &mut probes)
                    .unwrap();
            }
            d.entries()
                .map(|(k, _)| {
                    match heap.get(match k {
                        Value::Obj(h) => h,
                        _ => unreachable!(),
                    }) {
                        Object::Str(s) => s.clone(),
                        _ => unreachable!(),
                    }
                })
                .collect()
        };
        // At least one pair of seeds among a handful must disagree on order.
        let base = order_for(1);
        let differs = (2..10).any(|s| order_for(s) != base);
        assert!(differs, "iteration order should depend on the hash seed");
    }

    #[test]
    fn probe_counter_accumulates() {
        let heap = heap_with_seed(1);
        let mut d = Dict::new();
        let mut probes = 0;
        d.insert(&heap, Value::Int(1), Value::Int(1), &mut probes)
            .unwrap();
        assert!(probes > 0);
        let before = probes;
        let mut p2 = 0;
        d.try_get(&heap, Value::Int(1), &mut p2).unwrap();
        assert!(p2 >= 1);
        assert_eq!(probes, before, "lookup must not mutate the insert counter");
    }

    #[test]
    fn tuple_keys_hash_structurally() {
        let mut heap = heap_with_seed(5);
        let t1 = heap.alloc_tuple(vec![Value::Int(1), Value::Int(2)]);
        let t2 = heap.alloc_tuple(vec![Value::Int(1), Value::Int(2)]);
        let t3 = heap.alloc_tuple(vec![Value::Int(2), Value::Int(1)]);
        let mut d = Dict::new();
        let mut probes = 0;
        d.insert(&heap, Value::Obj(t1), Value::Int(100), &mut probes)
            .unwrap();
        assert_eq!(
            d.try_get(&heap, Value::Obj(t2), &mut probes).unwrap(),
            Some(Value::Int(100))
        );
        assert_eq!(d.try_get(&heap, Value::Obj(t3), &mut probes).unwrap(), None);
    }

    #[test]
    fn growth_keeps_all_entries() {
        let heap = heap_with_seed(9);
        let mut d = Dict::new();
        let mut probes = 0;
        for i in 0..10_000 {
            d.insert(&heap, Value::Int(i), Value::Int(-i), &mut probes)
                .unwrap();
        }
        assert_eq!(d.len(), 10_000);
        assert!(d.capacity() >= 10_000);
        for i in (0..10_000).step_by(997) {
            assert_eq!(
                d.try_get(&heap, Value::Int(i), &mut probes).unwrap(),
                Some(Value::Int(-i))
            );
        }
    }

    #[test]
    fn next_entry_from_walks_all_entries() {
        let heap = heap_with_seed(2);
        let mut d = Dict::new();
        let mut probes = 0;
        for i in 0..20 {
            d.insert(&heap, Value::Int(i), Value::Int(i), &mut probes)
                .unwrap();
        }
        let mut slot = 0;
        let mut seen = 0;
        while let Some((s, _k, _v)) = d.next_entry_from(slot) {
            slot = s + 1;
            seen += 1;
        }
        assert_eq!(seen, 20);
    }
}
