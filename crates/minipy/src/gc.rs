//! Mark-sweep garbage collector.
//!
//! The collector is precise: the VM supplies every root (operand stacks,
//! frame locals, globals, interned constants). A collection walks the object
//! graph iteratively (no recursion, so deep structures cannot overflow the
//! Rust stack) and sweeps unmarked slots back onto the heap's free list.
//!
//! Collections are *costed*: [`GcOutcome`] reports live/freed counts and the
//! VM charges a pause on the virtual clock proportional to the work done —
//! reproducing the endogenous, autocorrelated timing perturbations that real
//! Python GCs inject into benchmark iterations.

use crate::heap::Heap;
use crate::value::{Handle, Value};

/// Result of one collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Objects surviving the cycle.
    pub live: u64,
    /// Objects reclaimed.
    pub freed: u64,
}

/// Runs a full mark-sweep cycle over `heap` with the given roots.
///
/// `root_values` yields every directly reachable [`Value`]; only heap handles
/// among them matter.
pub fn collect<I>(heap: &mut Heap, root_values: I) -> GcOutcome
where
    I: IntoIterator<Item = Value>,
{
    heap.clear_marks();
    let mut worklist: Vec<Handle> = Vec::with_capacity(256);
    for v in root_values {
        if let Value::Obj(h) = v {
            worklist.push(h);
        }
    }
    while let Some(h) = worklist.pop() {
        if heap.mark_one(h) {
            // Children push straight onto the worklist (no intermediate
            // buffer): `push_children` borrows the heap shared, the worklist
            // is independent storage.
            heap.push_children(h, &mut worklist);
        }
    }
    let (live, freed) = heap.sweep();
    GcOutcome { live, freed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Heap, IterState, Object};

    #[test]
    fn unreachable_objects_are_freed() {
        let mut heap = Heap::new();
        let kept = heap.alloc_str("kept");
        let _garbage = heap.alloc_str("garbage");
        let out = collect(&mut heap, vec![Value::Obj(kept)]);
        assert_eq!(out.live, 1);
        assert_eq!(out.freed, 1);
        assert!(matches!(heap.get(kept), Object::Str(s) if s == "kept"));
    }

    #[test]
    fn reachability_through_lists_and_tuples() {
        let mut heap = Heap::new();
        let inner = heap.alloc_str("inner");
        let tup = heap.alloc_tuple(vec![Value::Obj(inner)]);
        let list = heap.alloc_list(vec![Value::Obj(tup)]);
        let _garbage = heap.alloc_list(vec![Value::Int(1)]);
        let out = collect(&mut heap, vec![Value::Obj(list)]);
        assert_eq!(out.live, 3);
        assert_eq!(out.freed, 1);
    }

    #[test]
    fn reachability_through_dict_keys_and_values() {
        let mut heap = Heap::new();
        let key = heap.alloc_str("k");
        let val = heap.alloc_str("v");
        let d = heap.alloc_dict();
        let mut probes = 0;
        heap.with_dict_mut(d, |dict, heap| {
            dict.insert(heap, Value::Obj(key), Value::Obj(val), &mut probes)
                .unwrap();
        });
        let out = collect(&mut heap, vec![Value::Obj(d)]);
        assert_eq!(out.live, 3);
        assert_eq!(out.freed, 0);
    }

    #[test]
    fn reachability_through_iterators() {
        let mut heap = Heap::new();
        let list = heap.alloc_list(vec![Value::Int(1)]);
        let it = heap.alloc(Object::Iter(IterState::Seq {
            seq: list,
            index: 0,
        }));
        let out = collect(&mut heap, vec![Value::Obj(it)]);
        assert_eq!(out.live, 2);
    }

    #[test]
    fn cycles_are_collected() {
        let mut heap = Heap::new();
        let a = heap.alloc_list(vec![]);
        let b = heap.alloc_list(vec![Value::Obj(a)]);
        if let Object::List(items) = heap.get_mut(a) {
            items.push(Value::Obj(b));
        }
        // a <-> b cycle, unreachable from roots.
        let out = collect(&mut heap, std::iter::empty());
        assert_eq!(out.freed, 2);
        assert_eq!(out.live, 0);
    }

    #[test]
    fn deep_structures_do_not_overflow() {
        let mut heap = Heap::new();
        // A 100k-deep linked list of single-element Rust-side lists.
        let mut head = heap.alloc_list(vec![Value::None]);
        for _ in 0..100_000 {
            head = heap.alloc_list(vec![Value::Obj(head)]);
        }
        let out = collect(&mut heap, vec![Value::Obj(head)]);
        assert_eq!(out.live, 100_001);
    }

    #[test]
    fn threshold_resets_after_collection() {
        let mut heap = Heap::new();
        for _ in 0..crate::heap::DEFAULT_GC_THRESHOLD {
            heap.alloc_str("x");
        }
        assert!(heap.should_collect());
        collect(&mut heap, std::iter::empty());
        assert!(!heap.should_collect());
        assert_eq!(heap.allocs_since_gc(), 0);
    }
}
