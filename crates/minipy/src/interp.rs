//! The bytecode execution loop, shared by both engines.
//!
//! The interpreter engine executes every opcode at interpreter cost. The JIT
//! engine runs the *same* loop but consults [`crate::jit::JitState`]: opcodes
//! inside compiled regions are charged at JIT cost, arithmetic opcodes in
//! compiled regions check type guards, and loop back-edges drive profiling,
//! recording and compilation. Semantics are identical by construction — a
//! property the test suite and property tests verify extensively.

use std::sync::Arc;

use crate::bytecode::{Op, OpClass, FUSABLE_BINOPS};
use crate::error::{MpError, MpResult, RuntimeErrorKind};
use crate::frame::{op_class_index, Frame};
use crate::heap::Object;
use crate::jit::{BackedgeEvent, GuardOutcome};
use crate::value::{Handle, Value};
use crate::vm::{CallIc, CallTarget, DictIc, Vm};

/// Ops between housekeeping checks (GC/jitter/budget).
const HOUSEKEEPING_INTERVAL: u32 = 64;

impl Vm {
    /// Pushes onto the operand stack without a capacity check.
    ///
    /// SAFETY: the stack-depth dataflow in
    /// [`crate::bytecode::Program::validate`] proves every reachable pc's
    /// depth stays within its code's `max_stack`, and every frame entry
    /// reserves `max_stack` capacity above the frame's base before any push
    /// at that frame's depths can happen. Builtins only push after popping
    /// at least as much (`truncate` + one result), so they never exceed the
    /// depth the dataflow charged to their call op.
    #[inline(always)]
    fn push(&mut self, v: Value) {
        debug_assert!(self.stack.len() < self.stack.capacity());
        unsafe {
            let len = self.stack.len();
            std::ptr::write(self.stack.as_mut_ptr().add(len), v);
            self.stack.set_len(len + 1);
        }
    }

    /// Pops the operand stack without an emptiness check.
    ///
    /// SAFETY: the same validation dataflow proves no reachable op pops more
    /// values than its pc's depth provides (underflow is a load-time error),
    /// so every `pop` the dispatch loop issues has a value to take.
    #[inline(always)]
    fn pop(&mut self) -> Value {
        debug_assert!(!self.stack.is_empty());
        unsafe {
            let len = self.stack.len() - 1;
            self.stack.set_len(len);
            std::ptr::read(self.stack.as_ptr().add(len))
        }
    }

    /// Reads `depth` values below TOS; same safety argument as [`Vm::pop`]
    /// (every peek's depth is covered by its op's validated pop count).
    #[inline(always)]
    fn peek(&self, depth: usize) -> Value {
        debug_assert!(depth < self.stack.len());
        unsafe { *self.stack.get_unchecked(self.stack.len() - 1 - depth) }
    }

    /// Reads local slot `i` of the executing frame without bounds checks.
    ///
    /// SAFETY: the dispatch loop only executes programs that passed
    /// [`crate::bytecode::Program::validate`] at load, which proves every
    /// encoded local slot `< n_locals`, and every frame's locals vec is
    /// sized to exactly its code's `n_locals`. A frame always exists while
    /// dispatch runs (`Return` exits before popping past `min_frames`).
    #[inline(always)]
    fn local(&self, i: u16) -> Value {
        debug_assert!(self
            .frames
            .last()
            .is_some_and(|f| (i as usize) < f.locals.len()));
        unsafe {
            let f = self.frames.last().unwrap_unchecked();
            *f.locals.get_unchecked(i as usize)
        }
    }

    /// Writes local slot `i` of the executing frame; same safety argument as
    /// [`Vm::local`].
    #[inline(always)]
    fn set_local(&mut self, i: u16, v: Value) {
        debug_assert!(self
            .frames
            .last()
            .is_some_and(|f| (i as usize) < f.locals.len()));
        unsafe {
            let n = self.frames.len();
            let f = self.frames.get_unchecked_mut(n - 1);
            *f.locals.get_unchecked_mut(i as usize) = v;
        }
    }

    fn zero_division() -> MpError {
        MpError::runtime(RuntimeErrorKind::ZeroDivision, "division by zero")
    }

    fn overflow() -> MpError {
        MpError::runtime(RuntimeErrorKind::Overflow, "integer overflow")
    }

    /// Runs until the frame stack shrinks back to `min_frames`, returning the
    /// value produced by the frame that was on top when execution started.
    ///
    /// # Errors
    ///
    /// Any runtime error; the frame stack is unwound to `min_frames` first so
    /// the VM remains usable.
    pub(crate) fn execute_until(&mut self, min_frames: usize) -> MpResult<Value> {
        let result = self.execute_inner(min_frames);
        if result.is_err() {
            // Unwind so subsequent calls see a consistent VM.
            while self.frames.len() > min_frames {
                let f = self.frames.pop().expect("len checked");
                self.stack.truncate(f.stack_base);
            }
        }
        result
    }

    fn execute_inner(&mut self, min_frames: usize) -> MpResult<Value> {
        let result = self.dispatch(min_frames);
        // Per-op counter increments are batched in `pending_ops`; fold them
        // into the public counters at every exit so callers always observe
        // exact totals (housekeeping flushes mid-run for the step budget).
        self.flush_op_counters();
        result
    }

    fn dispatch(&mut self, min_frames: usize) -> MpResult<Value> {
        // Monomorphize the loop on the engine: the interpreter copy carries
        // no per-op JIT queries or type observation at all (`JIT = false`
        // constant-folds them away), instead of testing a runtime flag.
        if self.jit.is_some() {
            self.dispatch_impl::<true>(min_frames)
        } else {
            self.dispatch_impl::<false>(min_frames)
        }
    }

    fn dispatch_impl<const JIT: bool>(&mut self, min_frames: usize) -> MpResult<Value> {
        // Cached frame view: `code_id`/`pc` live in locals, and the current
        // code's op slice and per-code statics are borrowed once from cheap
        // Arc clones. The view is refreshed only at frame push/pop; the only
        // write-back of `pc` to the frame is the return address at `Call`
        // (nothing else — GC, housekeeping, unwinding — reads a live pc).
        let program = Arc::clone(&self.program);
        let statics = Arc::clone(&self.statics);
        let jit_enabled = JIT;

        let frame = self
            .frames
            .last()
            .expect("at least one frame while executing");
        let mut code_id = frame.code_id;
        let mut pc = frame.pc;
        let mut ops: &[Op] = &program.codes[code_id].ops;
        let mut cs = &statics[code_id];

        loop {
            self.ops_since_housekeeping += 1;
            if self.ops_since_housekeeping >= HOUSEKEEPING_INTERVAL {
                self.housekeeping()?;
            }

            // SAFETY: every reachable pc is in bounds for verified bytecode.
            // `Program::validate` (checked at load) proves all jump targets
            // `< n`, that the last op is `Return` (which never falls through),
            // and that fused ops carry their full `Nop` padding — so a fused
            // fall-through lands on or before the final `Return` too.
            // `class_idx` is built with one entry per op.
            let (op, class_idx) =
                unsafe { (*ops.get_unchecked(pc), *cs.class_idx.get_unchecked(pc)) };
            let compiled = jit_enabled && self.jit_compiled_at(code_id, pc);
            self.charge_batched(usize::from(class_idx), compiled);
            let op_pc = pc;
            pc += 1;

            match op {
                Op::Nop => {}
                Op::LoadConst(i) => {
                    // SAFETY: `Program::validate` proves every encoded const
                    // index `< consts.len()`.
                    let v = unsafe { *cs.consts.get_unchecked(i as usize) };
                    self.push(v);
                }
                Op::LoadLocal(i) => {
                    let v = self.local(i);
                    self.push(v);
                }
                Op::StoreLocal(i) => {
                    let v = self.pop();
                    self.set_local(i, v);
                }
                Op::LoadGlobal(i) => {
                    let slot = cs.name_slots[i as usize];
                    match self.globals[slot as usize] {
                        Some(v) => self.push(v),
                        None => {
                            let name = &program.codes[code_id].names[i as usize];
                            return Err(MpError::name_error(name));
                        }
                    }
                }
                Op::StoreGlobal(i) => {
                    let slot = cs.name_slots[i as usize];
                    let v = self.pop();
                    self.globals[slot as usize] = Some(v);
                }

                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::FloorDiv
                | Op::Mod
                | Op::Pow
                | Op::CmpEq
                | Op::CmpNe
                | Op::CmpLt
                | Op::CmpLe
                | Op::CmpGt
                | Op::CmpGe => {
                    if jit_enabled {
                        self.observe_types_binary(code_id, op_pc, compiled);
                    }
                    let b = self.pop();
                    let a = self.pop();
                    let r = match Self::binop_fast(op, a, b) {
                        Some(r) => r,
                        None => self.binary_op(op, a, b)?,
                    };
                    self.push(r);
                }
                Op::FusedLLBin { a, b, bin } => {
                    let va = self.local(a);
                    let vb = self.local(b);
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    self.push(r);
                    pc = op_pc + 3;
                }
                Op::FusedLCBin { a, c, bin } => {
                    let va = self.local(a);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let vb = unsafe { *cs.consts.get_unchecked(c as usize) };
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    self.push(r);
                    pc = op_pc + 3;
                }
                Op::FusedLLBinSt { a, b, d, bin } => {
                    let va = self.local(a);
                    let vb = self.local(b);
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    self.fused_store(code_id, op_pc, jit_enabled, r, d)?;
                    pc = op_pc + 4;
                }
                Op::FusedLCBinSt { a, c, d, bin } => {
                    let va = self.local(a);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let vb = unsafe { *cs.consts.get_unchecked(c as usize) };
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    self.fused_store(code_id, op_pc, jit_enabled, r, d)?;
                    pc = op_pc + 4;
                }
                Op::FusedLLCmpJf { a, b, t, bin } => {
                    let va = self.local(a);
                    let vb = self.local(b);
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    pc = self.fused_jump_if_false(code_id, op_pc, jit_enabled, r, t)?;
                }
                Op::FusedLCCmpJf { a, c, t, bin } => {
                    let va = self.local(a);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let vb = unsafe { *cs.consts.get_unchecked(c as usize) };
                    let r = self.fused_binop(code_id, op_pc, jit_enabled, va, vb, bin)?;
                    pc = self.fused_jump_if_false(code_id, op_pc, jit_enabled, r, t)?;
                }
                Op::FusedLLIdx { a, b } => {
                    let obj = self.local(a);
                    let idx = self.local(b);
                    let v = self.fused_index_load(code_id, op_pc, jit_enabled, obj, idx)?;
                    self.push(v);
                    pc = op_pc + 3;
                }
                Op::FusedLCIdx { a, c } => {
                    let obj = self.local(a);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let idx = unsafe { *cs.consts.get_unchecked(c as usize) };
                    let v = self.fused_index_load(code_id, op_pc, jit_enabled, obj, idx)?;
                    self.push(v);
                    pc = op_pc + 3;
                }
                Op::FusedLLLIdxSt { a, b, v } => {
                    let obj = self.local(a);
                    let idx = self.local(b);
                    let val = self.local(v);
                    self.fused_index_store(code_id, op_pc, jit_enabled, obj, idx, val)?;
                    pc = op_pc + 4;
                }
                Op::FusedLLCIdxSt { a, b, c } => {
                    let obj = self.local(a);
                    let idx = self.local(b);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let val = unsafe { *cs.consts.get_unchecked(c as usize) };
                    self.fused_index_store(code_id, op_pc, jit_enabled, obj, idx, val)?;
                    pc = op_pc + 4;
                }
                Op::FusedSIdx { b } => {
                    // The container is already on the operand stack and stays
                    // there (peeked, not popped) across the absorbed
                    // subscript's housekeeping boundary: it may be an
                    // unrooted fresh value (an outer subscript's result), and
                    // the stack slot is its only GC root — exactly as unfused
                    // execution would leave it rooted.
                    let idx = self.local(b);
                    let idx_pc = op_pc + 1;
                    self.fused_sub_op(code_id, idx_pc, jit_enabled, OpClass::Memory)?;
                    let obj = self.pop();
                    let v = match self.dict_ic_load(code_id, idx_pc, obj, idx) {
                        Some(v) => v,
                        None => self.index_load(code_id, idx_pc, obj, idx)?,
                    };
                    self.push(v);
                    pc = op_pc + 2;
                }
                Op::FusedSLIdxSt { b, v } => {
                    let idx = self.local(b);
                    let val = self.local(v);
                    self.fused_stack_index_store(code_id, op_pc, jit_enabled, idx, val)?;
                    pc = op_pc + 3;
                }
                Op::FusedSCIdxSt { b, c } => {
                    let idx = self.local(b);
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let val = unsafe { *cs.consts.get_unchecked(c as usize) };
                    self.fused_stack_index_store(code_id, op_pc, jit_enabled, idx, val)?;
                    pc = op_pc + 3;
                }
                Op::FusedForSt { t, d } => {
                    let it = self.peek(0);
                    match self.iterator_next(it)? {
                        Some(v) => {
                            // The produced value visits the operand stack
                            // across the absorbed store's housekeeping
                            // boundary, exactly as unfused `ForIter` would
                            // leave it there for `StoreLocal` to pop.
                            self.push(v);
                            self.fused_sub_op(code_id, op_pc + 1, jit_enabled, OpClass::Stack)?;
                            let v = self.pop();
                            self.set_local(d, v);
                            pc = op_pc + 2;
                        }
                        None => {
                            // Exhaustion jumps past the loop: only the
                            // `ForIter` half executes, so no sub-op replay.
                            self.pop();
                            pc = t as usize;
                        }
                    }
                }
                Op::CmpIn | Op::CmpNotIn => {
                    let container = self.pop();
                    let item = self.pop();
                    let found = self.contains(container, item)?;
                    let r = if matches!(op, Op::CmpIn) {
                        found
                    } else {
                        !found
                    };
                    self.push(Value::Bool(r));
                }
                Op::Neg => {
                    if jit_enabled {
                        self.observe_types_unary(code_id, op_pc, compiled);
                    }
                    let v = self.pop();
                    let r = match v {
                        Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(Self::overflow)?),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(b) => Value::Int(-i64::from(b)),
                        other => {
                            return Err(MpError::type_error(format!(
                                "bad operand type for unary -: '{}'",
                                self.heap.type_name(other)
                            )));
                        }
                    };
                    self.push(r);
                }
                Op::Not => {
                    let v = self.pop();
                    let r = !self.heap.truthy(v);
                    self.push(Value::Bool(r));
                }

                Op::Jump(t) => {
                    let target = t as usize;
                    if target < op_pc {
                        self.on_backedge(code_id, op_pc, target);
                    }
                    pc = target;
                }
                Op::PopJumpIfFalse(t) => {
                    let v = self.pop();
                    if !self.heap.truthy(v) {
                        pc = t as usize;
                    }
                }
                Op::PopJumpIfTrue(t) => {
                    let v = self.pop();
                    if self.heap.truthy(v) {
                        pc = t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let v = self.peek(0);
                    if !self.heap.truthy(v) {
                        pc = t as usize;
                    } else {
                        self.pop();
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let v = self.peek(0);
                    if self.heap.truthy(v) {
                        pc = t as usize;
                    } else {
                        self.pop();
                    }
                }

                Op::BuildList(n) => {
                    let n = n as usize;
                    let items = self.stack.split_off(self.stack.len() - n);
                    self.charge_aux(self.cost.per_element * n as f64, true);
                    let h = self.alloc(Object::List(items));
                    self.push(Value::Obj(h));
                }
                Op::BuildTuple(n) => {
                    let n = n as usize;
                    let items = self.stack.split_off(self.stack.len() - n);
                    self.charge_aux(self.cost.per_element * n as f64, true);
                    let h = self.alloc(Object::Tuple(items));
                    self.push(Value::Obj(h));
                }
                Op::BuildDict(n) => {
                    let n = n as usize;
                    let kvs = self.stack.split_off(self.stack.len() - 2 * n);
                    let h = self.alloc(Object::Dict(crate::dict::Dict::new()));
                    let mut probes = 0;
                    self.heap.with_dict_mut(h, |dict, heap| -> MpResult<()> {
                        for pair in kvs.chunks_exact(2) {
                            dict.insert(heap, pair[0], pair[1], &mut probes)?;
                        }
                        Ok(())
                    })?;
                    self.charge_probes(probes);
                    self.push(Value::Obj(h));
                }

                Op::IndexLoad => {
                    let idx = self.pop();
                    let obj = self.pop();
                    let v = match self.dict_ic_load(code_id, op_pc, obj, idx) {
                        Some(v) => v,
                        None => self.index_load(code_id, op_pc, obj, idx)?,
                    };
                    self.push(v);
                }
                Op::IndexStore => {
                    let val = self.pop();
                    let idx = self.pop();
                    let obj = self.pop();
                    if !self.dict_ic_store(code_id, op_pc, obj, idx, val) {
                        self.index_store(code_id, op_pc, obj, idx, val)?;
                    }
                }
                Op::IndexDel => {
                    let idx = self.pop();
                    let obj = self.pop();
                    self.index_del(obj, idx)?;
                }
                Op::SliceLoad => {
                    let hi = self.pop();
                    let lo = self.pop();
                    let obj = self.pop();
                    let v = self.slice_load(obj, lo, hi)?;
                    self.push(v);
                }
                Op::Dup2 => {
                    let a = self.peek(1);
                    let b = self.peek(0);
                    self.push(a);
                    self.push(b);
                }
                Op::ListAppend(n) => {
                    let v = self.pop();
                    let list = self.peek(n as usize - 1);
                    match list {
                        Value::Obj(h) => match self.heap.get_mut(h) {
                            Object::List(items) => items.push(v),
                            _ => {
                                return Err(MpError::runtime(
                                    RuntimeErrorKind::Internal,
                                    "ListAppend target is not a list",
                                ));
                            }
                        },
                        _ => {
                            return Err(MpError::runtime(
                                RuntimeErrorKind::Internal,
                                "ListAppend target is not a list",
                            ));
                        }
                    }
                }
                Op::Pop => {
                    self.pop();
                }

                Op::Call(argc) => {
                    self.counters.calls += 1;
                    let argc = argc as usize;
                    let callee = self.peek(argc);
                    match self.resolve_callee(code_id, op_pc, callee)? {
                        CallTarget::Function(target) => {
                            // Write the return address back before switching
                            // the cached view to the callee's frame.
                            self.frames.last_mut().expect("frame exists").pc = pc;
                            self.push_call_frame(target, argc)?;
                            self.on_function_entry(target);
                            code_id = target;
                            pc = 0;
                            ops = &program.codes[code_id].ops;
                            cs = &statics[code_id];
                        }
                        CallTarget::Builtin(b) => {
                            self.invoke_builtin(b, argc)?;
                        }
                    }
                }
                Op::CallMethod { name, argc } => {
                    self.counters.calls += 1;
                    match cs.method_ids[name as usize] {
                        Some(mid) => self.invoke_method(mid, argc as usize)?,
                        None => {
                            let receiver = self.peek(argc as usize);
                            let mname = &program.codes[code_id].names[name as usize];
                            return Err(MpError::type_error(format!(
                                "'{}' object has no method '{}'",
                                self.heap.type_name(receiver),
                                mname
                            )));
                        }
                    }
                }
                Op::Return => {
                    let result = self.pop();
                    let frame = self.frames.pop().expect("frame exists");
                    self.stack.truncate(frame.stack_base);
                    self.recycle_locals(frame.locals);
                    if self.frames.len() == min_frames {
                        return Ok(result);
                    }
                    self.push(result);
                    let caller = self.frames.last().expect("caller frame");
                    code_id = caller.code_id;
                    pc = caller.pc;
                    ops = &program.codes[code_id].ops;
                    cs = &statics[code_id];
                }

                Op::GetIter => {
                    let v = self.pop();
                    let it = self.make_iterator(v)?;
                    self.push(it);
                }
                Op::ForIter(t) => {
                    let it = self.peek(0);
                    match self.iterator_next(it)? {
                        Some(v) => self.push(v),
                        None => {
                            self.pop();
                            pc = t as usize;
                        }
                    }
                }
                Op::UnpackSequence(n) => {
                    let v = self.pop();
                    let items: Vec<Value> = match v {
                        Value::Obj(h) => match self.heap.get(h) {
                            Object::Tuple(items) | Object::List(items) => items.clone(),
                            _ => {
                                return Err(MpError::type_error(format!(
                                    "cannot unpack '{}'",
                                    self.heap.type_name(v)
                                )));
                            }
                        },
                        _ => {
                            return Err(MpError::type_error(format!(
                                "cannot unpack '{}'",
                                self.heap.type_name(v)
                            )));
                        }
                    };
                    if items.len() != n as usize {
                        return Err(MpError::runtime(
                            RuntimeErrorKind::Value,
                            format!("expected {} values to unpack, got {}", n, items.len()),
                        ));
                    }
                    for v in items.into_iter().rev() {
                        self.push(v);
                    }
                }
                Op::MakeFunction(i) => {
                    // SAFETY: validated const index (see `Op::LoadConst`).
                    let v = unsafe { *cs.consts.get_unchecked(i as usize) };
                    self.push(v);
                }
            }
        }
    }

    /// Replays one absorbed sub-op of a superinstruction exactly as unfused
    /// execution would at its original pc: housekeeping bump/check, per-pc
    /// JIT query, per-class charge. Returns the compiled flag for the pc.
    #[inline]
    fn fused_sub_op(
        &mut self,
        code_id: usize,
        pc: usize,
        jit_enabled: bool,
        class: OpClass,
    ) -> MpResult<bool> {
        self.ops_since_housekeeping += 1;
        if self.ops_since_housekeeping >= HOUSEKEEPING_INTERVAL {
            self.housekeeping()?;
        }
        let compiled = jit_enabled && self.jit_compiled_at(code_id, pc);
        self.charge_batched(op_class_index(class), compiled);
        Ok(compiled)
    }

    /// Executes the common body of every fused superinstruction: the second
    /// absorbed load (at `op_pc + 1`) and the binary op (at `op_pc + 2`),
    /// returning the result instead of pushing it.
    ///
    /// Virtual time, counters and GC timing are bit-identical to unfused
    /// execution: each sub-op replays its housekeeping/charge sequence, and
    /// the operand values never leave their roots (frame locals / pinned
    /// consts), so a GC at a sub-op boundary sees the same reachable set as
    /// the unfused stack would give it.
    #[inline]
    fn fused_binop(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        va: Value,
        vb: Value,
        bin: u8,
    ) -> MpResult<Value> {
        self.fused_sub_op(code_id, op_pc + 1, jit_enabled, OpClass::Stack)?;
        let bin_pc = op_pc + 2;
        let c3 = self.fused_sub_op(code_id, bin_pc, jit_enabled, OpClass::Arith)?;
        if jit_enabled {
            self.observe_types_values(va, vb, code_id, bin_pc, c3);
        }
        let op = FUSABLE_BINOPS[bin as usize];
        match Self::binop_fast(op, va, vb) {
            Some(r) => Ok(r),
            None => self.binary_op(op, va, vb),
        }
    }

    /// The absorbed `StoreLocal` tail of a four-op superinstruction
    /// (at `op_pc + 3`). The result visits the operand stack across the
    /// sub-op's housekeeping boundary so a GC there roots it exactly as the
    /// unfused sequence would (the binop pushed it at `op_pc + 2`).
    #[inline]
    fn fused_store(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        r: Value,
        d: u16,
    ) -> MpResult<()> {
        self.push(r);
        self.fused_sub_op(code_id, op_pc + 3, jit_enabled, OpClass::Stack)?;
        let v = self.pop();
        self.set_local(d, v);
        Ok(())
    }

    /// The absorbed `PopJumpIfFalse` tail of a four-op superinstruction
    /// (at `op_pc + 3`); returns the next pc. Same stack-rooting contract as
    /// [`Vm::fused_store`].
    #[inline]
    fn fused_jump_if_false(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        r: Value,
        t: u16,
    ) -> MpResult<usize> {
        self.push(r);
        self.fused_sub_op(code_id, op_pc + 3, jit_enabled, OpClass::Branch)?;
        let v = self.pop();
        Ok(if self.heap.truthy(v) {
            op_pc + 4
        } else {
            t as usize
        })
    }

    /// The absorbed `IndexLoad` tail of a subscript superinstruction: replays
    /// the second load (at `op_pc + 1`) and the subscript (at `op_pc + 2`,
    /// with its inline cache keyed on that original pc).
    #[inline]
    fn fused_index_load(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        obj: Value,
        idx: Value,
    ) -> MpResult<Value> {
        self.fused_sub_op(code_id, op_pc + 1, jit_enabled, OpClass::Stack)?;
        let idx_pc = op_pc + 2;
        self.fused_sub_op(code_id, idx_pc, jit_enabled, OpClass::Memory)?;
        match self.dict_ic_load(code_id, idx_pc, obj, idx) {
            Some(v) => Ok(v),
            None => self.index_load(code_id, idx_pc, obj, idx),
        }
    }

    /// The absorbed tail of a subscript-assignment superinstruction: replays
    /// the second and third loads (`op_pc + 1`, `op_pc + 2`) and the
    /// `IndexStore` (at `op_pc + 3`, with its inline cache keyed on that
    /// original pc). All three operands stay rooted in frame locals / pinned
    /// consts across every sub-op boundary, exactly as the unfused stack
    /// would root them.
    #[inline]
    fn fused_index_store(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        obj: Value,
        idx: Value,
        val: Value,
    ) -> MpResult<()> {
        self.fused_sub_op(code_id, op_pc + 1, jit_enabled, OpClass::Stack)?;
        self.fused_sub_op(code_id, op_pc + 2, jit_enabled, OpClass::Stack)?;
        let st_pc = op_pc + 3;
        self.fused_sub_op(code_id, st_pc, jit_enabled, OpClass::Memory)?;
        if !self.dict_ic_store(code_id, st_pc, obj, idx, val) {
            self.index_store(code_id, st_pc, obj, idx, val)?;
        }
        Ok(())
    }

    /// The absorbed tail of a container-on-stack subscript assignment
    /// (`C[i][j] = s`): replays the value load (`op_pc + 1`) and the
    /// `IndexStore` (`op_pc + 2`, inline cache keyed on that pc). The
    /// container is popped only after every sub-op has replayed — it may be
    /// an unrooted fresh value whose only GC root is its stack slot.
    #[inline]
    fn fused_stack_index_store(
        &mut self,
        code_id: usize,
        op_pc: usize,
        jit_enabled: bool,
        idx: Value,
        val: Value,
    ) -> MpResult<()> {
        self.fused_sub_op(code_id, op_pc + 1, jit_enabled, OpClass::Stack)?;
        let st_pc = op_pc + 2;
        self.fused_sub_op(code_id, st_pc, jit_enabled, OpClass::Memory)?;
        let obj = self.pop();
        if !self.dict_ic_store(code_id, st_pc, obj, idx, val) {
            self.index_store(code_id, st_pc, obj, idx, val)?;
        }
        Ok(())
    }

    /// Resolves a `Call` callee through the per-site call inline cache.
    ///
    /// The cache is keyed on the callee handle and guarded by the heap
    /// generation (bumped at every sweep), so a recycled handle can never
    /// produce a stale target.
    fn resolve_callee(&mut self, code_id: usize, pc: usize, callee: Value) -> MpResult<CallTarget> {
        let Value::Obj(h) = callee else {
            return Err(MpError::type_error(format!(
                "'{}' object is not callable",
                self.heap.type_name(callee)
            )));
        };
        if let Some(ic) = self.ics.call[code_id][pc] {
            if ic.callee == h && ic.generation == self.heap.generation() {
                return Ok(ic.target);
            }
        }
        let target = match *self.heap.get(h) {
            Object::Function { code_id: target } => CallTarget::Function(target),
            Object::Builtin(b) => CallTarget::Builtin(b),
            _ => {
                return Err(MpError::type_error(format!(
                    "'{}' object is not callable",
                    self.heap.type_name(callee)
                )));
            }
        };
        self.ics.call[code_id][pc] = Some(CallIc {
            callee: h,
            generation: self.heap.generation(),
            target,
        });
        Ok(target)
    }

    /// Attempts a dict inline-cache hit for an `IndexLoad` site.
    ///
    /// A hit replays the cached probe count exactly: the guard (same handle,
    /// same heap generation, same dict version, equal key) implies an
    /// unchanged table layout, so a full lookup would walk the identical
    /// probe sequence. Virtual time and probe counters match the slow path
    /// bit for bit.
    fn dict_ic_load(&mut self, code_id: usize, pc: usize, obj: Value, idx: Value) -> Option<Value> {
        let Value::Obj(h) = obj else { return None };
        let ic = self.ics.dict[code_id][pc]?;
        if ic.dict != h || ic.generation != self.heap.generation() || ic.key != idx {
            return None;
        }
        let value = match self.heap.get(h) {
            Object::Dict(d) if d.version() == ic.version => {
                let (_, value) = d.slot_entry(ic.slot as usize)?;
                value
            }
            _ => return None,
        };
        self.charge_probes(ic.probes);
        Some(value)
    }

    /// Attempts a dict inline-cache hit for an `IndexStore` overwrite.
    ///
    /// Only value overwrites of the cached slot qualify (they are the only
    /// store that leaves the table layout — and thus the dict version —
    /// unchanged). Returns `false` to route anything else to the slow path.
    fn dict_ic_store(
        &mut self,
        code_id: usize,
        pc: usize,
        obj: Value,
        idx: Value,
        val: Value,
    ) -> bool {
        let Value::Obj(h) = obj else { return false };
        let Some(ic) = self.ics.dict[code_id][pc] else {
            return false;
        };
        if ic.dict != h || ic.generation != self.heap.generation() || ic.key != idx {
            return false;
        }
        let ok = match self.heap.get_mut(h) {
            Object::Dict(d) if d.version() == ic.version => d.slot_set_value(ic.slot as usize, val),
            _ => false,
        };
        if ok {
            self.charge_probes(ic.probes);
        }
        ok
    }

    /// Installs a dict inline-cache entry after a slow-path hit.
    fn cache_dict_slot(
        &mut self,
        code_id: usize,
        pc: usize,
        h: Handle,
        key: Value,
        slot: usize,
        probes: u64,
    ) {
        let version = match self.heap.get(h) {
            Object::Dict(d) => d.version(),
            _ => return,
        };
        self.ics.dict[code_id][pc] = Some(DictIc {
            dict: h,
            generation: self.heap.generation(),
            version,
            key,
            slot: slot as u32,
            probes,
        });
    }

    fn push_call_frame(&mut self, target: usize, argc: usize) -> MpResult<()> {
        if self.frames.len() >= self.recursion_limit {
            return Err(MpError::runtime(
                RuntimeErrorKind::RecursionLimit,
                "maximum recursion depth exceeded",
            ));
        }
        let code = &self.program.codes[target];
        if argc != code.n_params as usize {
            return Err(MpError::type_error(format!(
                "{}() takes {} arguments but {} were given",
                code.name, code.n_params, argc
            )));
        }
        let n_locals = code.n_locals as usize;
        let args_start = self.stack.len() - argc;
        let mut locals = self.take_locals(n_locals);
        locals[..argc].copy_from_slice(&self.stack[args_start..]);
        self.stack.truncate(args_start - 1); // also removes the callee
                                             // Guarantee capacity for the callee's whole (validated) stack depth
                                             // up front, so `push` needs no capacity check. `reserve` is a no-op
                                             // branch once the stack has grown to the program's working depth.
        self.stack.reserve(self.statics[target].max_stack as usize);
        self.frames.push(Frame {
            code_id: target,
            pc: 0,
            locals,
            stack_base: self.stack.len(),
        });
        Ok(())
    }

    /// Pops a locals buffer from the frame pool (or allocates one), sized and
    /// zeroed to `n` slots.
    fn take_locals(&mut self, n: usize) -> Vec<Value> {
        match self.locals_pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(n, Value::None);
                buf
            }
            None => vec![Value::None; n],
        }
    }

    /// Returns a frame's locals buffer to the pool for reuse.
    fn recycle_locals(&mut self, mut locals: Vec<Value>) {
        const POOL_CAP: usize = 64;
        if self.locals_pool.len() < POOL_CAP && locals.capacity() > 0 {
            locals.clear();
            self.locals_pool.push(locals);
        }
    }

    /// JIT hook for a function entry (method-at-a-time compilation).
    fn on_function_entry(&mut self, code_id: usize) {
        let Some(jit) = &mut self.jit else { return };
        let profile_cost = self.cost.profile_backedge;
        match jit.on_function_entry(code_id) {
            Some(ops) => {
                let cost = self.cost.compile_cost(ops);
                self.charge_aux(cost, false);
                self.counters.jit_compiles += 1;
                self.counters.jit_compile_ns += cost;
            }
            None => self.charge_aux(profile_cost, false),
        }
    }

    /// JIT hooks for a loop back-edge.
    fn on_backedge(&mut self, code_id: usize, from_pc: usize, target: usize) {
        self.counters.backedges += 1;
        let Some(jit) = &mut self.jit else { return };
        let profile_cost = self.cost.profile_backedge;
        let event = jit.on_backedge(code_id, from_pc, target);
        match event {
            BackedgeEvent::Cold | BackedgeEvent::StartRecording => {
                self.charge_aux(profile_cost, false);
            }
            BackedgeEvent::Compiled { ops } => {
                let cost = self.cost.compile_cost(ops);
                self.charge_aux(cost, false);
                self.counters.jit_compiles += 1;
                self.counters.jit_compile_ns += cost;
            }
        }
    }

    /// Records (while tracing) or checks (while compiled) operand types for a
    /// binary arithmetic/comparison opcode.
    fn observe_types_binary(&mut self, code_id: usize, pc: usize, compiled: bool) {
        if self.jit.is_none() {
            return;
        }
        let a = self.peek(1);
        let b = self.peek(0);
        let mask = self.heap.type_tag(a).bit() | self.heap.type_tag(b).bit();
        self.observe_mask(code_id, pc, mask, compiled);
    }

    fn observe_types_unary(&mut self, code_id: usize, pc: usize, compiled: bool) {
        if self.jit.is_none() {
            return;
        }
        let v = self.peek(0);
        let mask = self.heap.type_tag(v).bit();
        self.observe_mask(code_id, pc, mask, compiled);
    }

    /// Same mask computation as [`Vm::observe_types_binary`], but from operand
    /// values directly — fused handlers never push the intermediates, so
    /// there is nothing on the stack to peek at.
    fn observe_types_values(
        &mut self,
        a: Value,
        b: Value,
        code_id: usize,
        pc: usize,
        compiled: bool,
    ) {
        if self.jit.is_none() {
            return;
        }
        let mask = self.heap.type_tag(a).bit() | self.heap.type_tag(b).bit();
        self.observe_mask(code_id, pc, mask, compiled);
    }

    fn observe_mask(&mut self, code_id: usize, pc: usize, mask: u16, compiled: bool) {
        let deopt_penalty = self.cost.deopt_penalty;
        let jit = self.jit.as_mut().expect("caller checked");
        if compiled {
            match jit.check_guard(code_id, pc, mask) {
                GuardOutcome::Pass => {}
                GuardOutcome::Deopt => {
                    self.counters.deopts += 1;
                    self.charge_aux(deopt_penalty, false);
                }
                GuardOutcome::Blacklisted => {
                    self.counters.deopts += 1;
                    self.counters.blacklisted += 1;
                    self.charge_aux(deopt_penalty * 2.0, false);
                }
            }
        } else if jit.is_recording(code_id, pc) {
            jit.record_types(code_id, pc, mask);
        }
    }

    // ---- operators ----

    /// Inline fast path for the all-int / all-float cases of
    /// [`Vm::binary_op`]. Returns `None` for anything it cannot decide with
    /// identical semantics (mixed or heap operands, int overflow, NaN
    /// ordering), which falls through to the full implementation. The numeric
    /// paths of `binary_op` charge nothing beyond the opcode itself, so the
    /// shortcut is invisible to virtual time.
    #[inline(always)]
    fn binop_fast(op: Op, a: Value, b: Value) -> Option<Value> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Op::Add => x.checked_add(y).map(Value::Int),
                Op::Sub => x.checked_sub(y).map(Value::Int),
                Op::Mul => x.checked_mul(y).map(Value::Int),
                Op::CmpEq => Some(Value::Bool(x == y)),
                Op::CmpNe => Some(Value::Bool(x != y)),
                // Ordered compares coerce through f64, exactly like
                // `Heap::value_cmp` does for numbers.
                Op::CmpLt => Some(Value::Bool((x as f64) < (y as f64))),
                Op::CmpLe => Some(Value::Bool((x as f64) <= (y as f64))),
                Op::CmpGt => Some(Value::Bool((x as f64) > (y as f64))),
                Op::CmpGe => Some(Value::Bool((x as f64) >= (y as f64))),
                _ => None,
            },
            (Value::Float(x), Value::Float(y)) => match op {
                Op::Add => Some(Value::Float(x + y)),
                Op::Sub => Some(Value::Float(x - y)),
                Op::Mul => Some(Value::Float(x * y)),
                Op::CmpEq => Some(Value::Bool(x == y)),
                Op::CmpNe => Some(Value::Bool(x != y)),
                Op::CmpLt | Op::CmpLe | Op::CmpGt | Op::CmpGe => {
                    // NaN has no ordering: fall through so the full path can
                    // raise the same error unfused execution would.
                    let ord = x.partial_cmp(&y)?;
                    Some(Value::Bool(match op {
                        Op::CmpLt => ord.is_lt(),
                        Op::CmpLe => ord.is_le(),
                        Op::CmpGt => ord.is_gt(),
                        _ => ord.is_ge(),
                    }))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn binary_op(&mut self, op: Op, a: Value, b: Value) -> MpResult<Value> {
        match op {
            Op::Add => self.op_add(a, b),
            Op::Sub => self.numeric_op(a, b, "-", i64::checked_sub, |x, y| x - y),
            Op::Mul => self.op_mul(a, b),
            Op::Div => self.op_div(a, b),
            Op::FloorDiv => self.op_floordiv(a, b),
            Op::Mod => self.op_mod(a, b),
            Op::Pow => self.op_pow(a, b),
            Op::CmpEq => Ok(Value::Bool(self.heap.value_eq(a, b))),
            Op::CmpNe => Ok(Value::Bool(!self.heap.value_eq(a, b))),
            Op::CmpLt | Op::CmpLe | Op::CmpGt | Op::CmpGe => {
                let ord = self.heap.value_cmp(a, b).ok_or_else(|| {
                    MpError::type_error(format!(
                        "'<' not supported between '{}' and '{}'",
                        self.heap.type_name(a),
                        self.heap.type_name(b)
                    ))
                })?;
                let r = match op {
                    Op::CmpLt => ord.is_lt(),
                    Op::CmpLe => ord.is_le(),
                    Op::CmpGt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                Ok(Value::Bool(r))
            }
            _ => unreachable!("binary_op called with non-binary opcode"),
        }
    }

    fn type_error_binop(&self, sym: &str, a: Value, b: Value) -> MpError {
        MpError::type_error(format!(
            "unsupported operand type(s) for {sym}: '{}' and '{}'",
            self.heap.type_name(a),
            self.heap.type_name(b)
        ))
    }

    /// Integer/float arithmetic with Python coercions; used for `-`.
    fn numeric_op(
        &mut self,
        a: Value,
        b: Value,
        sym: &str,
        int_op: fn(i64, i64) -> Option<i64>,
        float_op: fn(f64, f64) -> f64,
    ) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => int_op(x, y).map(Value::Int).ok_or_else(Self::overflow),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(float_op(x, y))),
                _ => Err(self.type_error_binop(sym, a, b)),
            },
        }
    }

    fn op_add(&mut self, a: Value, b: Value) -> MpResult<Value> {
        if a.is_number() && b.is_number() {
            return self.numeric_op(a, b, "+", i64::checked_add, |x, y| x + y);
        }
        if let (Value::Obj(ha), Value::Obj(hb)) = (a, b) {
            match (self.heap.get(ha), self.heap.get(hb)) {
                (Object::Str(s1), Object::Str(s2)) => {
                    let mut out = String::with_capacity(s1.len() + s2.len());
                    out.push_str(s1);
                    out.push_str(s2);
                    self.charge_aux(1.2 * out.len() as f64, true);
                    let h = self.alloc(Object::Str(out));
                    return Ok(Value::Obj(h));
                }
                (Object::List(v1), Object::List(v2)) => {
                    let mut out = Vec::with_capacity(v1.len() + v2.len());
                    out.extend_from_slice(v1);
                    out.extend_from_slice(v2);
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let h = self.alloc(Object::List(out));
                    return Ok(Value::Obj(h));
                }
                (Object::Tuple(v1), Object::Tuple(v2)) => {
                    let mut out = Vec::with_capacity(v1.len() + v2.len());
                    out.extend_from_slice(v1);
                    out.extend_from_slice(v2);
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let h = self.alloc(Object::Tuple(out));
                    return Ok(Value::Obj(h));
                }
                _ => {}
            }
        }
        Err(self.type_error_binop("+", a, b))
    }

    fn op_mul(&mut self, a: Value, b: Value) -> MpResult<Value> {
        if a.is_number() && b.is_number() {
            return self.numeric_op(a, b, "*", i64::checked_mul, |x, y| x * y);
        }
        // str * int, list * int (either operand order, like Python).
        let (obj, count) = match (a, b) {
            (Value::Obj(h), n) if n.as_int().is_some() => (h, n.as_int().expect("checked")),
            (n, Value::Obj(h)) if n.as_int().is_some() => (h, n.as_int().expect("checked")),
            _ => return Err(self.type_error_binop("*", a, b)),
        };
        let count = count.max(0) as usize;
        match self.heap.get(obj) {
            Object::Str(s) => {
                if s.len().saturating_mul(count) > 100_000_000 {
                    return Err(Self::overflow());
                }
                let out = s.repeat(count);
                self.charge_aux(1.2 * out.len() as f64, true);
                let h = self.alloc(Object::Str(out));
                Ok(Value::Obj(h))
            }
            Object::List(items) => {
                let mut out = Vec::with_capacity(items.len() * count);
                for _ in 0..count {
                    out.extend_from_slice(items);
                }
                self.charge_aux(self.cost.per_element * out.len() as f64, true);
                let h = self.alloc(Object::List(out));
                Ok(Value::Obj(h))
            }
            _ => Err(self.type_error_binop("*", a, b)),
        }
    }

    fn op_div(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                if y == 0.0 {
                    Err(Self::zero_division())
                } else {
                    Ok(Value::Float(x / y))
                }
            }
            _ => Err(self.type_error_binop("/", a, b)),
        }
    }

    fn op_floordiv(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => {
                if y == 0 {
                    return Err(Self::zero_division());
                }
                // Python floor division: round toward negative infinity.
                let mut q = x.wrapping_div(y);
                if (x % y != 0) && ((x < 0) != (y < 0)) {
                    q -= 1;
                }
                Ok(Value::Int(q))
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    if y == 0.0 {
                        Err(Self::zero_division())
                    } else {
                        Ok(Value::Float((x / y).floor()))
                    }
                }
                _ => Err(self.type_error_binop("//", a, b)),
            },
        }
    }

    fn op_mod(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => {
                if y == 0 {
                    return Err(Self::zero_division());
                }
                // Python modulo: result has the sign of the divisor.
                let mut r = x % y;
                if r != 0 && ((r < 0) != (y < 0)) {
                    r += y;
                }
                Ok(Value::Int(r))
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    if y == 0.0 {
                        return Err(Self::zero_division());
                    }
                    let mut r = x % y;
                    if r != 0.0 && ((r < 0.0) != (y < 0.0)) {
                        r += y;
                    }
                    Ok(Value::Float(r))
                }
                _ => Err(self.type_error_binop("%", a, b)),
            },
        }
    }

    fn op_pow(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) if y >= 0 => {
                let e = u32::try_from(y).map_err(|_| Self::overflow())?;
                x.checked_pow(e).map(Value::Int).ok_or_else(Self::overflow)
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(x.powf(y))),
                _ => Err(self.type_error_binop("**", a, b)),
            },
        }
    }

    fn contains(&mut self, container: Value, item: Value) -> MpResult<bool> {
        match container {
            Value::Obj(h) => match self.heap.get(h) {
                Object::Dict(d) => {
                    // Shared-access membership probe; same probe sequence as
                    // the `with_dict_mut` form without the two object moves.
                    let mut probes = 0;
                    let found = d.contains(&self.heap, item, &mut probes)?;
                    self.charge_probes(probes);
                    Ok(found)
                }
                Object::List(items) | Object::Tuple(items) => {
                    // Scan under shared borrows (`value_eq` is `&self`), then
                    // charge once the borrow is released — the charge value
                    // and order match the per-element accounting exactly.
                    let mut scanned = 0usize;
                    let mut found = false;
                    for &x in items {
                        scanned += 1;
                        if self.heap.value_eq(x, item) {
                            found = true;
                            break;
                        }
                    }
                    self.charge_aux(self.cost.per_element * scanned as f64, true);
                    Ok(found)
                }
                Object::Str(s) => {
                    let hay_len = s.len();
                    let found = match item {
                        Value::Obj(ih) => match self.heap.get(ih) {
                            Object::Str(needle) => Some(s.contains(needle.as_str())),
                            _ => None,
                        },
                        _ => None,
                    };
                    match found {
                        Some(found) => {
                            self.charge_aux(0.5 * hay_len as f64, true);
                            Ok(found)
                        }
                        None => Err(MpError::type_error("'in <string>' requires string operand")),
                    }
                }
                Object::Range { start, stop, step } => {
                    let (start, stop, step) = (*start, *stop, *step);
                    match item.as_int() {
                        Some(i) => {
                            let inside = if step > 0 {
                                i >= start && i < stop && (i - start) % step == 0
                            } else {
                                i <= start && i > stop && (start - i) % (-step) == 0
                            };
                            Ok(inside)
                        }
                        None => Ok(false),
                    }
                }
                _ => Err(MpError::type_error(format!(
                    "argument of type '{}' is not a container",
                    self.heap.type_name(container)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "argument of type '{}' is not a container",
                self.heap.type_name(container)
            ))),
        }
    }

    fn seq_index(len: usize, idx: Value, what: &str) -> MpResult<usize> {
        let i = idx
            .as_int()
            .ok_or_else(|| MpError::type_error(format!("{what} indices must be integers")))?;
        let n = len as i64;
        let i = if i < 0 { i + n } else { i };
        if i < 0 || i >= n {
            return Err(MpError::runtime(
                RuntimeErrorKind::Index,
                format!("{what} index out of range"),
            ));
        }
        Ok(i as usize)
    }

    fn index_load(&mut self, code_id: usize, pc: usize, obj: Value, idx: Value) -> MpResult<Value> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    Ok(items[i])
                }
                Object::Tuple(items) => {
                    let i = Self::seq_index(items.len(), idx, "tuple")?;
                    Ok(items[i])
                }
                Object::Str(s) => {
                    // Char-indexed without materializing a Vec<char>; the
                    // second pass is cheaper than the allocation it replaces.
                    let i = Self::seq_index(s.chars().count(), idx, "string")?;
                    let ch = s.chars().nth(i).expect("index checked").to_string();
                    let sh = self.alloc(Object::Str(ch));
                    Ok(Value::Obj(sh))
                }
                Object::Dict(d) => {
                    // Read in place: lookups only need shared access, so the
                    // move-out/move-back dance of `with_dict_mut` (two object
                    // copies per probe sequence) is pure overhead here. Keys
                    // can never reach this dict (unhashable containers are
                    // rejected at insert), so probing is oblivious to whether
                    // the dict sits in the heap.
                    let mut probes = 0;
                    let found = d.try_get_slot(&self.heap, idx, &mut probes)?;
                    self.charge_probes(probes);
                    match found {
                        Some((slot, value)) => {
                            self.cache_dict_slot(code_id, pc, h, idx, slot, probes);
                            Ok(value)
                        }
                        None => Err(MpError::runtime(
                            RuntimeErrorKind::Key,
                            format!("key not found: {}", self.heap.render_repr(idx)),
                        )),
                    }
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object is not subscriptable",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object is not subscriptable",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn index_store(
        &mut self,
        code_id: usize,
        pc: usize,
        obj: Value,
        idx: Value,
        val: Value,
    ) -> MpResult<()> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    match self.heap.get_mut(h) {
                        Object::List(items) => items[i] = val,
                        _ => unreachable!("type checked above"),
                    }
                    Ok(())
                }
                Object::Dict(d) => {
                    let mut probes = 0;
                    // Two-phase store: probe under the shared heap borrow,
                    // commit under the disjoint mutable one — no take/put of
                    // the whole dict per store.
                    let (slot, old) = match d.plan_insert(&self.heap, idx, &mut probes)? {
                        Some(plan) => match self.heap.get_mut(h) {
                            Object::Dict(d) => d.commit_insert(plan, idx, val, &mut probes),
                            _ => unreachable!("type checked above"),
                        },
                        // First insert into an unallocated table.
                        None => self.heap.with_dict_mut(h, |dict, heap| {
                            dict.insert_slot(heap, idx, val, &mut probes)
                        })?,
                    };
                    self.charge_probes(probes);
                    if old.is_some() {
                        // Overwrite of an existing key: the table layout is
                        // unchanged, so the slot/probe pair is cacheable.
                        self.cache_dict_slot(code_id, pc, h, idx, slot, probes);
                    }
                    Ok(())
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object does not support item assignment",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object does not support item assignment",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn index_del(&mut self, obj: Value, idx: Value) -> MpResult<()> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    let n = items.len();
                    self.charge_aux(self.cost.per_element * (n - i) as f64, true);
                    match self.heap.get_mut(h) {
                        Object::List(items) => {
                            items.remove(i);
                        }
                        _ => unreachable!("type checked above"),
                    }
                    Ok(())
                }
                Object::Dict(d) => {
                    let mut probes = 0;
                    // Two-phase removal, mirroring the store path above.
                    let planned = d.plan_remove(&self.heap, idx, &mut probes)?;
                    self.charge_probes(probes);
                    match planned {
                        Some(slot) => {
                            match self.heap.get_mut(h) {
                                Object::Dict(d) => {
                                    d.commit_remove(slot);
                                }
                                _ => unreachable!("type checked above"),
                            }
                            Ok(())
                        }
                        None => Err(MpError::runtime(
                            RuntimeErrorKind::Key,
                            format!("key not found: {}", self.heap.render_repr(idx)),
                        )),
                    }
                }
                _ => Err(MpError::type_error(format!(
                    "cannot delete items of '{}'",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "cannot delete items of '{}'",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn slice_bounds(len: usize, lo: Value, hi: Value) -> MpResult<(usize, usize)> {
        let n = len as i64;
        let norm = |v: Value, default: i64| -> MpResult<i64> {
            match v {
                Value::None => Ok(default),
                _ => {
                    let i = v
                        .as_int()
                        .ok_or_else(|| MpError::type_error("slice indices must be integers"))?;
                    Ok(if i < 0 { i + n } else { i })
                }
            }
        };
        let lo = norm(lo, 0)?.clamp(0, n);
        let hi = norm(hi, n)?.clamp(0, n);
        Ok((lo as usize, (hi.max(lo)) as usize))
    }

    fn slice_load(&mut self, obj: Value, lo: Value, hi: Value) -> MpResult<Value> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let (a, b) = Self::slice_bounds(items.len(), lo, hi)?;
                    let out = items[a..b].to_vec();
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let nh = self.alloc(Object::List(out));
                    Ok(Value::Obj(nh))
                }
                Object::Tuple(items) => {
                    let (a, b) = Self::slice_bounds(items.len(), lo, hi)?;
                    let out = items[a..b].to_vec();
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let nh = self.alloc(Object::Tuple(out));
                    Ok(Value::Obj(nh))
                }
                Object::Str(s) => {
                    // Slice by char positions without a Vec<char> scratch
                    // buffer; only the result String is allocated.
                    let (a, b) = Self::slice_bounds(s.chars().count(), lo, hi)?;
                    let out: String = s.chars().skip(a).take(b - a).collect();
                    self.charge_aux(1.2 * out.len() as f64, true);
                    let nh = self.alloc(Object::Str(out));
                    Ok(Value::Obj(nh))
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object is not sliceable",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object is not sliceable",
                self.heap.type_name(obj)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::error::RuntimeErrorKind;
    use crate::value::Value;
    use crate::vm::{Vm, VmConfig};

    /// Runs a module and returns the value of global `name`.
    fn run_and_get(src: &str, name: &str) -> Value {
        let mut vm = Vm::compile_and_load(src, 42, VmConfig::interp())
            .unwrap_or_else(|e| panic!("compile: {e}"));
        vm.run_module()
            .unwrap_or_else(|e| panic!("run: {e}\nsource:\n{src}"));
        vm.global(name)
            .unwrap_or_else(|| panic!("global {name} not set"))
    }

    fn run_render(src: &str, name: &str) -> String {
        let mut vm = Vm::compile_and_load(src, 42, VmConfig::interp())
            .unwrap_or_else(|e| panic!("compile: {e}"));
        vm.run_module()
            .unwrap_or_else(|e| panic!("run: {e}\nsource:\n{src}"));
        let v = vm
            .global(name)
            .unwrap_or_else(|| panic!("global {name} not set"));
        vm.render(v)
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(run_and_get("x = 2 + 3 * 4\n", "x"), Value::Int(14));
        assert_eq!(run_and_get("x = 7 / 2\n", "x"), Value::Float(3.5));
        assert_eq!(run_and_get("x = 7 // 2\n", "x"), Value::Int(3));
        assert_eq!(run_and_get("x = -7 // 2\n", "x"), Value::Int(-4));
        assert_eq!(run_and_get("x = -7 % 2\n", "x"), Value::Int(1));
        assert_eq!(run_and_get("x = 7 % -2\n", "x"), Value::Int(-1));
        assert_eq!(run_and_get("x = 2 ** 10\n", "x"), Value::Int(1024));
        assert_eq!(run_and_get("x = 2 ** -1\n", "x"), Value::Float(0.5));
        assert_eq!(run_and_get("x = 1.5 + 1\n", "x"), Value::Float(2.5));
        assert_eq!(run_and_get("x = True + 1\n", "x"), Value::Int(2));
    }

    #[test]
    fn comparison_and_bool_logic() {
        assert_eq!(run_and_get("x = 1 < 2\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 < 2 < 3\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 < 2 > 3\n", "x"), Value::Bool(false));
        assert_eq!(run_and_get("x = 2 == 2.0\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 and 2\n", "x"), Value::Int(2));
        assert_eq!(run_and_get("x = 0 and 2\n", "x"), Value::Int(0));
        assert_eq!(run_and_get("x = 0 or 5\n", "x"), Value::Int(5));
        assert_eq!(run_and_get("x = not 0\n", "x"), Value::Bool(true));
    }

    #[test]
    fn while_loop_and_aug_assign() {
        let src = "i = 0\ns = 0\nwhile i < 100:\n    s += i\n    i += 1\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(4950));
    }

    #[test]
    fn for_range_loop() {
        assert_eq!(
            run_and_get("s = 0\nfor i in range(10):\n    s += i\n", "s"),
            Value::Int(45)
        );
        assert_eq!(
            run_and_get("s = 0\nfor i in range(10, 0, -2):\n    s += i\n", "s"),
            Value::Int(30)
        );
    }

    #[test]
    fn functions_and_recursion() {
        let src = "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nx = fib(15)\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(610));
    }

    #[test]
    fn break_and_continue() {
        let src = "s = 0\nfor i in range(100):\n    if i == 10:\n        break\n    if i % 2 == 0:\n        continue\n    s += i\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(25));
    }

    #[test]
    fn lists_dicts_tuples() {
        assert_eq!(run_render("x = [1, 2] + [3]\n", "x"), "[1, 2, 3]");
        assert_eq!(run_and_get("l = [1, 2, 3]\nx = l[1]\n", "x"), Value::Int(2));
        assert_eq!(
            run_and_get("l = [1, 2, 3]\nx = l[-1]\n", "x"),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d['a']\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {}\nd[5] = 9\nx = d[5]\n", "x"),
            Value::Int(9)
        );
        assert_eq!(run_and_get("t = (4, 5)\nx = t[0]\n", "x"), Value::Int(4));
        assert_eq!(run_and_get("a, b = 1, 2\nx = a + b\n", "x"), Value::Int(3));
        assert_eq!(
            run_and_get("a, b = 1, 2\na, b = b, a\nx = a\n", "x"),
            Value::Int(2)
        );
    }

    #[test]
    fn dict_iteration_and_membership() {
        let src = "d = {'a': 1, 'b': 2, 'c': 3}\ns = 0\nfor k in d:\n    s += d[k]\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(6));
        assert_eq!(
            run_and_get("d = {1: 'x'}\nb = 1 in d\n", "b"),
            Value::Bool(true)
        );
        assert_eq!(
            run_and_get("d = {1: 'x'}\nb = 2 not in d\n", "b"),
            Value::Bool(true)
        );
        assert_eq!(run_and_get("b = 3 in [1, 2, 3]\n", "b"), Value::Bool(true));
        assert_eq!(run_and_get("b = 'bc' in 'abcd'\n", "b"), Value::Bool(true));
    }

    #[test]
    fn methods_work() {
        assert_eq!(
            run_render("l = []\nl.append(1)\nl.append(2)\n", "l"),
            "[1, 2]"
        );
        assert_eq!(
            run_and_get("l = [3, 1, 2]\nl.sort()\nx = l[0]\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("l = [1, 2, 3]\nx = l.pop()\n", "x"),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.get('b', 7)\n", "x"),
            Value::Int(7)
        );
        assert_eq!(
            run_and_get("d = {'a': 1, 'b': 2}\nx = len(d.items())\n", "x"),
            Value::Int(2)
        );
        assert_eq!(
            run_render("s = 'a,b,c'\np = s.split(',')\n", "p"),
            "['a', 'b', 'c']"
        );
        assert_eq!(run_render("s = '-'\nj = s.join(['x', 'y'])\n", "j"), "x-y");
        assert_eq!(
            run_and_get("x = 'Hello'.startswith('He')\n", "x"),
            Value::Bool(true)
        );
    }

    #[test]
    fn builtins_work() {
        assert_eq!(run_and_get("x = len([1, 2, 3])\n", "x"), Value::Int(3));
        assert_eq!(
            run_and_get("x = sum([1, 2, 3.5])\n", "x"),
            Value::Float(6.5)
        );
        assert_eq!(run_and_get("x = min(3, 1, 2)\n", "x"), Value::Int(1));
        assert_eq!(run_and_get("x = max([3, 1, 2])\n", "x"), Value::Int(3));
        assert_eq!(run_and_get("x = abs(-4)\n", "x"), Value::Int(4));
        assert_eq!(run_and_get("x = int('42')\n", "x"), Value::Int(42));
        assert_eq!(run_and_get("x = float(2)\n", "x"), Value::Float(2.0));
        assert_eq!(run_render("x = str(12)\n", "x"), "12");
        assert_eq!(run_and_get("x = ord('A')\n", "x"), Value::Int(65));
        assert_eq!(run_render("x = chr(66)\n", "x"), "B");
        assert_eq!(run_render("x = sorted([3, 1, 2])\n", "x"), "[1, 2, 3]");
        assert_eq!(run_and_get("x = len(list(range(5)))\n", "x"), Value::Int(5));
        assert_eq!(run_and_get("x = sqrt(16)\n", "x"), Value::Float(4.0));
        assert_eq!(run_and_get("x = floor(2.7)\n", "x"), Value::Int(2));
    }

    #[test]
    fn string_operations() {
        assert_eq!(run_render("s = 'ab' + 'cd'\n", "s"), "abcd");
        assert_eq!(run_render("s = 'ab' * 3\n", "s"), "ababab");
        assert_eq!(run_render("s = 'hello'[1]\n", "s"), "e");
        assert_eq!(run_render("s = 'hello'[1:3]\n", "s"), "el");
        assert_eq!(run_render("s = 'hello'[:2]\n", "s"), "he");
        assert_eq!(run_render("s = 'hello'[-2:]\n", "s"), "lo");
        assert_eq!(run_and_get("x = len('hello')\n", "x"), Value::Int(5));
    }

    #[test]
    fn slices_on_lists() {
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[1:3]\n", "x"), "[2, 3]");
        assert_eq!(
            run_render("l = [1, 2, 3, 4]\nx = l[:]\n", "x"),
            "[1, 2, 3, 4]"
        );
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[10:20]\n", "x"), "[]");
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[-2:]\n", "x"), "[3, 4]");
    }

    #[test]
    fn global_statement_semantics() {
        let src = "n = 0\ndef bump():\n    global n\n    n = n + 1\nbump()\nbump()\n";
        assert_eq!(run_and_get(src, "n"), Value::Int(2));
    }

    #[test]
    fn ternary_and_nested_calls() {
        assert_eq!(run_and_get("x = 1 if 2 > 1 else 0\n", "x"), Value::Int(1));
        let src = "def sq(v):\n    return v * v\nx = sq(sq(3))\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(81));
    }

    #[test]
    fn iteration_over_strings_lists_tuples() {
        assert_eq!(
            run_render("out = []\nfor c in 'abc':\n    out.append(c)\n", "out"),
            "['a', 'b', 'c']"
        );
        assert_eq!(
            run_and_get("s = 0\nfor v in (1, 2, 3):\n    s += v\n", "s"),
            Value::Int(6)
        );
        let src = "d = {'a': 1, 'b': 2}\ns = 0\nfor k, v in d.items():\n    s += v\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(3));
    }

    #[test]
    fn runtime_errors_have_python_kinds() {
        let check = |src: &str, kind: RuntimeErrorKind| {
            let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
            let err = vm.run_module().expect_err(src);
            assert_eq!(err.runtime_kind(), Some(kind), "{src} -> {err}");
        };
        check("x = 1 / 0\n", RuntimeErrorKind::ZeroDivision);
        check("x = 1 // 0\n", RuntimeErrorKind::ZeroDivision);
        check("x = [1][5]\n", RuntimeErrorKind::Index);
        check("x = {}['k']\n", RuntimeErrorKind::Key);
        check("x = unknown_name\n", RuntimeErrorKind::Name);
        check("x = 1 + 'a'\n", RuntimeErrorKind::Type);
        check("x = int('zz')\n", RuntimeErrorKind::Value);
        check(
            "def f():\n    return f()\nf()\n",
            RuntimeErrorKind::RecursionLimit,
        );
    }

    #[test]
    fn error_unwinds_to_usable_vm() {
        let src = "def boom():\n    return 1 / 0\ndef ok():\n    return 7\n";
        let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
        vm.run_module().unwrap();
        assert!(vm.call_function("boom", &[]).is_err());
        assert_eq!(vm.call_function("ok", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn del_statement() {
        assert_eq!(
            run_and_get("d = {1: 'a', 2: 'b'}\ndel d[1]\nx = len(d)\n", "x"),
            Value::Int(1)
        );
        assert_eq!(run_render("l = [1, 2, 3]\ndel l[1]\n", "l"), "[1, 3]");
    }

    #[test]
    fn virtual_time_advances_and_scales_with_work() {
        let small = {
            let mut vm = Vm::compile_and_load(
                "s = 0\nfor i in range(100):\n    s += i\n",
                1,
                VmConfig::interp(),
            )
            .unwrap();
            vm.run_module().unwrap();
            vm.now_ns()
        };
        let large = {
            let mut vm = Vm::compile_and_load(
                "s = 0\nfor i in range(10000):\n    s += i\n",
                1,
                VmConfig::interp(),
            )
            .unwrap();
            vm.run_module().unwrap();
            vm.now_ns()
        };
        assert!(small > 0.0);
        assert!(large > small * 20.0, "large {large} vs small {small}");
    }

    #[test]
    fn gc_runs_under_allocation_pressure() {
        let src = "junk = None\nfor i in range(30000):\n    junk = [i, i + 1]\n";
        let mut cfg = VmConfig::interp();
        cfg.noise = crate::noise::NoiseConfig::quiescent();
        let mut vm = Vm::compile_and_load(src, 1, cfg).unwrap();
        vm.run_module().unwrap();
        assert!(vm.counters().gc_cycles > 0, "GC should have run");
        // Garbage must actually be reclaimed: live objects far below allocs.
        assert!(vm.heap_stats().gc_freed > 10_000);
    }

    #[test]
    fn call_function_entry_point() {
        let src = "def add(a, b):\n    return a + b\n";
        let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
        vm.run_module().unwrap();
        let r = vm
            .call_function("add", &[Value::Int(2), Value::Int(40)])
            .unwrap();
        assert_eq!(r, Value::Int(42));
        // Arity mismatch is a TypeError.
        assert!(vm.call_function("add", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn print_captured_when_enabled() {
        let mut cfg = VmConfig::interp();
        cfg.capture_output = true;
        let mut vm = Vm::compile_and_load("print('hi', 1 + 1)\n", 1, cfg).unwrap();
        vm.run_module().unwrap();
        assert_eq!(vm.take_stdout(), "hi 2\n");
    }

    #[test]
    fn enumerate_and_zip() {
        let src = "s = 0\nfor i, v in enumerate([10, 20]):\n    s += i * v\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(20));
        let src = "s = 0\nfor a, b in zip([1, 2], [3, 4, 5]):\n    s += a * b\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(11));
    }

    #[test]
    fn nested_loops() {
        let src = "s = 0\nfor i in range(10):\n    for j in range(10):\n        s += i * j\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(2025));
    }

    #[test]
    fn shadowing_builtins_is_allowed() {
        let src = "def len(x):\n    return 99\nx = len([1])\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(99));
    }

    #[test]
    fn list_comprehensions() {
        assert_eq!(
            run_render("x = [i * i for i in range(5)]\n", "x"),
            "[0, 1, 4, 9, 16]"
        );
        assert_eq!(
            run_render("x = [i for i in range(10) if i % 3 == 0]\n", "x"),
            "[0, 3, 6, 9]"
        );
        assert_eq!(
            run_render(
                "words = ['a', 'bb', 'ccc']\nx = [len(w) for w in words]\n",
                "x"
            ),
            "[1, 2, 3]"
        );
        // Nested comprehension.
        assert_eq!(
            run_render("x = [[j for j in range(i)] for i in range(3)]\n", "x"),
            "[[], [0], [0, 1]]"
        );
        // Tuple target over dict items.
        assert_eq!(
            run_and_get(
                "d = {1: 10, 2: 20}\nx = sum([k + v for k, v in d.items()])\n",
                "x"
            ),
            Value::Int(33)
        );
        // Inside a function body: target becomes a local slot.
        let src = "def f(n):\n    return sum([i * 2 for i in range(n)])\nx = f(5)\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(20));
    }

    #[test]
    fn comprehension_engines_agree() {
        let src = "\
N = 50
def run():
    squares = [i * i for i in range(N)]
    evens = [s for s in squares if s % 2 == 0]
    return sum(evens) + len(squares)
";
        let checksum = crate::session::check_engines_agree(src, 3).unwrap();
        assert_eq!(checksum, "19650");
    }

    #[test]
    fn more_string_methods() {
        assert_eq!(run_render("s = ' pad '.strip()\n", "s"), "pad");
        assert_eq!(run_render("s = 'aBc'.upper()\n", "s"), "ABC");
        assert_eq!(run_render("s = 'aBc'.lower()\n", "s"), "abc");
        assert_eq!(run_render("s = 'aXbXc'.replace('X', '-')\n", "s"), "a-b-c");
        assert_eq!(run_and_get("x = 'hello'.find('ll')\n", "x"), Value::Int(2));
        assert_eq!(run_and_get("x = 'hello'.find('zz')\n", "x"), Value::Int(-1));
        assert_eq!(
            run_and_get("x = 'banana'.count('an')\n", "x"),
            Value::Int(2)
        );
        assert_eq!(
            run_and_get("x = 'hello'.endswith('lo')\n", "x"),
            Value::Bool(true)
        );
        assert_eq!(
            run_render("p = 'one two  three'.split()\n", "p"),
            "['one', 'two', 'three']"
        );
    }

    #[test]
    fn more_list_and_dict_methods() {
        assert_eq!(run_render("l = [1, 2]\nl.insert(1, 9)\n", "l"), "[1, 9, 2]");
        assert_eq!(
            run_render("l = [1, 2]\nl.extend([3, 4])\n", "l"),
            "[1, 2, 3, 4]"
        );
        assert_eq!(run_render("l = [1, 2, 3]\nl.reverse()\n", "l"), "[3, 2, 1]");
        assert_eq!(
            run_and_get("x = [1, 2, 1, 1].count(1)\n", "x"),
            Value::Int(3)
        );
        assert_eq!(run_and_get("x = [5, 6, 7].index(6)\n", "x"), Value::Int(1));
        assert_eq!(run_render("l = [1, 2, 3]\nl.remove(2)\n", "l"), "[1, 3]");
        assert_eq!(
            run_and_get("l = [1]\nc = l.copy()\nc.append(2)\nx = len(l)\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get(
                "d = {'a': 1}\nx = d.setdefault('b', 5) + d.setdefault('a', 9)\n",
                "x"
            ),
            Value::Int(6)
        );
        assert_eq!(
            run_and_get(
                "d = {'a': 1}\nd.update({'b': 2})\nx = d['a'] + d['b']\n",
                "x"
            ),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nc = d.copy()\nc['a'] = 9\nx = d['a']\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.pop('a')\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.pop('z', 7)\n", "x"),
            Value::Int(7)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nd.clear()\nx = len(d)\n", "x"),
            Value::Int(0)
        );
    }

    #[test]
    fn builtin_error_paths() {
        let check_err = |src: &str| {
            let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
            assert!(vm.run_module().is_err(), "{src} should raise");
        };
        check_err("x = min([])\n");
        check_err("x = sqrt(-1)\n");
        check_err("x = log(0)\n");
        check_err("x = ord('ab')\n");
        check_err("x = [1].pop(5)\n");
        check_err("x = [].pop()\n");
        check_err("x = [1].index(9)\n");
        check_err("x = {}.pop('k')\n");
        check_err("x = range(1, 2, 0)\n");
        check_err("x = 'a'.split('')\n");
        check_err("x = len(3)\n");
        check_err("x = min(1, 'a')\n");
        check_err("d = {[1]: 2}\n");
        check_err("x = sorted([1, 'a'])\n");
    }

    #[test]
    fn range_edge_cases() {
        assert_eq!(run_and_get("x = len(range(0))\n", "x"), Value::Int(0));
        assert_eq!(run_and_get("x = len(range(5, 5))\n", "x"), Value::Int(0));
        assert_eq!(
            run_and_get("x = len(range(10, 0, -3))\n", "x"),
            Value::Int(4)
        );
        assert_eq!(
            run_and_get("x = 6 in range(0, 10, 2)\n", "x"),
            Value::Bool(true)
        );
        assert_eq!(
            run_and_get("x = 5 in range(0, 10, 2)\n", "x"),
            Value::Bool(false)
        );
        assert_eq!(
            run_and_get("x = 8 in range(10, 0, -2)\n", "x"),
            Value::Bool(true)
        );
    }

    #[test]
    fn time_budget_aborts_infinite_loop() {
        let mut cfg = VmConfig::interp();
        cfg.time_budget_ns = Some(1.0e7);
        let mut vm = Vm::compile_and_load("while True:\n    pass\n", 1, cfg).unwrap();
        let err = vm.run_module().expect_err("must hit budget");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::Timeout));
    }

    #[test]
    fn budget_error_unwinds_to_usable_vm() {
        // After a deadline abort the frame stack is unwound, so the same VM
        // can keep serving calls — the property the retrying harness relies
        // on when it reuses nothing but still must not see a poisoned state.
        let mut cfg = VmConfig::interp();
        cfg.step_budget = Some(5_000);
        let src = "def spin():\n    while True:\n        pass\ndef ok():\n    return 7\n";
        let mut vm = Vm::compile_and_load(src, 1, cfg).unwrap();
        vm.run_module().unwrap();
        let err = vm
            .call_function("spin", &[])
            .expect_err("must exhaust fuel");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::FuelExhausted));
        assert_eq!(vm.call_function("ok", &[]).unwrap(), Value::Int(7));
    }
}
