//! The bytecode execution loop, shared by both engines.
//!
//! The interpreter engine executes every opcode at interpreter cost. The JIT
//! engine runs the *same* loop but consults [`crate::jit::JitState`]: opcodes
//! inside compiled regions are charged at JIT cost, arithmetic opcodes in
//! compiled regions check type guards, and loop back-edges drive profiling,
//! recording and compilation. Semantics are identical by construction — a
//! property the test suite and property tests verify extensively.

use crate::bytecode::Op;
use crate::error::{MpError, MpResult, RuntimeErrorKind};
use crate::frame::Frame;
use crate::heap::Object;
use crate::jit::{BackedgeEvent, GuardOutcome};
use crate::value::Value;
use crate::vm::Vm;

/// Ops between housekeeping checks (GC/jitter/budget).
const HOUSEKEEPING_INTERVAL: u32 = 64;

impl Vm {
    #[inline]
    fn push(&mut self, v: Value) {
        self.stack.push(v);
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack
            .pop()
            .expect("operand stack underflow (compiler bug)")
    }

    #[inline]
    fn peek(&self, depth: usize) -> Value {
        self.stack[self.stack.len() - 1 - depth]
    }

    fn zero_division() -> MpError {
        MpError::runtime(RuntimeErrorKind::ZeroDivision, "division by zero")
    }

    fn overflow() -> MpError {
        MpError::runtime(RuntimeErrorKind::Overflow, "integer overflow")
    }

    /// Runs until the frame stack shrinks back to `min_frames`, returning the
    /// value produced by the frame that was on top when execution started.
    ///
    /// # Errors
    ///
    /// Any runtime error; the frame stack is unwound to `min_frames` first so
    /// the VM remains usable.
    pub(crate) fn execute_until(&mut self, min_frames: usize) -> MpResult<Value> {
        let result = self.execute_inner(min_frames);
        if result.is_err() {
            // Unwind so subsequent calls see a consistent VM.
            while self.frames.len() > min_frames {
                let f = self.frames.pop().expect("len checked");
                self.stack.truncate(f.stack_base);
            }
        }
        result
    }

    fn execute_inner(&mut self, min_frames: usize) -> MpResult<Value> {
        loop {
            self.ops_since_housekeeping += 1;
            if self.ops_since_housekeeping >= HOUSEKEEPING_INTERVAL {
                self.housekeeping()?;
            }

            let frame = self
                .frames
                .last()
                .expect("at least one frame while executing");
            let code_id = frame.code_id;
            let pc = frame.pc;
            let op = self.program.codes[code_id].ops[pc];

            let compiled = match &self.jit {
                Some(j) => j.is_compiled(code_id, pc),
                None => false,
            };
            let class = op.class();
            self.charge(class, compiled);
            self.frames.last_mut().expect("frame exists").pc = pc + 1;

            match op {
                Op::Nop => {}
                Op::LoadConst(i) => {
                    let v = self.const_values[code_id][i as usize];
                    self.push(v);
                }
                Op::LoadLocal(i) => {
                    let v = self.frames.last().expect("frame exists").locals[i as usize];
                    self.push(v);
                }
                Op::StoreLocal(i) => {
                    let v = self.pop();
                    self.frames.last_mut().expect("frame exists").locals[i as usize] = v;
                }
                Op::LoadGlobal(i) => {
                    let slot = self.name_slots[code_id][i as usize];
                    match self.globals[slot as usize] {
                        Some(v) => self.push(v),
                        None => {
                            let name = &self.program.codes[code_id].names[i as usize];
                            return Err(MpError::name_error(name));
                        }
                    }
                }
                Op::StoreGlobal(i) => {
                    let slot = self.name_slots[code_id][i as usize];
                    let v = self.pop();
                    self.globals[slot as usize] = Some(v);
                }

                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::FloorDiv
                | Op::Mod
                | Op::Pow
                | Op::CmpEq
                | Op::CmpNe
                | Op::CmpLt
                | Op::CmpLe
                | Op::CmpGt
                | Op::CmpGe => {
                    self.observe_types_binary(code_id, pc, compiled);
                    let b = self.pop();
                    let a = self.pop();
                    let r = self.binary_op(op, a, b)?;
                    self.push(r);
                }
                Op::CmpIn | Op::CmpNotIn => {
                    let container = self.pop();
                    let item = self.pop();
                    let found = self.contains(container, item)?;
                    let r = if matches!(op, Op::CmpIn) {
                        found
                    } else {
                        !found
                    };
                    self.push(Value::Bool(r));
                }
                Op::Neg => {
                    self.observe_types_unary(code_id, pc, compiled);
                    let v = self.pop();
                    let r = match v {
                        Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(Self::overflow)?),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(b) => Value::Int(-i64::from(b)),
                        other => {
                            return Err(MpError::type_error(format!(
                                "bad operand type for unary -: '{}'",
                                self.heap.type_name(other)
                            )));
                        }
                    };
                    self.push(r);
                }
                Op::Not => {
                    let v = self.pop();
                    let r = !self.heap.truthy(v);
                    self.push(Value::Bool(r));
                }

                Op::Jump(t) => {
                    let target = t as usize;
                    self.frames.last_mut().expect("frame exists").pc = target;
                    if target < pc {
                        self.on_backedge(code_id, pc, target);
                    }
                }
                Op::PopJumpIfFalse(t) => {
                    let v = self.pop();
                    if !self.heap.truthy(v) {
                        self.frames.last_mut().expect("frame exists").pc = t as usize;
                    }
                }
                Op::PopJumpIfTrue(t) => {
                    let v = self.pop();
                    if self.heap.truthy(v) {
                        self.frames.last_mut().expect("frame exists").pc = t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let v = self.peek(0);
                    if !self.heap.truthy(v) {
                        self.frames.last_mut().expect("frame exists").pc = t as usize;
                    } else {
                        self.pop();
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let v = self.peek(0);
                    if self.heap.truthy(v) {
                        self.frames.last_mut().expect("frame exists").pc = t as usize;
                    } else {
                        self.pop();
                    }
                }

                Op::BuildList(n) => {
                    let n = n as usize;
                    let items = self.stack.split_off(self.stack.len() - n);
                    self.charge_aux(self.cost.per_element * n as f64, true);
                    let h = self.alloc(Object::List(items));
                    self.push(Value::Obj(h));
                }
                Op::BuildTuple(n) => {
                    let n = n as usize;
                    let items = self.stack.split_off(self.stack.len() - n);
                    self.charge_aux(self.cost.per_element * n as f64, true);
                    let h = self.alloc(Object::Tuple(items));
                    self.push(Value::Obj(h));
                }
                Op::BuildDict(n) => {
                    let n = n as usize;
                    let kvs = self.stack.split_off(self.stack.len() - 2 * n);
                    let h = self.alloc(Object::Dict(crate::dict::Dict::new()));
                    let mut probes = 0;
                    self.heap.with_dict_mut(h, |dict, heap| -> MpResult<()> {
                        for pair in kvs.chunks_exact(2) {
                            dict.insert(heap, pair[0], pair[1], &mut probes)?;
                        }
                        Ok(())
                    })?;
                    self.charge_probes(probes);
                    self.push(Value::Obj(h));
                }

                Op::IndexLoad => {
                    let idx = self.pop();
                    let obj = self.pop();
                    let v = self.index_load(obj, idx)?;
                    self.push(v);
                }
                Op::IndexStore => {
                    let val = self.pop();
                    let idx = self.pop();
                    let obj = self.pop();
                    self.index_store(obj, idx, val)?;
                }
                Op::IndexDel => {
                    let idx = self.pop();
                    let obj = self.pop();
                    self.index_del(obj, idx)?;
                }
                Op::SliceLoad => {
                    let hi = self.pop();
                    let lo = self.pop();
                    let obj = self.pop();
                    let v = self.slice_load(obj, lo, hi)?;
                    self.push(v);
                }
                Op::Dup2 => {
                    let a = self.peek(1);
                    let b = self.peek(0);
                    self.push(a);
                    self.push(b);
                }
                Op::ListAppend(n) => {
                    let v = self.pop();
                    let list = self.peek(n as usize - 1);
                    match list {
                        Value::Obj(h) => match self.heap.get_mut(h) {
                            Object::List(items) => items.push(v),
                            _ => {
                                return Err(MpError::runtime(
                                    RuntimeErrorKind::Internal,
                                    "ListAppend target is not a list",
                                ));
                            }
                        },
                        _ => {
                            return Err(MpError::runtime(
                                RuntimeErrorKind::Internal,
                                "ListAppend target is not a list",
                            ));
                        }
                    }
                }
                Op::Pop => {
                    self.pop();
                }

                Op::Call(argc) => {
                    self.counters.calls += 1;
                    let argc = argc as usize;
                    let callee = self.peek(argc);
                    match callee {
                        Value::Obj(h) => match *self.heap.get(h) {
                            Object::Function { code_id: target } => {
                                self.push_call_frame(target, argc)?;
                                self.on_function_entry(target);
                            }
                            Object::Builtin(b) => {
                                self.invoke_builtin(b, argc)?;
                            }
                            _ => {
                                return Err(MpError::type_error(format!(
                                    "'{}' object is not callable",
                                    self.heap.type_name(callee)
                                )));
                            }
                        },
                        _ => {
                            return Err(MpError::type_error(format!(
                                "'{}' object is not callable",
                                self.heap.type_name(callee)
                            )));
                        }
                    }
                }
                Op::CallMethod { name, argc } => {
                    self.counters.calls += 1;
                    match self.method_ids[code_id][name as usize] {
                        Some(mid) => self.invoke_method(mid, argc as usize)?,
                        None => {
                            let receiver = self.peek(argc as usize);
                            let mname = &self.program.codes[code_id].names[name as usize];
                            return Err(MpError::type_error(format!(
                                "'{}' object has no method '{}'",
                                self.heap.type_name(receiver),
                                mname
                            )));
                        }
                    }
                }
                Op::Return => {
                    let result = self.pop();
                    let frame = self.frames.pop().expect("frame exists");
                    self.stack.truncate(frame.stack_base);
                    if self.frames.len() == min_frames {
                        return Ok(result);
                    }
                    self.push(result);
                }

                Op::GetIter => {
                    let v = self.pop();
                    let it = self.make_iterator(v)?;
                    self.push(it);
                }
                Op::ForIter(t) => {
                    let it = self.peek(0);
                    match self.iterator_next(it)? {
                        Some(v) => self.push(v),
                        None => {
                            self.pop();
                            self.frames.last_mut().expect("frame exists").pc = t as usize;
                        }
                    }
                }
                Op::UnpackSequence(n) => {
                    let v = self.pop();
                    let items: Vec<Value> = match v {
                        Value::Obj(h) => match self.heap.get(h) {
                            Object::Tuple(items) | Object::List(items) => items.clone(),
                            _ => {
                                return Err(MpError::type_error(format!(
                                    "cannot unpack '{}'",
                                    self.heap.type_name(v)
                                )));
                            }
                        },
                        _ => {
                            return Err(MpError::type_error(format!(
                                "cannot unpack '{}'",
                                self.heap.type_name(v)
                            )));
                        }
                    };
                    if items.len() != n as usize {
                        return Err(MpError::runtime(
                            RuntimeErrorKind::Value,
                            format!("expected {} values to unpack, got {}", n, items.len()),
                        ));
                    }
                    for v in items.into_iter().rev() {
                        self.push(v);
                    }
                }
                Op::MakeFunction(i) => {
                    let v = self.const_values[code_id][i as usize];
                    self.push(v);
                }
            }
        }
    }

    fn push_call_frame(&mut self, target: usize, argc: usize) -> MpResult<()> {
        if self.frames.len() >= self.recursion_limit {
            return Err(MpError::runtime(
                RuntimeErrorKind::RecursionLimit,
                "maximum recursion depth exceeded",
            ));
        }
        let code = &self.program.codes[target];
        if argc != code.n_params as usize {
            return Err(MpError::type_error(format!(
                "{}() takes {} arguments but {} were given",
                code.name, code.n_params, argc
            )));
        }
        let n_locals = code.n_locals as usize;
        let args_start = self.stack.len() - argc;
        let mut locals = vec![Value::None; n_locals];
        locals[..argc].copy_from_slice(&self.stack[args_start..]);
        self.stack.truncate(args_start - 1); // also removes the callee
        self.frames.push(Frame {
            code_id: target,
            pc: 0,
            locals,
            stack_base: self.stack.len(),
        });
        Ok(())
    }

    /// JIT hook for a function entry (method-at-a-time compilation).
    fn on_function_entry(&mut self, code_id: usize) {
        let Some(jit) = &mut self.jit else { return };
        let profile_cost = self.cost.profile_backedge;
        match jit.on_function_entry(code_id) {
            Some(ops) => {
                let cost = self.cost.compile_cost(ops);
                self.charge_aux(cost, false);
                self.counters.jit_compiles += 1;
                self.counters.jit_compile_ns += cost;
            }
            None => self.charge_aux(profile_cost, false),
        }
    }

    /// JIT hooks for a loop back-edge.
    fn on_backedge(&mut self, code_id: usize, from_pc: usize, target: usize) {
        self.counters.backedges += 1;
        let Some(jit) = &mut self.jit else { return };
        let profile_cost = self.cost.profile_backedge;
        let event = jit.on_backedge(code_id, from_pc, target);
        match event {
            BackedgeEvent::Cold | BackedgeEvent::StartRecording => {
                self.charge_aux(profile_cost, false);
            }
            BackedgeEvent::Compiled { ops } => {
                let cost = self.cost.compile_cost(ops);
                self.charge_aux(cost, false);
                self.counters.jit_compiles += 1;
                self.counters.jit_compile_ns += cost;
            }
        }
    }

    /// Records (while tracing) or checks (while compiled) operand types for a
    /// binary arithmetic/comparison opcode.
    fn observe_types_binary(&mut self, code_id: usize, pc: usize, compiled: bool) {
        if self.jit.is_none() {
            return;
        }
        let a = self.peek(1);
        let b = self.peek(0);
        let mask = self.heap.type_tag(a).bit() | self.heap.type_tag(b).bit();
        self.observe_mask(code_id, pc, mask, compiled);
    }

    fn observe_types_unary(&mut self, code_id: usize, pc: usize, compiled: bool) {
        if self.jit.is_none() {
            return;
        }
        let v = self.peek(0);
        let mask = self.heap.type_tag(v).bit();
        self.observe_mask(code_id, pc, mask, compiled);
    }

    fn observe_mask(&mut self, code_id: usize, pc: usize, mask: u16, compiled: bool) {
        let deopt_penalty = self.cost.deopt_penalty;
        let jit = self.jit.as_mut().expect("caller checked");
        if compiled {
            match jit.check_guard(code_id, pc, mask) {
                GuardOutcome::Pass => {}
                GuardOutcome::Deopt => {
                    self.counters.deopts += 1;
                    self.charge_aux(deopt_penalty, false);
                }
                GuardOutcome::Blacklisted => {
                    self.counters.deopts += 1;
                    self.counters.blacklisted += 1;
                    self.charge_aux(deopt_penalty * 2.0, false);
                }
            }
        } else if jit.is_recording(code_id, pc) {
            jit.record_types(code_id, pc, mask);
        }
    }

    // ---- operators ----

    fn binary_op(&mut self, op: Op, a: Value, b: Value) -> MpResult<Value> {
        match op {
            Op::Add => self.op_add(a, b),
            Op::Sub => self.numeric_op(a, b, "-", i64::checked_sub, |x, y| x - y),
            Op::Mul => self.op_mul(a, b),
            Op::Div => self.op_div(a, b),
            Op::FloorDiv => self.op_floordiv(a, b),
            Op::Mod => self.op_mod(a, b),
            Op::Pow => self.op_pow(a, b),
            Op::CmpEq => Ok(Value::Bool(self.heap.value_eq(a, b))),
            Op::CmpNe => Ok(Value::Bool(!self.heap.value_eq(a, b))),
            Op::CmpLt | Op::CmpLe | Op::CmpGt | Op::CmpGe => {
                let ord = self.heap.value_cmp(a, b).ok_or_else(|| {
                    MpError::type_error(format!(
                        "'<' not supported between '{}' and '{}'",
                        self.heap.type_name(a),
                        self.heap.type_name(b)
                    ))
                })?;
                let r = match op {
                    Op::CmpLt => ord.is_lt(),
                    Op::CmpLe => ord.is_le(),
                    Op::CmpGt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                Ok(Value::Bool(r))
            }
            _ => unreachable!("binary_op called with non-binary opcode"),
        }
    }

    fn type_error_binop(&self, sym: &str, a: Value, b: Value) -> MpError {
        MpError::type_error(format!(
            "unsupported operand type(s) for {sym}: '{}' and '{}'",
            self.heap.type_name(a),
            self.heap.type_name(b)
        ))
    }

    /// Integer/float arithmetic with Python coercions; used for `-`.
    fn numeric_op(
        &mut self,
        a: Value,
        b: Value,
        sym: &str,
        int_op: fn(i64, i64) -> Option<i64>,
        float_op: fn(f64, f64) -> f64,
    ) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => int_op(x, y).map(Value::Int).ok_or_else(Self::overflow),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(float_op(x, y))),
                _ => Err(self.type_error_binop(sym, a, b)),
            },
        }
    }

    fn op_add(&mut self, a: Value, b: Value) -> MpResult<Value> {
        if a.is_number() && b.is_number() {
            return self.numeric_op(a, b, "+", i64::checked_add, |x, y| x + y);
        }
        if let (Value::Obj(ha), Value::Obj(hb)) = (a, b) {
            match (self.heap.get(ha), self.heap.get(hb)) {
                (Object::Str(s1), Object::Str(s2)) => {
                    let mut out = String::with_capacity(s1.len() + s2.len());
                    out.push_str(s1);
                    out.push_str(s2);
                    self.charge_aux(1.2 * out.len() as f64, true);
                    let h = self.alloc(Object::Str(out));
                    return Ok(Value::Obj(h));
                }
                (Object::List(v1), Object::List(v2)) => {
                    let mut out = Vec::with_capacity(v1.len() + v2.len());
                    out.extend_from_slice(v1);
                    out.extend_from_slice(v2);
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let h = self.alloc(Object::List(out));
                    return Ok(Value::Obj(h));
                }
                (Object::Tuple(v1), Object::Tuple(v2)) => {
                    let mut out = Vec::with_capacity(v1.len() + v2.len());
                    out.extend_from_slice(v1);
                    out.extend_from_slice(v2);
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let h = self.alloc(Object::Tuple(out));
                    return Ok(Value::Obj(h));
                }
                _ => {}
            }
        }
        Err(self.type_error_binop("+", a, b))
    }

    fn op_mul(&mut self, a: Value, b: Value) -> MpResult<Value> {
        if a.is_number() && b.is_number() {
            return self.numeric_op(a, b, "*", i64::checked_mul, |x, y| x * y);
        }
        // str * int, list * int (either operand order, like Python).
        let (obj, count) = match (a, b) {
            (Value::Obj(h), n) if n.as_int().is_some() => (h, n.as_int().expect("checked")),
            (n, Value::Obj(h)) if n.as_int().is_some() => (h, n.as_int().expect("checked")),
            _ => return Err(self.type_error_binop("*", a, b)),
        };
        let count = count.max(0) as usize;
        match self.heap.get(obj) {
            Object::Str(s) => {
                if s.len().saturating_mul(count) > 100_000_000 {
                    return Err(Self::overflow());
                }
                let out = s.repeat(count);
                self.charge_aux(1.2 * out.len() as f64, true);
                let h = self.alloc(Object::Str(out));
                Ok(Value::Obj(h))
            }
            Object::List(items) => {
                let mut out = Vec::with_capacity(items.len() * count);
                for _ in 0..count {
                    out.extend_from_slice(items);
                }
                self.charge_aux(self.cost.per_element * out.len() as f64, true);
                let h = self.alloc(Object::List(out));
                Ok(Value::Obj(h))
            }
            _ => Err(self.type_error_binop("*", a, b)),
        }
    }

    fn op_div(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                if y == 0.0 {
                    Err(Self::zero_division())
                } else {
                    Ok(Value::Float(x / y))
                }
            }
            _ => Err(self.type_error_binop("/", a, b)),
        }
    }

    fn op_floordiv(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => {
                if y == 0 {
                    return Err(Self::zero_division());
                }
                // Python floor division: round toward negative infinity.
                let mut q = x.wrapping_div(y);
                if (x % y != 0) && ((x < 0) != (y < 0)) {
                    q -= 1;
                }
                Ok(Value::Int(q))
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    if y == 0.0 {
                        Err(Self::zero_division())
                    } else {
                        Ok(Value::Float((x / y).floor()))
                    }
                }
                _ => Err(self.type_error_binop("//", a, b)),
            },
        }
    }

    fn op_mod(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => {
                if y == 0 {
                    return Err(Self::zero_division());
                }
                // Python modulo: result has the sign of the divisor.
                let mut r = x % y;
                if r != 0 && ((r < 0) != (y < 0)) {
                    r += y;
                }
                Ok(Value::Int(r))
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    if y == 0.0 {
                        return Err(Self::zero_division());
                    }
                    let mut r = x % y;
                    if r != 0.0 && ((r < 0.0) != (y < 0.0)) {
                        r += y;
                    }
                    Ok(Value::Float(r))
                }
                _ => Err(self.type_error_binop("%", a, b)),
            },
        }
    }

    fn op_pow(&mut self, a: Value, b: Value) -> MpResult<Value> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) if y >= 0 => {
                let e = u32::try_from(y).map_err(|_| Self::overflow())?;
                x.checked_pow(e).map(Value::Int).ok_or_else(Self::overflow)
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(x.powf(y))),
                _ => Err(self.type_error_binop("**", a, b)),
            },
        }
    }

    fn contains(&mut self, container: Value, item: Value) -> MpResult<bool> {
        match container {
            Value::Obj(h) => match self.heap.get(h) {
                Object::Dict(_) => {
                    let mut probes = 0;
                    let found = self
                        .heap
                        .with_dict_mut(h, |dict, heap| dict.contains(heap, item, &mut probes))?;
                    self.charge_probes(probes);
                    Ok(found)
                }
                Object::List(items) | Object::Tuple(items) => {
                    let items = items.clone();
                    let mut scanned = 0usize;
                    for &x in &items {
                        scanned += 1;
                        if self.heap.value_eq(x, item) {
                            self.charge_aux(self.cost.per_element * scanned as f64, true);
                            return Ok(true);
                        }
                    }
                    self.charge_aux(self.cost.per_element * scanned as f64, true);
                    Ok(false)
                }
                Object::Str(s) => {
                    let s = s.clone();
                    let found = match item {
                        Value::Obj(ih) => match self.heap.get(ih) {
                            Object::Str(needle) => Some(s.contains(needle.as_str())),
                            _ => None,
                        },
                        _ => None,
                    };
                    match found {
                        Some(found) => {
                            self.charge_aux(0.5 * s.len() as f64, true);
                            Ok(found)
                        }
                        None => Err(MpError::type_error("'in <string>' requires string operand")),
                    }
                }
                Object::Range { start, stop, step } => {
                    let (start, stop, step) = (*start, *stop, *step);
                    match item.as_int() {
                        Some(i) => {
                            let inside = if step > 0 {
                                i >= start && i < stop && (i - start) % step == 0
                            } else {
                                i <= start && i > stop && (start - i) % (-step) == 0
                            };
                            Ok(inside)
                        }
                        None => Ok(false),
                    }
                }
                _ => Err(MpError::type_error(format!(
                    "argument of type '{}' is not a container",
                    self.heap.type_name(container)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "argument of type '{}' is not a container",
                self.heap.type_name(container)
            ))),
        }
    }

    fn seq_index(len: usize, idx: Value, what: &str) -> MpResult<usize> {
        let i = idx
            .as_int()
            .ok_or_else(|| MpError::type_error(format!("{what} indices must be integers")))?;
        let n = len as i64;
        let i = if i < 0 { i + n } else { i };
        if i < 0 || i >= n {
            return Err(MpError::runtime(
                RuntimeErrorKind::Index,
                format!("{what} index out of range"),
            ));
        }
        Ok(i as usize)
    }

    fn index_load(&mut self, obj: Value, idx: Value) -> MpResult<Value> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    Ok(items[i])
                }
                Object::Tuple(items) => {
                    let i = Self::seq_index(items.len(), idx, "tuple")?;
                    Ok(items[i])
                }
                Object::Str(s) => {
                    let chars: Vec<char> = s.chars().collect();
                    let i = Self::seq_index(chars.len(), idx, "string")?;
                    let ch = chars[i].to_string();
                    let sh = self.alloc(Object::Str(ch));
                    Ok(Value::Obj(sh))
                }
                Object::Dict(_) => {
                    let mut probes = 0;
                    let found = self
                        .heap
                        .with_dict_mut(h, |dict, heap| dict.try_get(heap, idx, &mut probes))?;
                    self.charge_probes(probes);
                    found.ok_or_else(|| {
                        MpError::runtime(
                            RuntimeErrorKind::Key,
                            format!("key not found: {}", self.heap.render_repr(idx)),
                        )
                    })
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object is not subscriptable",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object is not subscriptable",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn index_store(&mut self, obj: Value, idx: Value, val: Value) -> MpResult<()> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    match self.heap.get_mut(h) {
                        Object::List(items) => items[i] = val,
                        _ => unreachable!("type checked above"),
                    }
                    Ok(())
                }
                Object::Dict(_) => {
                    let mut probes = 0;
                    self.heap
                        .with_dict_mut(h, |dict, heap| dict.insert(heap, idx, val, &mut probes))?;
                    self.charge_probes(probes);
                    Ok(())
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object does not support item assignment",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object does not support item assignment",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn index_del(&mut self, obj: Value, idx: Value) -> MpResult<()> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let i = Self::seq_index(items.len(), idx, "list")?;
                    let n = items.len();
                    self.charge_aux(self.cost.per_element * (n - i) as f64, true);
                    match self.heap.get_mut(h) {
                        Object::List(items) => {
                            items.remove(i);
                        }
                        _ => unreachable!("type checked above"),
                    }
                    Ok(())
                }
                Object::Dict(_) => {
                    let mut probes = 0;
                    let removed = self
                        .heap
                        .with_dict_mut(h, |dict, heap| dict.remove(heap, idx, &mut probes))?;
                    self.charge_probes(probes);
                    match removed {
                        Some(_) => Ok(()),
                        None => Err(MpError::runtime(
                            RuntimeErrorKind::Key,
                            format!("key not found: {}", self.heap.render_repr(idx)),
                        )),
                    }
                }
                _ => Err(MpError::type_error(format!(
                    "cannot delete items of '{}'",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "cannot delete items of '{}'",
                self.heap.type_name(obj)
            ))),
        }
    }

    fn slice_bounds(len: usize, lo: Value, hi: Value) -> MpResult<(usize, usize)> {
        let n = len as i64;
        let norm = |v: Value, default: i64| -> MpResult<i64> {
            match v {
                Value::None => Ok(default),
                _ => {
                    let i = v
                        .as_int()
                        .ok_or_else(|| MpError::type_error("slice indices must be integers"))?;
                    Ok(if i < 0 { i + n } else { i })
                }
            }
        };
        let lo = norm(lo, 0)?.clamp(0, n);
        let hi = norm(hi, n)?.clamp(0, n);
        Ok((lo as usize, (hi.max(lo)) as usize))
    }

    fn slice_load(&mut self, obj: Value, lo: Value, hi: Value) -> MpResult<Value> {
        match obj {
            Value::Obj(h) => match self.heap.get(h) {
                Object::List(items) => {
                    let (a, b) = Self::slice_bounds(items.len(), lo, hi)?;
                    let out = items[a..b].to_vec();
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let nh = self.alloc(Object::List(out));
                    Ok(Value::Obj(nh))
                }
                Object::Tuple(items) => {
                    let (a, b) = Self::slice_bounds(items.len(), lo, hi)?;
                    let out = items[a..b].to_vec();
                    self.charge_aux(self.cost.per_element * out.len() as f64, true);
                    let nh = self.alloc(Object::Tuple(out));
                    Ok(Value::Obj(nh))
                }
                Object::Str(s) => {
                    let chars: Vec<char> = s.chars().collect();
                    let (a, b) = Self::slice_bounds(chars.len(), lo, hi)?;
                    let out: String = chars[a..b].iter().collect();
                    self.charge_aux(1.2 * out.len() as f64, true);
                    let nh = self.alloc(Object::Str(out));
                    Ok(Value::Obj(nh))
                }
                _ => Err(MpError::type_error(format!(
                    "'{}' object is not sliceable",
                    self.heap.type_name(obj)
                ))),
            },
            _ => Err(MpError::type_error(format!(
                "'{}' object is not sliceable",
                self.heap.type_name(obj)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::error::RuntimeErrorKind;
    use crate::value::Value;
    use crate::vm::{Vm, VmConfig};

    /// Runs a module and returns the value of global `name`.
    fn run_and_get(src: &str, name: &str) -> Value {
        let mut vm = Vm::compile_and_load(src, 42, VmConfig::interp())
            .unwrap_or_else(|e| panic!("compile: {e}"));
        vm.run_module()
            .unwrap_or_else(|e| panic!("run: {e}\nsource:\n{src}"));
        vm.global(name)
            .unwrap_or_else(|| panic!("global {name} not set"))
    }

    fn run_render(src: &str, name: &str) -> String {
        let mut vm = Vm::compile_and_load(src, 42, VmConfig::interp())
            .unwrap_or_else(|e| panic!("compile: {e}"));
        vm.run_module()
            .unwrap_or_else(|e| panic!("run: {e}\nsource:\n{src}"));
        let v = vm
            .global(name)
            .unwrap_or_else(|| panic!("global {name} not set"));
        vm.render(v)
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(run_and_get("x = 2 + 3 * 4\n", "x"), Value::Int(14));
        assert_eq!(run_and_get("x = 7 / 2\n", "x"), Value::Float(3.5));
        assert_eq!(run_and_get("x = 7 // 2\n", "x"), Value::Int(3));
        assert_eq!(run_and_get("x = -7 // 2\n", "x"), Value::Int(-4));
        assert_eq!(run_and_get("x = -7 % 2\n", "x"), Value::Int(1));
        assert_eq!(run_and_get("x = 7 % -2\n", "x"), Value::Int(-1));
        assert_eq!(run_and_get("x = 2 ** 10\n", "x"), Value::Int(1024));
        assert_eq!(run_and_get("x = 2 ** -1\n", "x"), Value::Float(0.5));
        assert_eq!(run_and_get("x = 1.5 + 1\n", "x"), Value::Float(2.5));
        assert_eq!(run_and_get("x = True + 1\n", "x"), Value::Int(2));
    }

    #[test]
    fn comparison_and_bool_logic() {
        assert_eq!(run_and_get("x = 1 < 2\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 < 2 < 3\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 < 2 > 3\n", "x"), Value::Bool(false));
        assert_eq!(run_and_get("x = 2 == 2.0\n", "x"), Value::Bool(true));
        assert_eq!(run_and_get("x = 1 and 2\n", "x"), Value::Int(2));
        assert_eq!(run_and_get("x = 0 and 2\n", "x"), Value::Int(0));
        assert_eq!(run_and_get("x = 0 or 5\n", "x"), Value::Int(5));
        assert_eq!(run_and_get("x = not 0\n", "x"), Value::Bool(true));
    }

    #[test]
    fn while_loop_and_aug_assign() {
        let src = "i = 0\ns = 0\nwhile i < 100:\n    s += i\n    i += 1\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(4950));
    }

    #[test]
    fn for_range_loop() {
        assert_eq!(
            run_and_get("s = 0\nfor i in range(10):\n    s += i\n", "s"),
            Value::Int(45)
        );
        assert_eq!(
            run_and_get("s = 0\nfor i in range(10, 0, -2):\n    s += i\n", "s"),
            Value::Int(30)
        );
    }

    #[test]
    fn functions_and_recursion() {
        let src = "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nx = fib(15)\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(610));
    }

    #[test]
    fn break_and_continue() {
        let src = "s = 0\nfor i in range(100):\n    if i == 10:\n        break\n    if i % 2 == 0:\n        continue\n    s += i\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(25));
    }

    #[test]
    fn lists_dicts_tuples() {
        assert_eq!(run_render("x = [1, 2] + [3]\n", "x"), "[1, 2, 3]");
        assert_eq!(run_and_get("l = [1, 2, 3]\nx = l[1]\n", "x"), Value::Int(2));
        assert_eq!(
            run_and_get("l = [1, 2, 3]\nx = l[-1]\n", "x"),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d['a']\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {}\nd[5] = 9\nx = d[5]\n", "x"),
            Value::Int(9)
        );
        assert_eq!(run_and_get("t = (4, 5)\nx = t[0]\n", "x"), Value::Int(4));
        assert_eq!(run_and_get("a, b = 1, 2\nx = a + b\n", "x"), Value::Int(3));
        assert_eq!(
            run_and_get("a, b = 1, 2\na, b = b, a\nx = a\n", "x"),
            Value::Int(2)
        );
    }

    #[test]
    fn dict_iteration_and_membership() {
        let src = "d = {'a': 1, 'b': 2, 'c': 3}\ns = 0\nfor k in d:\n    s += d[k]\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(6));
        assert_eq!(
            run_and_get("d = {1: 'x'}\nb = 1 in d\n", "b"),
            Value::Bool(true)
        );
        assert_eq!(
            run_and_get("d = {1: 'x'}\nb = 2 not in d\n", "b"),
            Value::Bool(true)
        );
        assert_eq!(run_and_get("b = 3 in [1, 2, 3]\n", "b"), Value::Bool(true));
        assert_eq!(run_and_get("b = 'bc' in 'abcd'\n", "b"), Value::Bool(true));
    }

    #[test]
    fn methods_work() {
        assert_eq!(
            run_render("l = []\nl.append(1)\nl.append(2)\n", "l"),
            "[1, 2]"
        );
        assert_eq!(
            run_and_get("l = [3, 1, 2]\nl.sort()\nx = l[0]\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("l = [1, 2, 3]\nx = l.pop()\n", "x"),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.get('b', 7)\n", "x"),
            Value::Int(7)
        );
        assert_eq!(
            run_and_get("d = {'a': 1, 'b': 2}\nx = len(d.items())\n", "x"),
            Value::Int(2)
        );
        assert_eq!(
            run_render("s = 'a,b,c'\np = s.split(',')\n", "p"),
            "['a', 'b', 'c']"
        );
        assert_eq!(run_render("s = '-'\nj = s.join(['x', 'y'])\n", "j"), "x-y");
        assert_eq!(
            run_and_get("x = 'Hello'.startswith('He')\n", "x"),
            Value::Bool(true)
        );
    }

    #[test]
    fn builtins_work() {
        assert_eq!(run_and_get("x = len([1, 2, 3])\n", "x"), Value::Int(3));
        assert_eq!(
            run_and_get("x = sum([1, 2, 3.5])\n", "x"),
            Value::Float(6.5)
        );
        assert_eq!(run_and_get("x = min(3, 1, 2)\n", "x"), Value::Int(1));
        assert_eq!(run_and_get("x = max([3, 1, 2])\n", "x"), Value::Int(3));
        assert_eq!(run_and_get("x = abs(-4)\n", "x"), Value::Int(4));
        assert_eq!(run_and_get("x = int('42')\n", "x"), Value::Int(42));
        assert_eq!(run_and_get("x = float(2)\n", "x"), Value::Float(2.0));
        assert_eq!(run_render("x = str(12)\n", "x"), "12");
        assert_eq!(run_and_get("x = ord('A')\n", "x"), Value::Int(65));
        assert_eq!(run_render("x = chr(66)\n", "x"), "B");
        assert_eq!(run_render("x = sorted([3, 1, 2])\n", "x"), "[1, 2, 3]");
        assert_eq!(run_and_get("x = len(list(range(5)))\n", "x"), Value::Int(5));
        assert_eq!(run_and_get("x = sqrt(16)\n", "x"), Value::Float(4.0));
        assert_eq!(run_and_get("x = floor(2.7)\n", "x"), Value::Int(2));
    }

    #[test]
    fn string_operations() {
        assert_eq!(run_render("s = 'ab' + 'cd'\n", "s"), "abcd");
        assert_eq!(run_render("s = 'ab' * 3\n", "s"), "ababab");
        assert_eq!(run_render("s = 'hello'[1]\n", "s"), "e");
        assert_eq!(run_render("s = 'hello'[1:3]\n", "s"), "el");
        assert_eq!(run_render("s = 'hello'[:2]\n", "s"), "he");
        assert_eq!(run_render("s = 'hello'[-2:]\n", "s"), "lo");
        assert_eq!(run_and_get("x = len('hello')\n", "x"), Value::Int(5));
    }

    #[test]
    fn slices_on_lists() {
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[1:3]\n", "x"), "[2, 3]");
        assert_eq!(
            run_render("l = [1, 2, 3, 4]\nx = l[:]\n", "x"),
            "[1, 2, 3, 4]"
        );
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[10:20]\n", "x"), "[]");
        assert_eq!(run_render("l = [1, 2, 3, 4]\nx = l[-2:]\n", "x"), "[3, 4]");
    }

    #[test]
    fn global_statement_semantics() {
        let src = "n = 0\ndef bump():\n    global n\n    n = n + 1\nbump()\nbump()\n";
        assert_eq!(run_and_get(src, "n"), Value::Int(2));
    }

    #[test]
    fn ternary_and_nested_calls() {
        assert_eq!(run_and_get("x = 1 if 2 > 1 else 0\n", "x"), Value::Int(1));
        let src = "def sq(v):\n    return v * v\nx = sq(sq(3))\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(81));
    }

    #[test]
    fn iteration_over_strings_lists_tuples() {
        assert_eq!(
            run_render("out = []\nfor c in 'abc':\n    out.append(c)\n", "out"),
            "['a', 'b', 'c']"
        );
        assert_eq!(
            run_and_get("s = 0\nfor v in (1, 2, 3):\n    s += v\n", "s"),
            Value::Int(6)
        );
        let src = "d = {'a': 1, 'b': 2}\ns = 0\nfor k, v in d.items():\n    s += v\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(3));
    }

    #[test]
    fn runtime_errors_have_python_kinds() {
        let check = |src: &str, kind: RuntimeErrorKind| {
            let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
            let err = vm.run_module().expect_err(src);
            assert_eq!(err.runtime_kind(), Some(kind), "{src} -> {err}");
        };
        check("x = 1 / 0\n", RuntimeErrorKind::ZeroDivision);
        check("x = 1 // 0\n", RuntimeErrorKind::ZeroDivision);
        check("x = [1][5]\n", RuntimeErrorKind::Index);
        check("x = {}['k']\n", RuntimeErrorKind::Key);
        check("x = unknown_name\n", RuntimeErrorKind::Name);
        check("x = 1 + 'a'\n", RuntimeErrorKind::Type);
        check("x = int('zz')\n", RuntimeErrorKind::Value);
        check(
            "def f():\n    return f()\nf()\n",
            RuntimeErrorKind::RecursionLimit,
        );
    }

    #[test]
    fn error_unwinds_to_usable_vm() {
        let src = "def boom():\n    return 1 / 0\ndef ok():\n    return 7\n";
        let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
        vm.run_module().unwrap();
        assert!(vm.call_function("boom", &[]).is_err());
        assert_eq!(vm.call_function("ok", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn del_statement() {
        assert_eq!(
            run_and_get("d = {1: 'a', 2: 'b'}\ndel d[1]\nx = len(d)\n", "x"),
            Value::Int(1)
        );
        assert_eq!(run_render("l = [1, 2, 3]\ndel l[1]\n", "l"), "[1, 3]");
    }

    #[test]
    fn virtual_time_advances_and_scales_with_work() {
        let small = {
            let mut vm = Vm::compile_and_load(
                "s = 0\nfor i in range(100):\n    s += i\n",
                1,
                VmConfig::interp(),
            )
            .unwrap();
            vm.run_module().unwrap();
            vm.now_ns()
        };
        let large = {
            let mut vm = Vm::compile_and_load(
                "s = 0\nfor i in range(10000):\n    s += i\n",
                1,
                VmConfig::interp(),
            )
            .unwrap();
            vm.run_module().unwrap();
            vm.now_ns()
        };
        assert!(small > 0.0);
        assert!(large > small * 20.0, "large {large} vs small {small}");
    }

    #[test]
    fn gc_runs_under_allocation_pressure() {
        let src = "junk = None\nfor i in range(30000):\n    junk = [i, i + 1]\n";
        let mut cfg = VmConfig::interp();
        cfg.noise = crate::noise::NoiseConfig::quiescent();
        let mut vm = Vm::compile_and_load(src, 1, cfg).unwrap();
        vm.run_module().unwrap();
        assert!(vm.counters().gc_cycles > 0, "GC should have run");
        // Garbage must actually be reclaimed: live objects far below allocs.
        assert!(vm.heap_stats().gc_freed > 10_000);
    }

    #[test]
    fn call_function_entry_point() {
        let src = "def add(a, b):\n    return a + b\n";
        let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
        vm.run_module().unwrap();
        let r = vm
            .call_function("add", &[Value::Int(2), Value::Int(40)])
            .unwrap();
        assert_eq!(r, Value::Int(42));
        // Arity mismatch is a TypeError.
        assert!(vm.call_function("add", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn print_captured_when_enabled() {
        let mut cfg = VmConfig::interp();
        cfg.capture_output = true;
        let mut vm = Vm::compile_and_load("print('hi', 1 + 1)\n", 1, cfg).unwrap();
        vm.run_module().unwrap();
        assert_eq!(vm.take_stdout(), "hi 2\n");
    }

    #[test]
    fn enumerate_and_zip() {
        let src = "s = 0\nfor i, v in enumerate([10, 20]):\n    s += i * v\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(20));
        let src = "s = 0\nfor a, b in zip([1, 2], [3, 4, 5]):\n    s += a * b\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(11));
    }

    #[test]
    fn nested_loops() {
        let src = "s = 0\nfor i in range(10):\n    for j in range(10):\n        s += i * j\n";
        assert_eq!(run_and_get(src, "s"), Value::Int(2025));
    }

    #[test]
    fn shadowing_builtins_is_allowed() {
        let src = "def len(x):\n    return 99\nx = len([1])\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(99));
    }

    #[test]
    fn list_comprehensions() {
        assert_eq!(
            run_render("x = [i * i for i in range(5)]\n", "x"),
            "[0, 1, 4, 9, 16]"
        );
        assert_eq!(
            run_render("x = [i for i in range(10) if i % 3 == 0]\n", "x"),
            "[0, 3, 6, 9]"
        );
        assert_eq!(
            run_render(
                "words = ['a', 'bb', 'ccc']\nx = [len(w) for w in words]\n",
                "x"
            ),
            "[1, 2, 3]"
        );
        // Nested comprehension.
        assert_eq!(
            run_render("x = [[j for j in range(i)] for i in range(3)]\n", "x"),
            "[[], [0], [0, 1]]"
        );
        // Tuple target over dict items.
        assert_eq!(
            run_and_get(
                "d = {1: 10, 2: 20}\nx = sum([k + v for k, v in d.items()])\n",
                "x"
            ),
            Value::Int(33)
        );
        // Inside a function body: target becomes a local slot.
        let src = "def f(n):\n    return sum([i * 2 for i in range(n)])\nx = f(5)\n";
        assert_eq!(run_and_get(src, "x"), Value::Int(20));
    }

    #[test]
    fn comprehension_engines_agree() {
        let src = "\
N = 50
def run():
    squares = [i * i for i in range(N)]
    evens = [s for s in squares if s % 2 == 0]
    return sum(evens) + len(squares)
";
        let checksum = crate::session::check_engines_agree(src, 3).unwrap();
        assert_eq!(checksum, "19650");
    }

    #[test]
    fn more_string_methods() {
        assert_eq!(run_render("s = ' pad '.strip()\n", "s"), "pad");
        assert_eq!(run_render("s = 'aBc'.upper()\n", "s"), "ABC");
        assert_eq!(run_render("s = 'aBc'.lower()\n", "s"), "abc");
        assert_eq!(run_render("s = 'aXbXc'.replace('X', '-')\n", "s"), "a-b-c");
        assert_eq!(run_and_get("x = 'hello'.find('ll')\n", "x"), Value::Int(2));
        assert_eq!(run_and_get("x = 'hello'.find('zz')\n", "x"), Value::Int(-1));
        assert_eq!(
            run_and_get("x = 'banana'.count('an')\n", "x"),
            Value::Int(2)
        );
        assert_eq!(
            run_and_get("x = 'hello'.endswith('lo')\n", "x"),
            Value::Bool(true)
        );
        assert_eq!(
            run_render("p = 'one two  three'.split()\n", "p"),
            "['one', 'two', 'three']"
        );
    }

    #[test]
    fn more_list_and_dict_methods() {
        assert_eq!(run_render("l = [1, 2]\nl.insert(1, 9)\n", "l"), "[1, 9, 2]");
        assert_eq!(
            run_render("l = [1, 2]\nl.extend([3, 4])\n", "l"),
            "[1, 2, 3, 4]"
        );
        assert_eq!(run_render("l = [1, 2, 3]\nl.reverse()\n", "l"), "[3, 2, 1]");
        assert_eq!(
            run_and_get("x = [1, 2, 1, 1].count(1)\n", "x"),
            Value::Int(3)
        );
        assert_eq!(run_and_get("x = [5, 6, 7].index(6)\n", "x"), Value::Int(1));
        assert_eq!(run_render("l = [1, 2, 3]\nl.remove(2)\n", "l"), "[1, 3]");
        assert_eq!(
            run_and_get("l = [1]\nc = l.copy()\nc.append(2)\nx = len(l)\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get(
                "d = {'a': 1}\nx = d.setdefault('b', 5) + d.setdefault('a', 9)\n",
                "x"
            ),
            Value::Int(6)
        );
        assert_eq!(
            run_and_get(
                "d = {'a': 1}\nd.update({'b': 2})\nx = d['a'] + d['b']\n",
                "x"
            ),
            Value::Int(3)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nc = d.copy()\nc['a'] = 9\nx = d['a']\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.pop('a')\n", "x"),
            Value::Int(1)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nx = d.pop('z', 7)\n", "x"),
            Value::Int(7)
        );
        assert_eq!(
            run_and_get("d = {'a': 1}\nd.clear()\nx = len(d)\n", "x"),
            Value::Int(0)
        );
    }

    #[test]
    fn builtin_error_paths() {
        let check_err = |src: &str| {
            let mut vm = Vm::compile_and_load(src, 1, VmConfig::interp()).unwrap();
            assert!(vm.run_module().is_err(), "{src} should raise");
        };
        check_err("x = min([])\n");
        check_err("x = sqrt(-1)\n");
        check_err("x = log(0)\n");
        check_err("x = ord('ab')\n");
        check_err("x = [1].pop(5)\n");
        check_err("x = [].pop()\n");
        check_err("x = [1].index(9)\n");
        check_err("x = {}.pop('k')\n");
        check_err("x = range(1, 2, 0)\n");
        check_err("x = 'a'.split('')\n");
        check_err("x = len(3)\n");
        check_err("x = min(1, 'a')\n");
        check_err("d = {[1]: 2}\n");
        check_err("x = sorted([1, 'a'])\n");
    }

    #[test]
    fn range_edge_cases() {
        assert_eq!(run_and_get("x = len(range(0))\n", "x"), Value::Int(0));
        assert_eq!(run_and_get("x = len(range(5, 5))\n", "x"), Value::Int(0));
        assert_eq!(
            run_and_get("x = len(range(10, 0, -3))\n", "x"),
            Value::Int(4)
        );
        assert_eq!(
            run_and_get("x = 6 in range(0, 10, 2)\n", "x"),
            Value::Bool(true)
        );
        assert_eq!(
            run_and_get("x = 5 in range(0, 10, 2)\n", "x"),
            Value::Bool(false)
        );
        assert_eq!(
            run_and_get("x = 8 in range(10, 0, -2)\n", "x"),
            Value::Bool(true)
        );
    }

    #[test]
    fn time_budget_aborts_infinite_loop() {
        let mut cfg = VmConfig::interp();
        cfg.time_budget_ns = Some(1.0e7);
        let mut vm = Vm::compile_and_load("while True:\n    pass\n", 1, cfg).unwrap();
        let err = vm.run_module().expect_err("must hit budget");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::Timeout));
    }

    #[test]
    fn budget_error_unwinds_to_usable_vm() {
        // After a deadline abort the frame stack is unwound, so the same VM
        // can keep serving calls — the property the retrying harness relies
        // on when it reuses nothing but still must not see a poisoned state.
        let mut cfg = VmConfig::interp();
        cfg.step_budget = Some(5_000);
        let src = "def spin():\n    while True:\n        pass\ndef ok():\n    return 7\n";
        let mut vm = Vm::compile_and_load(src, 1, cfg).unwrap();
        vm.run_module().unwrap();
        let err = vm
            .call_function("spin", &[])
            .expect_err("must exhaust fuel");
        assert_eq!(err.runtime_kind(), Some(RuntimeErrorKind::FuelExhausted));
        assert_eq!(vm.call_function("ok", &[]).unwrap(), Value::Int(7));
    }
}
