//! AST → bytecode compiler.
//!
//! Locals are resolved to slots at compile time by a pre-pass that collects
//! every name assigned anywhere in a function body (assignment, `for` targets,
//! nested `def`s), exactly like CPython's symbol-table pass. Names declared
//! `global` and names that are only read resolve to global loads.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Module, Stmt, Target, UnaryOp};
use crate::bytecode::{fusable_bin_index, Code, Const, Op, Program};
use crate::error::{MpError, MpResult, Span};
use crate::parser::parse;

/// Compiles MiniPy source text into a [`Program`].
///
/// # Errors
///
/// Returns lex, parse or compile errors.
pub fn compile(source: &str) -> MpResult<Program> {
    let mut program = compile_unfused(source)?;
    fuse_program(&mut program);
    Ok(program)
}

/// Compiles without the superinstruction fusion pass.
///
/// Execution of the unfused program is bit-identical (virtual time, counters,
/// results) to the fused one — the equivalence tests use this as the
/// reference.
///
/// # Errors
///
/// Returns lex, parse or compile errors.
pub fn compile_unfused(source: &str) -> MpResult<Program> {
    let module = parse(source)?;
    compile_module(&module)
}

/// Rewrites each code object's instruction stream, replacing common
/// straight-line sequences with superinstructions: `load; load; binop`
/// (optionally followed by a store or a conditional jump) and
/// `load; load; IndexLoad`.
///
/// Absorbed slots are padded with [`Op::Nop`] so instruction indices — jump
/// targets, back-edge pcs, JIT region spans, per-code op counts — are
/// unchanged. A sequence is only fused when no jump lands on any op after
/// its head (a jump to the head is fine), so the padding `Nop`s are
/// unreachable.
pub fn fuse_program(program: &mut Program) {
    for code in &mut program.codes {
        fuse_code(code);
    }
}

fn fuse_code(code: &mut Code) {
    let n = code.ops.len();
    let mut is_target = vec![false; n + 1];
    for op in &code.ops {
        if let Some(t) = op.jump_target() {
            is_target[t as usize] = true;
        }
    }
    let mut i = 0;
    while i + 2 < n {
        // The two-op `for`-loop head: `ForIter; StoreLocal`. `continue`
        // jumps target the `ForIter` itself, so interior targets are rare.
        if !is_target[i + 1] {
            if let (Op::ForIter(t), Op::StoreLocal(d)) = (code.ops[i], code.ops[i + 1]) {
                if let Ok(t) = u16::try_from(t) {
                    code.ops[i] = Op::FusedForSt { t, d };
                    code.ops[i + 1] = Op::Nop;
                    i += 2;
                    continue;
                }
            }
            // The inner subscript of a nested chain (`A[i][k]`): the
            // container is already on the stack, so only the index load and
            // the subscript fuse. Checked before the pair window so it only
            // fires when no wider local-local fusion applies (a preceding
            // `LoadLocal` would have been absorbed at the previous position).
            if let (Op::LoadLocal(b), Op::IndexLoad) = (code.ops[i], code.ops[i + 1]) {
                code.ops[i] = Op::FusedSIdx { b };
                code.ops[i + 1] = Op::Nop;
                i += 2;
                continue;
            }
        }
        if is_target[i + 1] || is_target[i + 2] {
            i += 1;
            continue;
        }
        // Every fusion starts with a local load followed by a second load
        // (local or constant); `s` is the second operand's slot/const index.
        let pair = match (code.ops[i], code.ops[i + 1]) {
            (Op::LoadLocal(a), Op::LoadLocal(b)) => Some((a, b, false)),
            (Op::LoadLocal(a), Op::LoadConst(c)) => Some((a, c, true)),
            _ => None,
        };
        let Some((a, s, second_is_const)) = pair else {
            i += 1;
            continue;
        };
        let tail = code.ops[i + 2];

        // Widest match first: a binop followed by a store or a conditional
        // jump fuses to a four-op superinstruction (the accumulate,
        // increment and loop-header shapes).
        let four = if i + 3 < n && !is_target[i + 3] {
            match (fusable_bin_index(tail), code.ops[i + 3]) {
                (Some(bin), Op::StoreLocal(d)) => Some(if second_is_const {
                    Op::FusedLCBinSt { a, c: s, d, bin }
                } else {
                    Op::FusedLLBinSt { a, b: s, d, bin }
                }),
                (Some(bin), Op::PopJumpIfFalse(t)) => u16::try_from(t).ok().map(|t| {
                    if second_is_const {
                        Op::FusedLCCmpJf { a, c: s, t, bin }
                    } else {
                        Op::FusedLLCmpJf { a, b: s, t, bin }
                    }
                }),
                // Subscript assignment (`xs[i] = y`, `xs[i] = CONST`): the
                // container and index are local loads, the value is the
                // third load, and `IndexStore` consumes all three.
                _ => match (second_is_const, tail, code.ops[i + 3]) {
                    (false, Op::LoadLocal(v), Op::IndexStore) => {
                        Some(Op::FusedLLLIdxSt { a, b: s, v })
                    }
                    (false, Op::LoadConst(c), Op::IndexStore) => {
                        Some(Op::FusedLLCIdxSt { a, b: s, c })
                    }
                    _ => None,
                },
            }
        } else {
            None
        };
        if let Some(f) = four {
            code.ops[i] = f;
            for pad in &mut code.ops[i + 1..i + 4] {
                *pad = Op::Nop;
            }
            i += 4;
            continue;
        }

        let three = match tail {
            Op::IndexLoad => Some(if second_is_const {
                Op::FusedLCIdx { a, c: s }
            } else {
                Op::FusedLLIdx { a, b: s }
            }),
            // Subscript store with the container already on the stack
            // (`C[i][j] = s`): the two loads are the index and the value.
            Op::IndexStore => Some(if second_is_const {
                Op::FusedSCIdxSt { b: a, c: s }
            } else {
                Op::FusedSLIdxSt { b: a, v: s }
            }),
            _ => fusable_bin_index(tail).map(|bin| {
                if second_is_const {
                    Op::FusedLCBin { a, c: s, bin }
                } else {
                    Op::FusedLLBin { a, b: s, bin }
                }
            }),
        };
        match three {
            Some(f) => {
                code.ops[i] = f;
                code.ops[i + 1] = Op::Nop;
                code.ops[i + 2] = Op::Nop;
                i += 3;
            }
            None => i += 1,
        }
    }
}

/// Compiles an already-parsed module.
///
/// # Errors
///
/// Returns [`MpError::Compile`] on semantic errors (bad targets, too many
/// locals, `break` outside a loop, ...).
pub fn compile_module(module: &Module) -> MpResult<Program> {
    let mut program = Program::default();
    // Reserve index 0 for the module body.
    program.codes.push(Code::default());
    let module_code = {
        let mut ctx = FnCtx::module_scope();
        let mut cg = CodeGen::new("<module>".to_string(), &mut program, &mut ctx);
        cg.stmts(&module.body)?;
        let none_idx = cg.const_idx(Const::None)?;
        cg.emit(Op::LoadConst(none_idx), Span::synthetic());
        cg.emit(Op::Return, Span::synthetic());
        cg.finish(0)
    };
    program.codes[0] = module_code;
    Ok(program)
}

/// Per-function compilation context: scope kind and local-slot table.
struct FnCtx {
    /// `None` for module scope (all names are globals).
    locals: Option<HashMap<String, u16>>,
    n_params: u16,
}

impl FnCtx {
    fn module_scope() -> Self {
        FnCtx {
            locals: None,
            n_params: 0,
        }
    }

    fn function_scope(params: &[String], body: &[Stmt], span: Span) -> MpResult<Self> {
        let mut assigned: Vec<String> = Vec::new();
        let mut globals: Vec<String> = Vec::new();
        collect_assigned(body, &mut assigned, &mut globals);
        let mut locals = HashMap::new();
        for p in params {
            if locals.insert(p.clone(), locals.len() as u16).is_some() {
                return Err(MpError::Compile {
                    message: format!("duplicate parameter '{p}'"),
                    span,
                });
            }
        }
        for name in assigned {
            if globals.contains(&name) || locals.contains_key(&name) {
                continue;
            }
            let idx = locals.len();
            if idx > u16::MAX as usize {
                return Err(MpError::Compile {
                    message: "too many locals".into(),
                    span,
                });
            }
            locals.insert(name, idx as u16);
        }
        Ok(FnCtx {
            locals: Some(locals),
            n_params: params.len() as u16,
        })
    }

    fn slot(&self, name: &str) -> Option<u16> {
        self.locals.as_ref().and_then(|m| m.get(name).copied())
    }

    fn n_locals(&self) -> u16 {
        self.locals.as_ref().map(|m| m.len() as u16).unwrap_or(0)
    }
}

/// Collects names assigned in a statement list (without descending into nested
/// `def` bodies — those are separate scopes) plus `global` declarations.
/// Comprehension targets inside expressions are assignments too (MiniPy
/// comprehension variables share the enclosing scope, like Python 2).
fn collect_assigned(body: &[Stmt], assigned: &mut Vec<String>, globals: &mut Vec<String>) {
    fn target_names(t: &Target, out: &mut Vec<String>) {
        match t {
            Target::Name { name, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Target::Index { .. } => {}
            Target::Tuple { elts, .. } => {
                for e in elts {
                    target_names(e, out);
                }
            }
        }
    }
    fn expr_targets(root: &Expr, out: &mut Vec<String>) {
        // Iterative worklist: expressions can be arbitrarily deep
        // left-spines (`a + b + c + ...`), so no recursion here.
        let mut work: Vec<&Expr> = vec![root];
        while let Some(e) = work.pop() {
            match e {
                Expr::ListComp {
                    expr,
                    target,
                    iterable,
                    cond,
                    ..
                } => {
                    target_names(target, out);
                    work.push(expr);
                    work.push(iterable);
                    if let Some(c) = cond {
                        work.push(c);
                    }
                }
                Expr::Binary { left, right, .. } | Expr::BoolChain { left, right, .. } => {
                    work.push(left);
                    work.push(right);
                }
                Expr::Unary { operand, .. } => work.push(operand),
                Expr::Call { callee, args, .. } => {
                    work.push(callee);
                    work.extend(args.iter());
                }
                Expr::MethodCall { receiver, args, .. } => {
                    work.push(receiver);
                    work.extend(args.iter());
                }
                Expr::Index { object, index, .. } => {
                    work.push(object);
                    work.push(index);
                }
                Expr::Slice { object, lo, hi, .. } => {
                    work.push(object);
                    if let Some(l) = lo {
                        work.push(l);
                    }
                    if let Some(h) = hi {
                        work.push(h);
                    }
                }
                Expr::List { items, .. } | Expr::Tuple { items, .. } => {
                    work.extend(items.iter());
                }
                Expr::Dict { pairs, .. } => {
                    for (k, v) in pairs {
                        work.push(k);
                        work.push(v);
                    }
                }
                Expr::IfExp {
                    cond, then, orelse, ..
                } => {
                    work.push(cond);
                    work.push(then);
                    work.push(orelse);
                }
                _ => {}
            }
        }
    }
    fn stmt_exprs(stmt: &Stmt, out: &mut Vec<String>) {
        match stmt {
            Stmt::Expr { value } => expr_targets(value, out),
            Stmt::Assign { value, .. } | Stmt::AugAssign { value, .. } => {
                expr_targets(value, out);
            }
            Stmt::If { cond, .. } => expr_targets(cond, out),
            Stmt::While { cond, .. } => expr_targets(cond, out),
            Stmt::For { iterable, .. } => expr_targets(iterable, out),
            Stmt::Return { value: Some(v), .. } => expr_targets(v, out),
            Stmt::DelIndex { object, index, .. } => {
                expr_targets(object, out);
                expr_targets(index, out);
            }
            _ => {}
        }
    }
    for stmt in body {
        stmt_exprs(stmt, assigned);
        match stmt {
            Stmt::Assign { target, .. } | Stmt::AugAssign { target, .. } => {
                target_names(target, assigned);
            }
            Stmt::For { target, body, .. } => {
                target_names(target, assigned);
                collect_assigned(body, assigned, globals);
            }
            Stmt::If { then, orelse, .. } => {
                collect_assigned(then, assigned, globals);
                collect_assigned(orelse, assigned, globals);
            }
            Stmt::While { body, .. } => collect_assigned(body, assigned, globals),
            Stmt::Def { name, .. } if !assigned.contains(name) => {
                assigned.push(name.clone());
            }
            Stmt::Global { names, .. } => {
                for n in names {
                    if !globals.contains(n) {
                        globals.push(n.clone());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Tracks an enclosing loop during codegen, for `break`/`continue` patching.
struct LoopCtx {
    /// Target of `continue` (loop head / `ForIter`).
    continue_target: u32,
    /// Indices of `Jump` placeholders to patch to the loop exit.
    break_jumps: Vec<usize>,
    /// True for `for` loops: the iterator lives on the stack and must be
    /// popped when breaking out.
    is_for: bool,
}

struct CodeGen<'a> {
    name: String,
    ops: Vec<Op>,
    lines: Vec<u32>,
    consts: Vec<Const>,
    names: Vec<String>,
    loops: Vec<LoopCtx>,
    program: &'a mut Program,
    ctx: &'a mut FnCtx,
}

impl<'a> CodeGen<'a> {
    fn new(name: String, program: &'a mut Program, ctx: &'a mut FnCtx) -> Self {
        CodeGen {
            name,
            ops: Vec::new(),
            lines: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            loops: Vec::new(),
            program,
            ctx,
        }
    }

    fn finish(self, _code_slot: usize) -> Code {
        Code {
            name: self.name,
            n_params: self.ctx.n_params,
            n_locals: self.ctx.n_locals(),
            ops: self.ops,
            lines: self.lines,
            consts: self.consts,
            names: self.names,
        }
    }

    fn emit(&mut self, op: Op, span: Span) -> usize {
        self.ops.push(op);
        self.lines.push(span.line);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        let op = match self.ops[at] {
            Op::Jump(_) => Op::Jump(target),
            Op::PopJumpIfFalse(_) => Op::PopJumpIfFalse(target),
            Op::PopJumpIfTrue(_) => Op::PopJumpIfTrue(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            Op::ForIter(_) => Op::ForIter(target),
            other => panic!("patch_jump on non-jump {other:?}"),
        };
        self.ops[at] = op;
    }

    fn const_idx(&mut self, c: Const) -> MpResult<u16> {
        if let Some(i) = self.consts.iter().position(|x| match (x, &c) {
            // Float NaN never equals itself; compare bit patterns for dedup.
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }) {
            return Ok(i as u16);
        }
        if self.consts.len() > u16::MAX as usize {
            return Err(MpError::Compile {
                message: "too many constants".into(),
                span: Span::synthetic(),
            });
        }
        self.consts.push(c);
        Ok((self.consts.len() - 1) as u16)
    }

    fn name_idx(&mut self, name: &str) -> MpResult<u16> {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Ok(i as u16);
        }
        if self.names.len() > u16::MAX as usize {
            return Err(MpError::Compile {
                message: "too many names".into(),
                span: Span::synthetic(),
            });
        }
        self.names.push(name.to_string());
        Ok((self.names.len() - 1) as u16)
    }

    fn stmts(&mut self, body: &[Stmt]) -> MpResult<()> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> MpResult<()> {
        match stmt {
            Stmt::Expr { value } => {
                let span = value.span();
                self.expr(value)?;
                self.emit(Op::Pop, span);
            }
            Stmt::Assign { target, value } => match target {
                Target::Index {
                    object,
                    index,
                    span,
                } => {
                    self.expr(object)?;
                    self.expr(index)?;
                    self.expr(value)?;
                    self.emit(Op::IndexStore, *span);
                }
                _ => {
                    self.expr(value)?;
                    self.store_target(target)?;
                }
            },
            Stmt::AugAssign { target, op, value } => self.aug_assign(target, *op, value)?,
            Stmt::If { cond, then, orelse } => {
                let span = cond.span();
                self.expr(cond)?;
                let jf = self.emit(Op::PopJumpIfFalse(0), span);
                self.stmts(then)?;
                if orelse.is_empty() {
                    let end = self.here();
                    self.patch_jump(jf, end);
                } else {
                    let jend = self.emit(Op::Jump(0), span);
                    let else_start = self.here();
                    self.patch_jump(jf, else_start);
                    self.stmts(orelse)?;
                    let end = self.here();
                    self.patch_jump(jend, end);
                }
            }
            Stmt::While { cond, body } => {
                let span = cond.span();
                let head = self.here();
                self.expr(cond)?;
                let jexit = self.emit(Op::PopJumpIfFalse(0), span);
                self.loops.push(LoopCtx {
                    continue_target: head,
                    break_jumps: Vec::new(),
                    is_for: false,
                });
                self.stmts(body)?;
                self.emit(Op::Jump(head), span);
                let exit = self.here();
                self.patch_jump(jexit, exit);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch_jump(j, exit);
                }
            }
            Stmt::For {
                target,
                iterable,
                body,
            } => {
                let span = iterable.span();
                self.expr(iterable)?;
                self.emit(Op::GetIter, span);
                let head = self.here();
                let for_iter = self.emit(Op::ForIter(0), span);
                self.store_target(target)?;
                self.loops.push(LoopCtx {
                    continue_target: head,
                    break_jumps: Vec::new(),
                    is_for: true,
                });
                self.stmts(body)?;
                self.emit(Op::Jump(head), span);
                let exit = self.here();
                self.patch_jump(for_iter, exit);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch_jump(j, exit);
                }
            }
            Stmt::Def {
                name,
                params,
                body,
                span,
            } => {
                let code_id = self.compile_function(name, params, body, *span)?;
                let cidx = self.const_idx(Const::Func(code_id))?;
                self.emit(Op::MakeFunction(cidx), *span);
                self.store_name(name, *span)?;
            }
            Stmt::Return { value, span } => {
                match value {
                    Some(v) => self.expr(v)?,
                    None => {
                        let c = self.const_idx(Const::None)?;
                        self.emit(Op::LoadConst(c), *span);
                    }
                }
                self.emit(Op::Return, *span);
            }
            Stmt::Break { span } => {
                let is_for = match self.loops.last() {
                    Some(l) => l.is_for,
                    None => {
                        return Err(MpError::Compile {
                            message: "'break' outside loop".into(),
                            span: *span,
                        });
                    }
                };
                if is_for {
                    // Discard the loop iterator that still sits on the stack.
                    self.emit(Op::Pop, *span);
                }
                let j = self.emit(Op::Jump(0), *span);
                self.loops
                    .last_mut()
                    .expect("checked above")
                    .break_jumps
                    .push(j);
            }
            Stmt::Continue { span } => {
                let target = match self.loops.last() {
                    Some(l) => l.continue_target,
                    None => {
                        return Err(MpError::Compile {
                            message: "'continue' outside loop".into(),
                            span: *span,
                        });
                    }
                };
                self.emit(Op::Jump(target), *span);
            }
            Stmt::Pass => {}
            Stmt::Global { names, span } => {
                // Validity is handled by the scope pre-pass; reject declaring a
                // parameter global, which CPython also refuses.
                for n in names {
                    if self.ctx.slot(n).is_some() {
                        return Err(MpError::Compile {
                            message: format!("name '{n}' is parameter and global"),
                            span: *span,
                        });
                    }
                }
            }
            Stmt::DelIndex {
                object,
                index,
                span,
            } => {
                self.expr(object)?;
                self.expr(index)?;
                self.emit(Op::IndexDel, *span);
            }
        }
        Ok(())
    }

    fn compile_function(
        &mut self,
        name: &str,
        params: &[String],
        body: &[Stmt],
        span: Span,
    ) -> MpResult<usize> {
        let mut ctx = FnCtx::function_scope(params, body, span)?;
        // Reserve the slot in the program before generating code so nested
        // defs receive distinct ids.
        let code_id = self.program.codes.len();
        self.program.codes.push(Code::default());
        let code = {
            let mut cg = CodeGen::new(name.to_string(), self.program, &mut ctx);
            cg.stmts(body)?;
            let c = cg.const_idx(Const::None)?;
            cg.emit(Op::LoadConst(c), span);
            cg.emit(Op::Return, span);
            cg.finish(code_id)
        };
        self.program.codes[code_id] = code;
        Ok(code_id)
    }

    fn store_name(&mut self, name: &str, span: Span) -> MpResult<()> {
        if let Some(slot) = self.ctx.slot(name) {
            self.emit(Op::StoreLocal(slot), span);
        } else {
            let idx = self.name_idx(name)?;
            self.emit(Op::StoreGlobal(idx), span);
        }
        Ok(())
    }

    fn load_name(&mut self, name: &str, span: Span) -> MpResult<()> {
        if let Some(slot) = self.ctx.slot(name) {
            self.emit(Op::LoadLocal(slot), span);
        } else {
            let idx = self.name_idx(name)?;
            self.emit(Op::LoadGlobal(idx), span);
        }
        Ok(())
    }

    /// Compiles a store of TOS into `target`.
    fn store_target(&mut self, target: &Target) -> MpResult<()> {
        match target {
            Target::Name { name, span } => self.store_name(name, *span),
            Target::Index { span, .. } => {
                // `Stmt::Assign` compiles subscript stores directly with
                // operands in [obj, idx, val] order; reaching here means a
                // subscript target in a position we do not support
                // (e.g. `for d[k] in ...`).
                Err(MpError::Compile {
                    message: "subscript target not allowed here".into(),
                    span: *span,
                })
            }
            Target::Tuple { elts, span } => {
                self.emit(Op::UnpackSequence(elts.len() as u16), *span);
                // UnpackSequence pushes elements in reverse so that the first
                // element ends on top; store in source order.
                for t in elts {
                    match t {
                        Target::Name { name, span } => self.store_name(name, *span)?,
                        _ => {
                            return Err(MpError::Compile {
                                message: "only names allowed in tuple unpacking".into(),
                                span: *span,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn aug_assign(&mut self, target: &Target, op: BinOp, value: &Expr) -> MpResult<()> {
        match target {
            Target::Name { name, span } => {
                self.load_name(name, *span)?;
                self.expr(value)?;
                self.binary_op(op, *span);
                self.store_name(name, *span)
            }
            Target::Index {
                object,
                index,
                span,
            } => {
                self.expr(object)?;
                self.expr(index)?;
                self.emit(Op::Dup2, *span);
                self.emit(Op::IndexLoad, *span);
                self.expr(value)?;
                self.binary_op(op, *span);
                self.emit(Op::IndexStore, *span);
                Ok(())
            }
            Target::Tuple { span, .. } => Err(MpError::Compile {
                message: "augmented assignment target cannot be a tuple".into(),
                span: *span,
            }),
        }
    }

    fn binary_op(&mut self, op: BinOp, span: Span) {
        let o = match op {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            BinOp::FloorDiv => Op::FloorDiv,
            BinOp::Mod => Op::Mod,
            BinOp::Pow => Op::Pow,
            BinOp::Eq => Op::CmpEq,
            BinOp::NotEq => Op::CmpNe,
            BinOp::Lt => Op::CmpLt,
            BinOp::LtEq => Op::CmpLe,
            BinOp::Gt => Op::CmpGt,
            BinOp::GtEq => Op::CmpGe,
            BinOp::In => Op::CmpIn,
            BinOp::NotIn => Op::CmpNotIn,
        };
        self.emit(o, span);
    }

    fn expr(&mut self, e: &Expr) -> MpResult<()> {
        match e {
            Expr::Int { value, span } => {
                let c = self.const_idx(Const::Int(*value))?;
                self.emit(Op::LoadConst(c), *span);
            }
            Expr::Float { value, span } => {
                let c = self.const_idx(Const::Float(*value))?;
                self.emit(Op::LoadConst(c), *span);
            }
            Expr::Str { value, span } => {
                let c = self.const_idx(Const::Str(value.clone()))?;
                self.emit(Op::LoadConst(c), *span);
            }
            Expr::Bool { value, span } => {
                let c = self.const_idx(Const::Bool(*value))?;
                self.emit(Op::LoadConst(c), *span);
            }
            Expr::None { span } => {
                let c = self.const_idx(Const::None)?;
                self.emit(Op::LoadConst(c), *span);
            }
            Expr::Name { name, span } => self.load_name(name, *span)?,
            Expr::Binary { .. } => {
                // Long left-associative chains (`a + b + c + ...`) produce
                // left spines thousands of nodes deep; walk the spine
                // iteratively so compilation depth stays bounded by the
                // nesting of *parenthesized* expressions only.
                let mut spine = Vec::new();
                let mut node = e;
                while let Expr::Binary {
                    op,
                    left,
                    right,
                    span,
                } = node
                {
                    spine.push((*op, right.as_ref(), *span));
                    node = left;
                }
                self.expr(node)?;
                for (op, right, span) in spine.into_iter().rev() {
                    self.expr(right)?;
                    self.binary_op(op, span);
                }
            }
            Expr::Unary { op, operand, span } => {
                self.expr(operand)?;
                match op {
                    UnaryOp::Neg => {
                        self.emit(Op::Neg, *span);
                    }
                    UnaryOp::Not => {
                        self.emit(Op::Not, *span);
                    }
                    UnaryOp::Pos => {} // +x is a no-op on numbers
                }
            }
            Expr::BoolChain {
                is_and,
                left,
                right,
                span,
            } => {
                self.expr(left)?;
                let j = if *is_and {
                    self.emit(Op::JumpIfFalsePeek(0), *span)
                } else {
                    self.emit(Op::JumpIfTruePeek(0), *span)
                };
                self.expr(right)?;
                let end = self.here();
                self.patch_jump(j, end);
            }
            Expr::Call { callee, args, span } => {
                self.expr(callee)?;
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Op::Call(args.len() as u16), *span);
            }
            Expr::MethodCall {
                receiver,
                method,
                args,
                span,
            } => {
                self.expr(receiver)?;
                for a in args {
                    self.expr(a)?;
                }
                let name = self.name_idx(method)?;
                self.emit(
                    Op::CallMethod {
                        name,
                        argc: args.len() as u16,
                    },
                    *span,
                );
            }
            Expr::Index {
                object,
                index,
                span,
            } => {
                self.expr(object)?;
                self.expr(index)?;
                self.emit(Op::IndexLoad, *span);
            }
            Expr::Slice {
                object,
                lo,
                hi,
                span,
            } => {
                self.expr(object)?;
                match lo {
                    Some(l) => self.expr(l)?,
                    None => {
                        let c = self.const_idx(Const::None)?;
                        self.emit(Op::LoadConst(c), *span);
                    }
                }
                match hi {
                    Some(h) => self.expr(h)?,
                    None => {
                        let c = self.const_idx(Const::None)?;
                        self.emit(Op::LoadConst(c), *span);
                    }
                }
                self.emit(Op::SliceLoad, *span);
            }
            Expr::List { items, span } => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Op::BuildList(items.len() as u16), *span);
            }
            Expr::Tuple { items, span } => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Op::BuildTuple(items.len() as u16), *span);
            }
            Expr::Dict { pairs, span } => {
                for (k, v) in pairs {
                    self.expr(k)?;
                    self.expr(v)?;
                }
                self.emit(Op::BuildDict(pairs.len() as u16), *span);
            }
            Expr::IfExp {
                cond,
                then,
                orelse,
                span,
            } => {
                self.expr(cond)?;
                let jf = self.emit(Op::PopJumpIfFalse(0), *span);
                self.expr(then)?;
                let jend = self.emit(Op::Jump(0), *span);
                let else_start = self.here();
                self.patch_jump(jf, else_start);
                self.expr(orelse)?;
                let end = self.here();
                self.patch_jump(jend, end);
            }
            Expr::ListComp {
                expr,
                target,
                iterable,
                cond,
                span,
            } => {
                // [expr for target in iterable if cond] compiles to:
                //   BuildList(0); <iterable>; GetIter
                //   head: ForIter(exit); store target
                //         [cond; PopJumpIfFalse(head)]
                //         <expr>; ListAppend(2); Jump(head)
                //   exit:               -- ForIter popped the iterator
                self.emit(Op::BuildList(0), *span);
                self.expr(iterable)?;
                self.emit(Op::GetIter, *span);
                let head = self.here();
                let for_iter = self.emit(Op::ForIter(0), *span);
                self.store_target(target)?;
                if let Some(c) = cond {
                    self.expr(c)?;
                    self.emit(Op::PopJumpIfFalse(head), *span);
                }
                self.expr(expr)?;
                self.emit(Op::ListAppend(2), *span);
                self.emit(Op::Jump(head), *span);
                let exit = self.here();
                self.patch_jump(for_iter, exit);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_ok(src: &str) -> Program {
        compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn module_body_is_code_zero() {
        let p = compile_ok("x = 1\n");
        assert_eq!(p.codes[0].name, "<module>");
        assert!(p.codes[0].ops.contains(&Op::StoreGlobal(0)));
    }

    #[test]
    fn function_locals_get_slots() {
        let p = compile_unfused("def f(a, b):\n    c = a + b\n    return c\n").unwrap();
        let f = &p.codes[1];
        assert_eq!(f.n_params, 2);
        assert_eq!(f.n_locals, 3);
        assert!(f.ops.contains(&Op::LoadLocal(0)));
        assert!(f.ops.contains(&Op::StoreLocal(2)));
        // No global traffic inside the function body.
        assert!(!f
            .ops
            .iter()
            .any(|o| matches!(o, Op::LoadGlobal(_) | Op::StoreGlobal(_))));
    }

    #[test]
    fn fusion_replaces_sequence_and_pads_with_nops() {
        // `c = a + b` takes the widest shape: load, load, add, store.
        let p = compile_ok("def f(a, b):\n    c = a + b\n    return c\n");
        let f = &p.codes[1];
        assert_eq!(
            f.ops[0],
            Op::FusedLLBinSt {
                a: 0,
                b: 1,
                d: 2,
                bin: 0
            }
        );
        assert_eq!(&f.ops[1..4], &[Op::Nop, Op::Nop, Op::Nop]);
        // A bare expression (no store) still gets the three-op fusion.
        let p3 = compile_ok("def g(a, b):\n    return a + b\n");
        assert!(p3.codes[1]
            .ops
            .iter()
            .any(|o| matches!(o, Op::FusedLLBin { a: 0, b: 1, bin: 0 })));
        // Op count is identical to the unfused compile: fusion pads, never
        // shrinks, so pcs stay valid.
        let u = compile_unfused("def f(a, b):\n    c = a + b\n    return c\n").unwrap();
        assert_eq!(f.ops.len(), u.codes[1].ops.len());
    }

    /// Expands every superinstruction in `program` back to the sequence it
    /// absorbed, consuming its `Nop` padding. The result must equal the
    /// unfused compile exactly — fusion is a pure re-encoding.
    fn unfuse_program(program: &Program) -> Program {
        let mut out = program.clone();
        for code in &mut out.codes {
            let mut i = 0;
            while i < code.ops.len() {
                match code.ops[i].unfused_seq() {
                    Some(seq) => {
                        for (k, op) in seq.iter().enumerate() {
                            assert!(
                                k == 0 || code.ops[i + k] == Op::Nop,
                                "fused op at {i} not padded with Nops:\n{}",
                                code.disassemble()
                            );
                            code.ops[i + k] = *op;
                        }
                        i += seq.len();
                    }
                    None => i += 1,
                }
            }
        }
        out
    }

    #[test]
    fn fusion_is_a_pure_reencoding_of_the_unfused_program() {
        // Exercises all fusion shapes: loop header (`while i < n`),
        // accumulate (`s = s + xs[i]` — subscript + binop + store),
        // increment (`i = i + 1`), and an `if` comparison.
        let src = "def f(n, xs):\n    s = 0\n    i = 0\n    while i < n:\n        s = s + xs[i]\n        if s > 100:\n            s = s - 100\n        i = i + 1\n    return s\n";
        let fused = compile_ok(src);
        let unfused = compile_unfused(src).unwrap();
        assert_eq!(unfuse_program(&fused), unfused);

        // Jumps into the interior of any fused sequence are forbidden.
        for code in &fused.codes {
            for op in &code.ops {
                if let Some(t) = op.jump_target() {
                    let t = t as usize;
                    for back in 1..4usize {
                        if let Some(head) = t.checked_sub(back).map(|h| code.ops[h]) {
                            if let Some(seq) = head.unfused_seq() {
                                assert!(
                                    seq.len() <= back,
                                    "jump target {t} lands inside the fused op at {}:\n{}",
                                    t - back,
                                    code.disassemble()
                                );
                            }
                        }
                    }
                }
            }
        }

        // The loop actually produced the wide shapes, not just pair fusions.
        let f = &fused.codes[1];
        assert!(
            f.ops.iter().any(|o| matches!(o, Op::FusedLLCmpJf { .. })),
            "loop header did not fuse:\n{}",
            f.disassemble()
        );
        assert!(
            f.ops.iter().any(|o| matches!(o, Op::FusedLCBinSt { .. })),
            "increment did not fuse:\n{}",
            f.disassemble()
        );
        assert!(
            f.ops.iter().any(|o| matches!(o, Op::FusedLLIdx { .. })),
            "subscript did not fuse:\n{}",
            f.disassemble()
        );
    }

    #[test]
    fn fusion_over_whole_suite_roundtrips() {
        for w in rigor_workloads_sources() {
            let fused = compile_ok(&w);
            let unfused = compile_unfused(&w).unwrap();
            assert_eq!(unfuse_program(&fused), unfused);
        }
    }

    /// A handful of representative sources exercising fusion edge cases
    /// (the full-suite sweep lives in the integration tests, which can see
    /// the workloads crate).
    fn rigor_workloads_sources() -> Vec<String> {
        vec![
            "def f(a, b):\n    c = a + b\n    return c\n".into(),
            "def f(n):\n    i = 0\n    while i < n:\n        i = i + 1\n    return i\n".into(),
            "def f(xs, i):\n    return xs[i] + xs[0]\n".into(),
            "def f(x):\n    if x > 0:\n        return x\n    return 0 - x\n".into(),
        ]
    }

    #[test]
    fn read_only_names_are_global_loads() {
        let p = compile_ok("def f():\n    return N + 1\n");
        let f = &p.codes[1];
        assert!(f.ops.iter().any(|o| matches!(o, Op::LoadGlobal(_))));
        assert_eq!(f.n_locals, 0);
    }

    #[test]
    fn global_declaration_forces_global_store() {
        let p = compile_ok("def f():\n    global n\n    n = 1\n");
        let f = &p.codes[1];
        assert!(f.ops.iter().any(|o| matches!(o, Op::StoreGlobal(_))));
        assert_eq!(f.n_locals, 0);
    }

    #[test]
    fn while_loop_shape() {
        let p = compile_ok("i = 0\nwhile i < 10:\n    i += 1\n");
        let m = &p.codes[0];
        // Contains a backward jump.
        let has_backedge = m
            .ops
            .iter()
            .enumerate()
            .any(|(i, op)| matches!(op, Op::Jump(t) if (*t as usize) < i));
        assert!(has_backedge, "{}", m.disassemble());
    }

    #[test]
    fn for_loop_uses_iter_protocol() {
        let p = compile_ok("for i in range(10):\n    pass\n");
        let m = &p.codes[0];
        assert!(m.ops.contains(&Op::GetIter));
        assert!(m.ops.iter().any(|o| matches!(o, Op::ForIter(_))));
    }

    #[test]
    fn break_in_for_pops_iterator() {
        let p = compile_ok("for i in range(10):\n    break\n");
        let m = &p.codes[0];
        let for_pos = m
            .ops
            .iter()
            .position(|o| matches!(o, Op::ForIter(_)))
            .unwrap();
        // A Pop must appear between ForIter and the break Jump.
        let pop_after = m.ops[for_pos..].iter().any(|o| matches!(o, Op::Pop));
        assert!(pop_after, "{}", m.disassemble());
    }

    #[test]
    fn break_outside_loop_is_error() {
        assert!(compile("break\n").is_err());
        assert!(compile("continue\n").is_err());
    }

    #[test]
    fn aug_assign_subscript_uses_dup2() {
        let p = compile_ok("d = {}\nd[1] = 0\n");
        // Plain subscript assign is compiled via Assign path below.
        let p2 = compile_ok("a = [0]\na[0] += 5\n");
        assert!(p2.codes[0].ops.contains(&Op::Dup2));
        assert!(p.codes[0].ops.contains(&Op::IndexStore));
    }

    #[test]
    fn consts_are_deduplicated() {
        let p = compile_ok("a = 7\nb = 7\nc = 7\n");
        let ints = p.codes[0]
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Int(7)))
            .count();
        assert_eq!(ints, 1);
    }

    #[test]
    fn nested_def_gets_own_code() {
        let p =
            compile_ok("def outer():\n    def inner():\n        return 1\n    return inner()\n");
        assert_eq!(p.codes.len(), 3);
        assert_eq!(p.codes[2].name, "inner");
    }

    #[test]
    fn tuple_unpack_emits_unpack_sequence() {
        let p = compile_ok("a, b = 1, 2\n");
        assert!(p.codes[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::UnpackSequence(2))));
    }

    #[test]
    fn method_call_opcode() {
        let p = compile_ok("l = []\nl.append(1)\n");
        assert!(p.codes[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::CallMethod { argc: 1, .. })));
    }

    #[test]
    fn and_or_short_circuit_shapes() {
        let p = compile_ok("x = a and b\ny = a or b\n");
        let m = &p.codes[0];
        assert!(m.ops.iter().any(|o| matches!(o, Op::JumpIfFalsePeek(_))));
        assert!(m.ops.iter().any(|o| matches!(o, Op::JumpIfTruePeek(_))));
    }

    #[test]
    fn duplicate_param_rejected() {
        assert!(compile("def f(a, a):\n    return a\n").is_err());
    }

    #[test]
    fn jump_targets_in_bounds() {
        let p = compile_ok(
            "def f(n):\n    s = 0\n    for i in range(n):\n        if i % 2 == 0:\n            s += i\n        else:\n            s -= 1\n    return s\n",
        );
        for code in &p.codes {
            for op in &code.ops {
                if let Some(t) = op.jump_target() {
                    assert!((t as usize) <= code.ops.len(), "{}", code.disassemble());
                }
            }
        }
    }
}
