//! One benchmark *invocation*: the unit the methodology samples.
//!
//! A [`Session`] models one OS process running a Python VM: it compiles the
//! workload source, executes the module body once (workload setup, analogous
//! to imports and data construction), and then exposes `run()` iterations that
//! the harness times individually. All seeds — hash seed, layout factor,
//! OS-jitter stream — are derived from the single invocation seed, so an
//! experiment is reproducible end-to-end.

use std::sync::Arc;

use crate::bytecode::Program;
use crate::error::{MpError, MpResult};
use crate::frame::DynCounters;
use crate::value::Value;
use crate::vm::{Vm, VmConfig};

/// A workload compiled once and frozen for reuse across many invocations.
///
/// Compilation is deterministic and independent of the invocation seed, so a
/// harness taking many samples of the same workload can parse once and stamp
/// out cheap per-invocation VMs that share the immutable bytecode behind an
/// `Arc` (the parse-once / evaluate-many shape). Sessions started from the
/// same frozen program are bit-identical to sessions that compiled the source
/// themselves.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    program: Arc<Program>,
}

impl CompiledProgram {
    /// Compiles `source` into a frozen, shareable program.
    ///
    /// # Errors
    ///
    /// Lex/parse/compile errors.
    pub fn compile(source: &str) -> MpResult<CompiledProgram> {
        Ok(CompiledProgram {
            program: Arc::new(crate::compiler::compile(source)?),
        })
    }

    /// Freezes an already-compiled program (e.g. one produced by
    /// [`crate::compiler::compile_unfused`] for equivalence sweeps).
    pub fn from_program(program: Program) -> CompiledProgram {
        CompiledProgram {
            program: Arc::new(program),
        }
    }

    /// The frozen bytecode program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Result of a single timed iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationResult {
    /// Virtual time the iteration took, ns.
    pub virtual_ns: f64,
    /// The value returned by `run()` (a checksum by workload convention).
    pub value: Value,
    /// Counter deltas attributable to this iteration.
    pub counters: DynCounters,
}

/// The VM events of one iteration that matter for explaining anomalous
/// timings: GC cycles, JIT compilations and deoptimizations (Barrett et al.;
/// Traini et al.). A compact projection of [`DynCounters`] that harnesses can
/// attach to every timed iteration without dragging the full counter set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmEventDeltas {
    /// GC cycles run during the iteration.
    pub gc_cycles: u64,
    /// JIT regions compiled during the iteration.
    pub jit_compiles: u64,
    /// Guard failures (deoptimizations) during the iteration.
    pub deopts: u64,
}

impl IterationResult {
    /// The GC/JIT/deopt deltas of this iteration, for per-iteration telemetry.
    pub fn vm_deltas(&self) -> VmEventDeltas {
        VmEventDeltas {
            gc_cycles: self.counters.gc_cycles,
            jit_compiles: self.counters.jit_compiles,
            deopts: self.counters.deopts,
        }
    }
}

/// One VM invocation of a workload module.
pub struct Session {
    vm: Vm,
    /// Virtual time consumed by compile + module setup, ns.
    startup_ns: f64,
}

/// Name of the per-iteration entry point every workload must define.
pub const RUN_FUNCTION: &str = "run";

impl Session {
    /// Compiles `source`, creates the VM with `seed`/`config`, and executes
    /// the module body (setup code).
    ///
    /// # Errors
    ///
    /// Compile errors, or runtime errors raised during module setup.
    pub fn start(source: &str, seed: u64, config: VmConfig) -> MpResult<Session> {
        Self::start_from(&CompiledProgram::compile(source)?, seed, config)
    }

    /// Creates the VM from a frozen [`CompiledProgram`] and executes the
    /// module body (setup code), skipping compilation entirely.
    ///
    /// # Errors
    ///
    /// Runtime errors raised during module setup.
    pub fn start_from(program: &CompiledProgram, seed: u64, config: VmConfig) -> MpResult<Session> {
        let mut vm = Vm::load_shared(Arc::clone(&program.program), seed, config);
        vm.run_module()?;
        let startup_ns = vm.now_ns();
        Ok(Session { vm, startup_ns })
    }

    /// Virtual time consumed by startup (compile analogue + module setup).
    pub fn startup_ns(&self) -> f64 {
        self.startup_ns
    }

    /// Runs one timed iteration of the workload's `run()` function.
    ///
    /// # Errors
    ///
    /// `NameError` if the workload defines no `run`, plus anything `run`
    /// raises. A divergent `run` terminates with a typed `Timeout` /
    /// `FuelExhausted` error once the session's virtual-time deadline or
    /// step budget (see [`VmConfig`]) is exceeded — it never spins forever.
    pub fn run_iteration(&mut self) -> MpResult<IterationResult> {
        let counters_before = self.vm.counters();
        let t0 = self.vm.now_ns();
        let value = self.vm.call_function(RUN_FUNCTION, &[])?;
        let virtual_ns = self.vm.now_ns() - t0;
        let counters = self.vm.counters().delta_since(&counters_before);
        Ok(IterationResult {
            virtual_ns,
            value,
            counters,
        })
    }

    /// Runs `n` iterations, returning their virtual times.
    ///
    /// # Errors
    ///
    /// Propagates the first iteration error.
    pub fn run_iterations(&mut self, n: usize) -> MpResult<Vec<f64>> {
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            times.push(self.run_iteration()?.virtual_ns);
        }
        Ok(times)
    }

    /// Calls an arbitrary zero-arg function defined by the workload (e.g. a
    /// `checksum()` helper).
    ///
    /// # Errors
    ///
    /// `NameError`/`TypeError` as for any call.
    pub fn call(&mut self, name: &str, args: &[Value]) -> MpResult<Value> {
        self.vm.call_function(name, args)
    }

    /// Renders a value against this session's heap.
    pub fn render(&self, v: Value) -> String {
        self.vm.render(v)
    }

    /// The underlying VM (counters, clock, JIT summary).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable access to the underlying VM.
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Convenience for tests: the rendered result of one extra iteration,
    /// used to compare semantics across engines.
    ///
    /// # Errors
    ///
    /// As [`Session::run_iteration`].
    pub fn checksum(&mut self) -> MpResult<String> {
        let r = self.run_iteration()?;
        Ok(self.render(r.value))
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.vm.engine().name())
            .field("seed", &self.vm.seed())
            .field("startup_ns", &self.startup_ns)
            .field("now_ns", &self.vm.now_ns())
            .finish()
    }
}

/// Quick helper: run `n` iterations of `source` and return the virtual times.
///
/// # Errors
///
/// Compile or runtime errors from the workload.
pub fn measure(source: &str, seed: u64, config: VmConfig, n: usize) -> MpResult<Vec<f64>> {
    let mut s = Session::start(source, seed, config)?;
    s.run_iterations(n)
}

/// Raised when a workload's `run()` returns different checksums on different
/// engines — used by the cross-engine validation helpers.
pub fn check_engines_agree(source: &str, seed: u64) -> MpResult<String> {
    let mut interp = Session::start(source, seed, VmConfig::interp())?;
    let mut jit = Session::start(source, seed, VmConfig::jit())?;
    let a = interp.checksum()?;
    let b = jit.checksum()?;
    if a != b {
        return Err(MpError::runtime(
            crate::error::RuntimeErrorKind::Internal,
            format!("engine mismatch: interp={a} jit={b}"),
        ));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNT_SRC: &str = "\
N = 1000
def run():
    s = 0
    for i in range(N):
        s += i
    return s
";

    #[test]
    fn session_runs_iterations() {
        let mut s = Session::start(COUNT_SRC, 7, VmConfig::interp()).unwrap();
        let r = s.run_iteration().unwrap();
        assert_eq!(r.value, Value::Int(499_500));
        assert!(r.virtual_ns > 0.0);
        assert!(r.counters.total_ops > 1000);
    }

    #[test]
    fn startup_time_is_recorded() {
        let s = Session::start(COUNT_SRC, 7, VmConfig::interp()).unwrap();
        assert!(s.startup_ns() > 0.0);
    }

    #[test]
    fn same_seed_same_times() {
        let a = measure(COUNT_SRC, 11, VmConfig::interp(), 5).unwrap();
        let b = measure(COUNT_SRC, 11, VmConfig::interp(), 5).unwrap();
        assert_eq!(
            a, b,
            "identical seeds must reproduce identical virtual times"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = measure(COUNT_SRC, 11, VmConfig::interp(), 3).unwrap();
        let b = measure(COUNT_SRC, 12, VmConfig::interp(), 3).unwrap();
        assert_ne!(a, b, "different invocation seeds should perturb timings");
    }

    #[test]
    fn engines_agree_on_semantics() {
        let checksum = check_engines_agree(COUNT_SRC, 5).unwrap();
        assert_eq!(checksum, "499500");
    }

    #[test]
    fn jit_speeds_up_hot_loop() {
        let interp = measure(COUNT_SRC, 3, VmConfig::interp(), 30).unwrap();
        let jit = measure(COUNT_SRC, 3, VmConfig::jit(), 30).unwrap();
        // Compare steady-state tails (last 10 iterations).
        let tail = |v: &[f64]| v[v.len() - 10..].iter().sum::<f64>() / 10.0;
        let speedup = tail(&interp) / tail(&jit);
        assert!(speedup > 2.0, "expected JIT speedup, got {speedup:.2}x");
    }

    #[test]
    fn jit_warmup_shape() {
        let times = measure(COUNT_SRC, 3, VmConfig::jit(), 30).unwrap();
        let first = times[0];
        let last = times[times.len() - 1];
        assert!(
            first > last * 1.5,
            "first iteration {first} should exceed steady {last}"
        );
    }

    #[test]
    fn divergent_run_times_out_with_typed_error() {
        let src = "def run():\n    while True:\n        pass\n";
        let mut cfg = VmConfig::interp();
        cfg.time_budget_ns = Some(1.0e7);
        let mut s = Session::start(src, 1, cfg).unwrap();
        let err = s.run_iteration().expect_err("must hit the deadline");
        assert_eq!(
            err.runtime_kind(),
            Some(crate::error::RuntimeErrorKind::Timeout)
        );
    }

    #[test]
    fn divergent_run_exhausts_fuel_with_typed_error() {
        let src = "def run():\n    while True:\n        pass\n";
        let mut cfg = VmConfig::interp();
        cfg.step_budget = Some(50_000);
        let mut s = Session::start(src, 1, cfg).unwrap();
        let err = s.run_iteration().expect_err("must exhaust fuel");
        assert_eq!(
            err.runtime_kind(),
            Some(crate::error::RuntimeErrorKind::FuelExhausted)
        );
    }

    #[test]
    fn missing_run_function_is_name_error() {
        let r = Session::start("x = 1\n", 1, VmConfig::interp())
            .unwrap()
            .run_iteration();
        assert!(r.is_err());
    }
}
