//! Runtime values.
//!
//! Small values (`None`, booleans, 64-bit ints and floats) are stored inline;
//! everything else lives in the [`crate::heap::Heap`] and is referenced by a
//! [`Handle`].

/// Index of a heap object.
pub type Handle = u32;

/// A MiniPy runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Value {
    /// `None`.
    #[default]
    None,
    /// `True` / `False`.
    Bool(bool),
    /// 64-bit integer (MiniPy has no bignums).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Reference to a heap object (string, list, tuple, dict, ...).
    Obj(Handle),
}

impl Value {
    /// Python-style truthiness for inline values.
    ///
    /// Heap values (strings, containers) require heap access and are handled
    /// by [`crate::heap::Heap::truthy`].
    pub fn inline_truthy(self) -> Option<bool> {
        match self {
            Value::None => Some(false),
            Value::Bool(b) => Some(b),
            Value::Int(i) => Some(i != 0),
            Value::Float(f) => Some(f != 0.0),
            Value::Obj(_) => None,
        }
    }

    /// Returns the numeric value as f64 if this is int/float/bool.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Returns the integer value, treating bools as 0/1 (Python semantics).
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(b) => Some(i64::from(b)),
            _ => None,
        }
    }

    /// True if this value is a number (int, float or bool).
    pub fn is_number(self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }

    /// A short name of the value's type, for error messages.
    ///
    /// Heap values report `"object"`; use [`crate::heap::Heap::type_name`]
    /// when heap access is available.
    pub fn coarse_type_name(self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Obj(_) => "object",
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

/// Coarse dynamic type tags used by the JIT's type guards.
#[allow(missing_docs)] // variants name the MiniPy types directly
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeTag {
    None,
    Bool,
    Int,
    Float,
    Str,
    List,
    Tuple,
    Dict,
    Range,
    Function,
    Iter,
}

impl TypeTag {
    /// Bit position used in compact type-set bitmasks.
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_truthiness() {
        assert_eq!(Value::None.inline_truthy(), Some(false));
        assert_eq!(Value::Bool(true).inline_truthy(), Some(true));
        assert_eq!(Value::Int(0).inline_truthy(), Some(false));
        assert_eq!(Value::Int(-3).inline_truthy(), Some(true));
        assert_eq!(Value::Float(0.0).inline_truthy(), Some(false));
        assert_eq!(Value::Obj(3).inline_truthy(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert!(Value::Bool(false).is_number());
        assert!(!Value::None.is_number());
    }

    #[test]
    fn type_tag_bits_are_distinct() {
        let tags = [
            TypeTag::None,
            TypeTag::Bool,
            TypeTag::Int,
            TypeTag::Float,
            TypeTag::Str,
            TypeTag::List,
            TypeTag::Tuple,
            TypeTag::Dict,
            TypeTag::Range,
            TypeTag::Function,
            TypeTag::Iter,
        ];
        let mut seen = 0u16;
        for t in tags {
            assert_eq!(seen & t.bit(), 0);
            seen |= t.bit();
        }
    }
}
