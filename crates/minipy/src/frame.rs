//! Call frames and dynamic-execution counters.

use serde::{Deserialize, Serialize};

use crate::bytecode::OpClass;
use crate::value::Value;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Index into [`crate::bytecode::Program::codes`].
    pub code_id: usize,
    /// Next instruction to execute.
    pub pc: usize,
    /// Local slots (parameters first).
    pub locals: Vec<Value>,
    /// Operand-stack watermark at frame entry; restored on return.
    pub stack_base: usize,
}

/// Every opcode class, in [`op_class_index`] order.
pub const ALL_OP_CLASSES: [OpClass; 8] = [
    OpClass::Stack,
    OpClass::Arith,
    OpClass::Name,
    OpClass::Memory,
    OpClass::Dict,
    OpClass::Alloc,
    OpClass::Branch,
    OpClass::Call,
];

/// Returns a stable dense index for an opcode class.
pub fn op_class_index(class: OpClass) -> usize {
    match class {
        OpClass::Stack => 0,
        OpClass::Arith => 1,
        OpClass::Name => 2,
        OpClass::Memory => 3,
        OpClass::Dict => 4,
        OpClass::Alloc => 5,
        OpClass::Branch => 6,
        OpClass::Call => 7,
    }
}

/// Dynamic-execution statistics for one VM session.
///
/// These drive the suite-characterization experiment (Table 1) and let tests
/// assert that the engines actually did what the cost model charges for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DynCounters {
    /// Opcodes executed, by class (indexed by [`op_class_index`]).
    pub ops_by_class: [u64; 8],
    /// Total opcodes executed.
    pub total_ops: u64,
    /// Opcodes executed inside compiled (JIT) regions.
    pub jit_ops: u64,
    /// Dict slots touched across all hash-table operations.
    pub dict_probes: u64,
    /// Heap objects allocated.
    pub allocations: u64,
    /// GC cycles run.
    pub gc_cycles: u64,
    /// Virtual time spent in GC pauses, ns.
    pub gc_pause_ns: f64,
    /// Loop back-edges taken.
    pub backedges: u64,
    /// Function/builtin calls performed.
    pub calls: u64,
    /// JIT regions compiled.
    pub jit_compiles: u64,
    /// Virtual time spent compiling, ns.
    pub jit_compile_ns: f64,
    /// Guard failures (deoptimizations).
    pub deopts: u64,
    /// Regions abandoned after repeated guard failures.
    pub blacklisted: u64,
    /// OS-jitter pauses injected.
    pub jitter_events: u64,
    /// Virtual time injected by OS jitter, ns.
    pub jitter_ns: f64,
}

impl DynCounters {
    /// Records one executed opcode of `class`.
    pub fn count_op(&mut self, class: OpClass, compiled: bool) {
        self.ops_by_class[op_class_index(class)] += 1;
        self.total_ops += 1;
        if compiled {
            self.jit_ops += 1;
        }
    }

    /// Fraction of executed opcodes that belong to `class` (0 if nothing ran).
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        self.ops_by_class[op_class_index(class)] as f64 / self.total_ops as f64
    }

    /// Difference `self - earlier`, for per-iteration deltas.
    pub fn delta_since(&self, earlier: &DynCounters) -> DynCounters {
        let mut out = *self;
        for i in 0..8 {
            out.ops_by_class[i] -= earlier.ops_by_class[i];
        }
        out.total_ops -= earlier.total_ops;
        out.jit_ops -= earlier.jit_ops;
        out.dict_probes -= earlier.dict_probes;
        out.allocations -= earlier.allocations;
        out.gc_cycles -= earlier.gc_cycles;
        out.gc_pause_ns -= earlier.gc_pause_ns;
        out.backedges -= earlier.backedges;
        out.calls -= earlier.calls;
        out.jit_compiles -= earlier.jit_compiles;
        out.jit_compile_ns -= earlier.jit_compile_ns;
        out.deopts -= earlier.deopts;
        out.blacklisted -= earlier.blacklisted;
        out.jitter_events -= earlier.jitter_events;
        out.jitter_ns -= earlier.jitter_ns;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_distinct() {
        let mut seen = [false; 8];
        for c in ALL_OP_CLASSES {
            let i = op_class_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn count_and_fraction() {
        let mut c = DynCounters::default();
        c.count_op(OpClass::Arith, false);
        c.count_op(OpClass::Arith, true);
        c.count_op(OpClass::Call, false);
        assert_eq!(c.total_ops, 3);
        assert_eq!(c.jit_ops, 1);
        assert!((c.class_fraction(OpClass::Arith) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delta_since_subtracts_fields() {
        let mut a = DynCounters::default();
        a.count_op(OpClass::Stack, false);
        a.dict_probes = 5;
        let snapshot = a;
        a.count_op(OpClass::Stack, false);
        a.dict_probes = 9;
        let d = a.delta_since(&snapshot);
        assert_eq!(d.total_ops, 1);
        assert_eq!(d.dict_probes, 4);
    }
}
