//! A fault-tolerant shared archive service for `rigor`.
//!
//! Teams running the methodology on many machines need one authoritative
//! results archive. This crate provides both halves over plain
//! `std::net` (the workspace builds offline — no HTTP crate):
//!
//! - [`ArchiveServer`]: a small HTTP/1.1 server holding the one writable
//!   [`rigor_store::Store`] behind a lock. Uploads are idempotent by the
//!   128-bit run content id; `check` and `trend` run *server-side* so
//!   every client gates against the same history.
//! - [`RemoteStore`]: a resilient client implementing the campaign
//!   [`rigor::CellSink`]. Transient failures are retried with seeded
//!   exponential backoff; persistent failure opens a circuit breaker and
//!   diverts writes to a local write-ahead spool that is replayed — in
//!   grid order, idempotently — when the server returns.
//!
//! The failure model is exercised offline through
//! [`rigor::NetFaultPlan`]: the server can refuse, drop (apply the write
//! but withhold the ack), stall, 500, or speak garbage, all from a seeded
//! deterministic plan, so `rigor self-test` drives the client state
//! machine with no real network flakiness required.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use client::{RemoteError, RemoteStore};
pub use server::{ArchiveServer, ServeError, ServerHandle};
