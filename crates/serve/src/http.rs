//! A minimal HTTP/1.1 codec over `std::net` streams — exactly enough
//! protocol for the archive service and nothing more (the workspace builds
//! offline, so no HTTP crate; the `vendor/` precedent applies).
//!
//! One request per connection (`Connection: close`), bodies delimited by
//! `Content-Length`, everything UTF-8. Both sides enforce size caps so a
//! garbage peer cannot make the other buffer unbounded input.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block, bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted body, bytes (an archive of a few thousand runs).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `PUT`, `POST`).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded `k=v` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// The first query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads from `stream` until the header/body separator, then reads the
/// `Content-Length` body. Returns the parsed head text and body bytes.
fn read_message(stream: &mut TcpStream) -> io::Result<(String, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(protocol_err("header block exceeds 16 KiB"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol_err("connection closed before header end"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec())
        .map_err(|_| protocol_err("non-UTF-8 header"))?;
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();

    let content_length = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.trim().parse::<usize>())
        .transpose()
        .map_err(|_| protocol_err("bad Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(protocol_err("body exceeds 64 MiB"));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol_err("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| protocol_err("non-UTF-8 body"))?;
    Ok((head, body))
}

/// Finds the `\r\n\r\n` separator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// I/O failures (including read timeouts) and malformed requests
/// (`InvalidData`).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let (head, body) = read_message(stream)?;
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| protocol_err("empty request line"))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| protocol_err("request line has no target"))?;
    if parts.next().map(|v| v.starts_with("HTTP/")) != Some(true) {
        return Err(protocol_err("not an HTTP request line"));
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

/// The reason phrase for the status codes the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. The connection is then closed by the
/// caller dropping the stream.
///
/// # Errors
///
/// I/O failures (including write timeouts).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one request and flushes (one request per connection).
///
/// # Errors
///
/// I/O failures (including write timeouts).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads and parses one response from `stream`: `(status, body)`.
///
/// # Errors
///
/// I/O failures (including read timeouts) and non-HTTP responses
/// (`InvalidData`) — a garbage-speaking peer is detected here.
pub fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String)> {
    let (head, body) = read_message(stream)?;
    let status_line = head.lines().next().unwrap_or_default();
    let mut parts = status_line.split_whitespace();
    if parts.next().map(|v| v.starts_with("HTTP/")) != Some(true) {
        return Err(protocol_err("not an HTTP response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| protocol_err("bad HTTP status"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn request_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "PUT");
            assert_eq!(req.path, "/runs");
            assert_eq!(req.query_param("label"), Some("a/b"));
            assert_eq!(req.body, "{\"x\":1}");
            write_response(&mut stream, 200, "application/json", "{\"ok\":true}").unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"PUT /runs?label=a/b HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"x\":1}")
            .unwrap();
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn garbage_response_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream);
            stream.write_all(b"** not http at all **\r\n\r\n").unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /health HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let err = read_response(&mut stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        server.join().unwrap();
    }
}
