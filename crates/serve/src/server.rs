//! The shared archive service: one authoritative [`Store`] behind a writer
//! lock, served over the minimal HTTP codec in [`crate::http`].
//!
//! Endpoints:
//!
//! | method & path     | semantics                                              |
//! |-------------------|--------------------------------------------------------|
//! | `GET /health`     | liveness + run count                                   |
//! | `GET /seq`        | next free sequence number                              |
//! | `GET /completed`  | `?label=` → receipt of the run with that label, or 404 |
//! | `PUT /runs`       | idempotent upload of one record line                   |
//! | `GET /history`    | the archive as integrity-checked record lines (JSONL)  |
//! | `POST /check`     | regression gate vs. a server-side baseline             |
//! | `POST /trend`     | changepoint analysis of the server-side history        |
//!
//! `PUT /runs` is idempotent by the 128-bit content id: replaying an upload
//! (a client that never saw its ack, a spool replayed after reconnect)
//! dedups server-side, so the archive converges to the same line set as an
//! uninterrupted local run. A `seq` already held by *different* content is
//! a 409 — first writer wins, the loser re-fetches `/seq`.
//!
//! For offline resilience testing, the accept loop can run under a seeded
//! [`NetFaultPlan`]: each accepted connection consults the plan and may be
//! refused, dropped after the request (side effects applied, ack withheld —
//! the nastiest case for the client), stalled past the client timeout,
//! answered with a 500, or answered with non-HTTP garbage.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use rigor::{check_regressions, NetFault, NetFaultPlan, SteadyStateDetector};
use rigor_store::{record_line, BaselineRef, Store, StoreError};
use serde::json::{DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::http::{read_request, write_response, Request};

/// Serialize adapter for a raw [`JsonValue`] (the vendored serde has no
/// blanket impl on the value type itself).
struct Raw(JsonValue);

impl Serialize for Raw {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

/// Deserialize adapter capturing a raw [`JsonValue`].
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// Reads an optional body field, treating `null` and absence alike.
fn opt_field<T: Deserialize>(v: &JsonValue, name: &str) -> Result<Option<T>, DeError> {
    match v.get(name) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => T::from_value(x)
            .map(Some)
            .map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
    }
}

fn json_str(fields: Vec<(String, JsonValue)>) -> String {
    serde_json::to_string(&Raw(JsonValue::Object(fields))).expect("plain data")
}

fn error_body(message: &str) -> String {
    json_str(vec![("error".into(), message.to_value())])
}

/// A service failure at bind or accept time.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the listen address failed.
    Io {
        /// The listen address involved.
        addr: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The backing store could not be opened.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { addr, source } => write!(f, "{addr}: {source}"),
            ServeError::Store(e) => write!(f, "archive: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Store(e) => Some(e),
        }
    }
}

/// A handle that stops a running [`ArchiveServer`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the accept loop to exit; it notices within its poll interval.
    /// In-flight connections finish on their own threads.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The archive service: a listener plus the one authoritative store.
pub struct ArchiveServer {
    listener: TcpListener,
    store: Arc<Mutex<Store>>,
    faults: Option<NetFaultPlan>,
    stall: Duration,
    stop: Arc<AtomicBool>,
    exchanges: Arc<AtomicU64>,
}

impl ArchiveServer {
    /// Opens (creating if needed) the archive in `store_dir` and binds the
    /// listener. Use port 0 to let the OS pick (see
    /// [`ArchiveServer::handle`] for the resulting address).
    ///
    /// # Errors
    ///
    /// Store-open failures (including corruption — a corrupt archive must
    /// not be served) and bind failures.
    pub fn bind(addr: &str, store_dir: impl Into<PathBuf>) -> Result<ArchiveServer, ServeError> {
        let store = Store::open(store_dir).map_err(ServeError::Store)?;
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Io {
            addr: addr.to_string(),
            source,
        })?;
        Ok(ArchiveServer {
            listener,
            store: Arc::new(Mutex::new(store)),
            faults: None,
            stall: Duration::from_millis(500),
            stop: Arc::new(AtomicBool::new(false)),
            exchanges: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Injects the seeded network-fault plan into the accept loop (builder
    /// style) — the offline test double of a flaky production server.
    pub fn with_fault_plan(mut self, plan: NetFaultPlan) -> ArchiveServer {
        self.faults = Some(plan);
        self
    }

    /// Sets how long a `Stall` fault delays the response (builder style).
    /// Must exceed the client's read timeout to actually trip it.
    pub fn with_stall(mut self, stall: Duration) -> ArchiveServer {
        self.stall = stall;
        self
    }

    /// A stop handle carrying the bound address.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().expect("bound listener"),
        }
    }

    /// Serves until the [`ServerHandle`] asks it to stop. Each connection
    /// is handled on its own thread; the store lock serializes writers.
    ///
    /// # Errors
    ///
    /// Listener failures other than the polling `WouldBlock`.
    pub fn serve(self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|source| ServeError::Io {
                addr: "listener".into(),
                source,
            })?;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let n = self.exchanges.fetch_add(1, Ordering::SeqCst);
                    let fault = self
                        .faults
                        .as_ref()
                        .map(|p| p.decide(n))
                        .unwrap_or(NetFault::None);
                    let store = Arc::clone(&self.store);
                    let stall = self.stall;
                    thread::spawn(move || handle_connection(stream, fault, stall, &store));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(source) => {
                    return Err(ServeError::Io {
                        addr: "listener".into(),
                        source,
                    })
                }
            }
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    fault: NetFault,
    stall: Duration,
    store: &Mutex<Store>,
) {
    // Accepted sockets inherit the listener's non-blocking mode on some
    // platforms; request handling wants plain blocking reads with caps.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    if fault == NetFault::Refuse {
        // Close before reading anything — to the client this is
        // indistinguishable from a connection reset.
        return;
    }
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_response(
                &mut stream,
                400,
                "application/json",
                &error_body(&e.to_string()),
            );
            return;
        }
    };
    match fault {
        NetFault::Stall => thread::sleep(stall),
        NetFault::ServerError => {
            let _ = write_response(
                &mut stream,
                500,
                "application/json",
                &error_body("injected server error"),
            );
            return;
        }
        NetFault::Garbage => {
            let _ = stream.write_all(b"\x00\x17** definitely not http **\r\n\r\n");
            return;
        }
        _ => {}
    }
    let (status, content_type, body) = route(&req, store);
    if fault == NetFault::Drop {
        // The write (if any) has been applied and fsynced; the ack is
        // withheld. The client must treat this as unknown-outcome and
        // retry idempotently.
        return;
    }
    let _ = write_response(&mut stream, status, content_type, &body);
}

type Response = (u16, &'static str, String);

fn ok_json(fields: Vec<(String, JsonValue)>) -> Response {
    (200, "application/json", json_str(fields))
}

fn bad_request(message: &str) -> Response {
    (400, "application/json", error_body(message))
}

fn route(req: &Request, store: &Mutex<Store>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let store = store.lock().expect("store lock");
            ok_json(vec![
                ("service".into(), "rigor-serve".to_value()),
                ("runs".into(), store.len().to_value()),
            ])
        }
        ("GET", "/seq") => {
            let store = store.lock().expect("store lock");
            let next = store.runs().map(|r| r.seq + 1).max().unwrap_or(0);
            ok_json(vec![("next_seq".into(), next.to_value())])
        }
        ("GET", "/completed") => {
            let Some(label) = req.query_param("label") else {
                return bad_request("missing `label` query parameter");
            };
            let store = store.lock().expect("store lock");
            let found = store
                .runs()
                .find(|r| r.label.as_deref() == Some(label))
                .map(|r| (r.id.clone(), r.seq));
            match found {
                Some((id, seq)) => ok_json(vec![
                    ("run_id".into(), id.to_value()),
                    ("seq".into(), seq.to_value()),
                ]),
                None => (
                    404,
                    "application/json",
                    error_body("no run with that label"),
                ),
            }
        }
        ("PUT", "/runs") => put_run(req, store),
        ("GET", "/history") => {
            let last: Option<usize> = req.query_param("last").and_then(|v| v.parse().ok());
            let store = store.lock().expect("store lock");
            let mut lines = String::new();
            let skip = last.map(|n| store.len().saturating_sub(n)).unwrap_or(0);
            for r in store.runs().skip(skip) {
                lines.push_str(&record_line(r));
                lines.push('\n');
            }
            (200, "application/x-ndjson", lines)
        }
        ("POST", "/check") => post_check(req, store),
        ("POST", "/trend") => post_trend(req, store),
        ("GET" | "PUT" | "POST", _) => (404, "application/json", error_body("no such endpoint")),
        _ => (405, "application/json", error_body("method not allowed")),
    }
}

/// Idempotent upload of one record line. Dedup key: the content id.
fn put_run(req: &Request, store: &Mutex<Store>) -> Response {
    let record = match rigor_store::parse_record_line(&req.body) {
        Ok(r) => r,
        Err(e) => return bad_request(&format!("rejected upload: {e}")),
    };
    // Check-then-append under the one writer lock, the same discipline as
    // `SharedStore::archive_cell`.
    let mut store = store.lock().expect("store lock");
    if let Some(existing) = store.runs().find(|r| r.id == record.id) {
        return ok_json(vec![
            ("run_id".into(), existing.id.to_value()),
            ("seq".into(), existing.seq.to_value()),
            ("deduped".into(), true.to_value()),
        ]);
    }
    if let Some(clash) = store.runs().find(|r| r.seq == record.seq) {
        return (
            409,
            "application/json",
            json_str(vec![
                (
                    "error".into(),
                    format!(
                        "seq {} is already held by run {} with different content",
                        record.seq,
                        clash.short_id()
                    )
                    .to_value(),
                ),
                ("seq".into(), record.seq.to_value()),
            ]),
        );
    }
    match store.append_record(record) {
        Ok(r) => ok_json(vec![
            ("run_id".into(), r.id.to_value()),
            ("seq".into(), r.seq.to_value()),
            ("deduped".into(), false.to_value()),
        ]),
        Err(e) => (500, "application/json", error_body(&e.to_string())),
    }
}

/// Rebuilds a [`rigor::GatePolicy`] from optional body fields.
fn policy_from(v: &JsonValue) -> Result<rigor::GatePolicy, DeError> {
    let mut policy = rigor::GatePolicy::default();
    if let Some(c) = opt_field::<f64>(v, "confidence")? {
        policy = policy.with_confidence(c);
    }
    if let Some(q) = opt_field::<f64>(v, "fdr")? {
        policy = policy.with_fdr_q(q);
    }
    if let Some(pct) = opt_field::<f64>(v, "max_regression_pct")? {
        policy = policy.with_max_regression(pct / 100.0);
    }
    if let Some(c) = opt_field::<String>(v, "correction")? {
        policy = policy.with_correction(
            rigor::Correction::parse(&c)
                .ok_or_else(|| DeError::new(format!("unknown correction `{c}`")))?,
        );
    }
    Ok(policy)
}

/// Rebuilds a [`rigor::TrendConfig`] from optional body fields.
fn trend_config_from(v: &JsonValue) -> Result<rigor::TrendConfig, DeError> {
    let mut cfg = rigor::TrendConfig::default();
    if let Some(c) = opt_field::<f64>(v, "confidence")? {
        cfg = cfg.with_confidence(c);
    }
    if let Some(m) = opt_field::<u64>(v, "min_segment")? {
        cfg = cfg.with_min_segment(m as usize);
    }
    if let Some(p) = opt_field::<String>(v, "penalty")? {
        cfg = cfg.with_penalty(
            rigor::Penalty::parse(&p)
                .ok_or_else(|| DeError::new(format!("unknown penalty `{p}`")))?,
        );
    }
    if let Some(q) = opt_field::<f64>(v, "fdr")? {
        cfg = cfg.with_fdr_q(q);
    }
    if let Some(c) = opt_field::<String>(v, "correction")? {
        cfg = cfg.with_correction(
            rigor::Correction::parse(&c)
                .ok_or_else(|| DeError::new(format!("unknown correction `{c}`")))?,
        );
    }
    Ok(cfg)
}

/// `POST /check`: gate client-measured benchmarks against a baseline
/// selected from the *server's* archive — the authoritative history.
fn post_check(req: &Request, store: &Mutex<Store>) -> Response {
    let body = match serde_json::from_str::<RawValue>(&req.body) {
        Ok(RawValue(v)) => v,
        Err(e) => return bad_request(&format!("bad check request: {e}")),
    };
    let current = match body.get("measurements") {
        Some(m) => {
            let text = serde_json::to_string(&Raw(m.clone())).expect("plain data");
            match rigor::from_json(&text) {
                Ok(ms) => ms,
                Err(e) => return bad_request(&format!("bad measurements: {e}")),
            }
        }
        None => return bad_request("missing `measurements`"),
    };
    let policy = match policy_from(&body) {
        Ok(p) => p,
        Err(e) => return bad_request(&e.to_string()),
    };
    let trend_cfg = match trend_config_from(&body) {
        Ok(c) => c,
        Err(e) => return bad_request(&e.to_string()),
    };
    let baseline: String = opt_field::<String>(&body, "baseline")
        .unwrap_or(None)
        .unwrap_or_else(|| "last".to_string());
    let base_ref = BaselineRef::parse(&baseline);
    let det = SteadyStateDetector::default();

    let store = store.lock().expect("store lock");
    let baseline_runs = match base_ref.select(&store) {
        Ok(runs) => runs.len(),
        Err(StoreError::Empty) | Err(StoreError::UnknownRun { .. }) => 0,
        Err(e) => return (500, "application/json", error_body(&e.to_string())),
    };
    let pooled = match base_ref.pooled_measurements(&store, &det, &trend_cfg) {
        Ok(p) => p,
        Err(e @ (StoreError::Empty | StoreError::UnknownRun { .. })) => {
            return (404, "application/json", error_body(&e.to_string()))
        }
        Err(e) => return (500, "application/json", error_body(&e.to_string())),
    };
    let report = check_regressions(&pooled, &current, &det, &policy);
    let regressed: Vec<String> = report
        .regressed()
        .iter()
        .map(|g| g.benchmark.clone())
        .collect();
    ok_json(vec![
        ("passed".into(), regressed.is_empty().to_value()),
        ("checked".into(), report.benchmarks.len().to_value()),
        ("regressed".into(), regressed.to_value()),
        ("baseline".into(), base_ref.to_string().to_value()),
        ("baseline_runs".into(), baseline_runs.to_value()),
        ("report".into(), report.to_value()),
    ])
}

/// `POST /trend`: changepoint analysis over the server's archive.
fn post_trend(req: &Request, store: &Mutex<Store>) -> Response {
    let body = match serde_json::from_str::<RawValue>(&req.body) {
        Ok(RawValue(v)) => v,
        Err(e) => return bad_request(&format!("bad trend request: {e}")),
    };
    let cfg = match trend_config_from(&body) {
        Ok(c) => c,
        Err(e) => return bad_request(&e.to_string()),
    };
    let benchmark = opt_field::<String>(&body, "benchmark").unwrap_or(None);
    let det = SteadyStateDetector::default();

    let store = store.lock().expect("store lock");
    let names: Vec<String> = match benchmark {
        Some(b) => vec![b],
        None => rigor_store::benchmark_names(&store),
    };
    let report = rigor_store::trend_report(&store, &names, &det, &cfg);
    let alerts: Vec<String> = report
        .alerts()
        .iter()
        .map(|b| b.benchmark.clone())
        .collect();
    ok_json(vec![
        ("alerts".into(), alerts.to_value()),
        ("benchmarks".into(), report.benchmarks.len().to_value()),
        ("runs".into(), store.len().to_value()),
        ("changepoints".into(), report.changepoint_count().to_value()),
        ("significant".into(), report.significant_count().to_value()),
        ("report".into(), report.to_value()),
    ])
}
