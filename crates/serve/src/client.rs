//! [`RemoteStore`]: the resilient client half of the shared archive.
//!
//! Every exchange opens one connection (the server is `Connection:
//! close`), with a hard timeout on connect, read and write. Transient
//! failures — refused connections, resets, timeouts, garbage responses,
//! 5xx — are retried with seeded exponential backoff (deterministic, so a
//! failure trace replays exactly). When `breaker_threshold` consecutive
//! *operations* fail, the circuit breaker opens: further operations fail
//! fast without touching the network, except a half-open probe every
//! `probe_every`-th operation that tests whether the server is back.
//!
//! As a campaign [`CellSink`], the client never loses a measured cell:
//! when an upload cannot be delivered, the record is appended to a local
//! write-ahead spool (a regular [`Store`] directory — fsynced, content
//! addressed, torn-tail safe) and a local receipt is returned, which is
//! valid because receipts are content ids and the id is computed
//! client-side. On the next successful exchange the spool is replayed in
//! grid (`seq`) order; the server dedups by content id, so replaying
//! after a partial drain, an unacknowledged write, or a server restart
//! converges to the same archive as an uninterrupted run.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rigor::campaign::{Cell, CellReceipt, CellSink};
use rigor::measurement::BenchmarkMeasurement;
use rigor::{ExperimentConfig, ExperimentEvent, ExperimentObserver};
use rigor_store::{parse_record_line, record_line, RunRecord, Store, StoreError};
use serde::json::JsonValue;
use serde::{Deserialize, Serialize};

use crate::http::{read_response, write_request};

/// A client-side failure talking to the archive service.
#[derive(Debug)]
pub enum RemoteError {
    /// The TCP connection could not be established.
    Connect {
        /// Server address.
        url: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The connection broke or timed out mid-exchange.
    Io {
        /// Server address.
        url: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The peer answered, but not with HTTP (or the payload didn't parse).
    Protocol {
        /// Server address.
        url: String,
        /// What was wrong.
        message: String,
    },
    /// The server answered with a non-success status.
    Status {
        /// Server address.
        url: String,
        /// HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
    /// The requested sequence number is held by different content (409).
    Conflict {
        /// Server address.
        url: String,
        /// The server's explanation.
        message: String,
    },
    /// The circuit breaker is open; the operation failed fast.
    CircuitOpen {
        /// Server address.
        url: String,
        /// Consecutive failures that opened it.
        failures: u32,
    },
    /// The local write-ahead spool failed — measurements can no longer be
    /// guaranteed durable, so this is fatal.
    Spool(StoreError),
    /// An upload was undeliverable and no spool is configured to hold it.
    NoSpool {
        /// Server address.
        url: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Connect { url, source } => write!(f, "{url}: connect: {source}"),
            RemoteError::Io { url, source } => write!(f, "{url}: {source}"),
            RemoteError::Protocol { url, message } => write!(f, "{url}: {message}"),
            RemoteError::Status {
                url,
                status,
                message,
            } => write!(f, "{url}: HTTP {status}: {message}"),
            RemoteError::Conflict { url, message } => write!(f, "{url}: conflict: {message}"),
            RemoteError::CircuitOpen { url, failures } => write!(
                f,
                "{url}: circuit breaker open after {failures} consecutive failures"
            ),
            RemoteError::Spool(e) => write!(f, "spool: {e}"),
            RemoteError::NoSpool { url } => write!(
                f,
                "{url}: unreachable and no spool configured — upload would be lost"
            ),
        }
    }
}

impl std::error::Error for RemoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RemoteError::Connect { source, .. } | RemoteError::Io { source, .. } => Some(source),
            RemoteError::Spool(e) => Some(e),
            _ => None,
        }
    }
}

impl RemoteError {
    /// Whether retrying the exchange could plausibly succeed. Client
    /// mistakes (4xx) and local spool failures are not retried.
    fn retryable(&self) -> bool {
        match self {
            RemoteError::Connect { .. } | RemoteError::Io { .. } | RemoteError::Protocol { .. } => {
                true
            }
            RemoteError::Status { status, .. } => *status >= 500,
            _ => false,
        }
    }
}

#[derive(Deserialize)]
struct ReceiptAck {
    run_id: String,
    seq: u64,
}

#[derive(Deserialize)]
struct SeqAck {
    next_seq: u64,
}

#[derive(Deserialize)]
struct HealthAck {
    runs: u64,
}

/// Deserialize adapter capturing a raw [`JsonValue`].
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, serde::json::DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// Mutable client state: breaker bookkeeping plus the spool.
struct ClientState {
    /// Failed operations since the last success.
    consecutive_failures: u32,
    /// Whether the breaker is open (failing fast).
    open: bool,
    /// Operations attempted since the breaker opened (drives probing).
    ops_since_open: u64,
    /// Total operations started; salts the backoff jitter stream.
    op_counter: u64,
}

/// The resilient archive-service client; a campaign [`CellSink`].
pub struct RemoteStore {
    url: String,
    timeout: Duration,
    max_retries: u32,
    backoff_base: Duration,
    seed: u64,
    breaker_threshold: u32,
    probe_every: u64,
    state: Mutex<ClientState>,
    spool: Mutex<Option<Store>>,
    observers: Vec<Arc<dyn ExperimentObserver>>,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("url", &self.url)
            .field("timeout", &self.timeout)
            .field("max_retries", &self.max_retries)
            .finish_non_exhaustive()
    }
}

/// Splitmix64 finisher: one well-mixed draw in `[0, 1)` per distinct key.
fn uniform(key: u64) -> f64 {
    let mut z = key;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl RemoteStore {
    /// Creates a client for the service at `url` (`host:port`, with an
    /// optional `http://` prefix). No connection is attempted — a campaign
    /// may legitimately start while the server is down and spool until it
    /// returns. Use [`RemoteStore::ping`] when reachability must be
    /// verified up front.
    pub fn connect(url: &str) -> RemoteStore {
        let url = url
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        RemoteStore {
            url,
            timeout: Duration::from_secs(10),
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            seed: 0,
            breaker_threshold: 3,
            probe_every: 8,
            state: Mutex::new(ClientState {
                consecutive_failures: 0,
                open: false,
                ops_since_open: 0,
                op_counter: 0,
            }),
            spool: Mutex::new(None),
            observers: Vec::new(),
        }
    }

    /// Sets the per-exchange connect/read/write timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteStore {
        self.timeout = timeout;
        self
    }

    /// Sets how many times a failed exchange is retried (builder style).
    pub fn with_retries(mut self, retries: u32) -> RemoteStore {
        self.max_retries = retries;
        self
    }

    /// Sets the base backoff delay; attempt `n` waits
    /// `base × 2^(n-1) × (0.5 + jitter)` (builder style).
    pub fn with_backoff_base(mut self, base: Duration) -> RemoteStore {
        self.backoff_base = base;
        self
    }

    /// Seeds the deterministic backoff jitter (builder style).
    pub fn with_seed(mut self, seed: u64) -> RemoteStore {
        self.seed = seed;
        self
    }

    /// Sets how many consecutive failed operations open the circuit
    /// breaker (builder style).
    pub fn with_breaker_threshold(mut self, failures: u32) -> RemoteStore {
        self.breaker_threshold = failures.max(1);
        self
    }

    /// Sets the half-open probe cadence: with the breaker open, every
    /// `n`-th operation still tries the network (builder style).
    pub fn with_probe_every(mut self, n: u64) -> RemoteStore {
        self.probe_every = n.max(1);
        self
    }

    /// Registers a telemetry observer (builder style).
    pub fn with_observer(mut self, observer: Arc<dyn ExperimentObserver>) -> RemoteStore {
        self.observers.push(observer);
        self
    }

    /// Attaches the local write-ahead spool at `dir` (builder style).
    /// Without a spool, undeliverable uploads are hard errors.
    ///
    /// # Errors
    ///
    /// As [`Store::open`] — an unreadable or corrupt spool is fatal,
    /// because it may hold unreplayed measurements.
    pub fn with_spool(self, dir: impl Into<PathBuf>) -> Result<RemoteStore, RemoteError> {
        let store = Store::open(dir).map_err(RemoteError::Spool)?;
        *self.spool.lock().expect("spool lock") = Some(store);
        Ok(self)
    }

    /// The normalized server address.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Snapshot of the runs currently waiting in the spool, in `seq`
    /// order — what an export must merge with the server history to see
    /// every measured cell while the server is down.
    pub fn spool_records(&self) -> Vec<RunRecord> {
        let mut runs: Vec<RunRecord> = self
            .spool
            .lock()
            .expect("spool lock")
            .as_ref()
            .map(|s| s.runs().cloned().collect())
            .unwrap_or_default();
        runs.sort_by_key(|r| r.seq);
        runs
    }

    /// Runs currently waiting in the spool.
    pub fn spooled(&self) -> usize {
        self.spool
            .lock()
            .expect("spool lock")
            .as_ref()
            .map(|s| s.len())
            .unwrap_or(0)
    }

    fn emit(&self, event: ExperimentEvent) {
        for obs in &self.observers {
            obs.on_event(&event);
        }
    }

    /// The jittered exponential backoff before retry `attempt` of
    /// operation `op`. Deterministic in `(seed, op, attempt)`.
    fn backoff(&self, op: u64, attempt: u32) -> Duration {
        let base = self.backoff_base.as_millis() as u64;
        let scaled = base.saturating_mul(1u64 << (attempt - 1).min(6));
        let key = self.seed
            ^ 0xBACC_0FF5_0BAC_C0FF
            ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((attempt as u64) << 48);
        let jitter = 0.5 + uniform(key);
        Duration::from_millis((scaled as f64 * jitter).round() as u64)
    }

    /// One raw exchange: connect, send, read the response.
    fn try_once(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), RemoteError> {
        let addrs: Vec<SocketAddr> = self
            .url
            .to_socket_addrs()
            .map_err(|source| RemoteError::Connect {
                url: self.url.clone(),
                source,
            })?
            .collect();
        let addr = addrs.first().ok_or_else(|| RemoteError::Connect {
            url: self.url.clone(),
            source: io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing"),
        })?;
        let mut stream = TcpStream::connect_timeout(addr, self.timeout).map_err(|source| {
            RemoteError::Connect {
                url: self.url.clone(),
                source,
            }
        })?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|source| RemoteError::Io {
                url: self.url.clone(),
                source,
            })?;
        write_request(&mut stream, method, path, body).map_err(|source| RemoteError::Io {
            url: self.url.clone(),
            source,
        })?;
        match read_response(&mut stream) {
            Ok(resp) => Ok(resp),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(RemoteError::Protocol {
                url: self.url.clone(),
                message: e.to_string(),
            }),
            Err(source) => Err(RemoteError::Io {
                url: self.url.clone(),
                source,
            }),
        }
    }

    /// Pulls the server's `{"error": ...}` message out of an error body.
    fn error_message(body: &str) -> String {
        serde_json::from_str::<RawValue>(body)
            .ok()
            .and_then(|RawValue(v)| v.get("error").and_then(|e| e.as_str().map(String::from)))
            .unwrap_or_else(|| body.trim().to_string())
    }

    /// One *operation*: breaker gate, then the exchange with retry and
    /// backoff. Success (any response with status < 500) closes the
    /// breaker; exhausting retries counts one failure toward opening it.
    fn exchange(
        &self,
        label: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), RemoteError> {
        let op = {
            let mut s = self.state.lock().expect("client state lock");
            s.op_counter += 1;
            if s.open {
                s.ops_since_open += 1;
                if !s.ops_since_open.is_multiple_of(self.probe_every) {
                    return Err(RemoteError::CircuitOpen {
                        url: self.url.clone(),
                        failures: s.consecutive_failures,
                    });
                }
                // Fall through: this operation is the half-open probe.
            }
            s.op_counter
        };
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let error = match self.try_once(method, path, body) {
                Ok((status, resp)) if status >= 500 => RemoteError::Status {
                    url: self.url.clone(),
                    status,
                    message: Self::error_message(&resp),
                },
                Ok(resp) => {
                    let mut s = self.state.lock().expect("client state lock");
                    s.consecutive_failures = 0;
                    s.open = false;
                    s.ops_since_open = 0;
                    return Ok(resp);
                }
                Err(e) => e,
            };
            if attempt > self.max_retries || !error.retryable() {
                let mut s = self.state.lock().expect("client state lock");
                s.consecutive_failures += 1;
                if !s.open && s.consecutive_failures >= self.breaker_threshold {
                    s.open = true;
                    s.ops_since_open = 0;
                    let failures = s.consecutive_failures;
                    drop(s);
                    self.emit(ExperimentEvent::CircuitOpened {
                        failures,
                        url: self.url.clone(),
                    });
                }
                return Err(error);
            }
            let wait = self.backoff(op, attempt);
            self.emit(ExperimentEvent::UploadRetried {
                label: label.to_string(),
                attempt,
                backoff_ms: wait.as_millis() as u64,
                error: error.to_string(),
            });
            std::thread::sleep(wait);
        }
    }

    /// An exchange that must come back 2xx; other statuses become typed
    /// errors.
    fn expect_ok(
        &self,
        label: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<String, RemoteError> {
        let (status, resp) = self.exchange(label, method, path, body)?;
        match status {
            200..=299 => Ok(resp),
            409 => Err(RemoteError::Conflict {
                url: self.url.clone(),
                message: Self::error_message(&resp),
            }),
            _ => Err(RemoteError::Status {
                url: self.url.clone(),
                status,
                message: Self::error_message(&resp),
            }),
        }
    }

    fn parse<T: Deserialize>(&self, body: &str) -> Result<T, RemoteError> {
        serde_json::from_str::<T>(body).map_err(|e| RemoteError::Protocol {
            url: self.url.clone(),
            message: format!("bad response payload: {e}"),
        })
    }

    /// Verifies the server is reachable; returns its run count.
    ///
    /// # Errors
    ///
    /// Any transport or protocol failure after retries.
    pub fn ping(&self) -> Result<u64, RemoteError> {
        let body = self.expect_ok("health", "GET", "/health", "")?;
        self.parse::<HealthAck>(&body).map(|a| a.runs)
    }

    /// The next free sequence number in the server archive.
    ///
    /// # Errors
    ///
    /// Any transport or protocol failure after retries.
    pub fn next_seq(&self) -> Result<u64, RemoteError> {
        let body = self.expect_ok("seq", "GET", "/seq", "")?;
        self.parse::<SeqAck>(&body).map(|a| a.next_seq)
    }

    /// Uploads one fully-formed record. Idempotent: re-uploading content
    /// the server already holds returns the original receipt.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, and [`RemoteError::Conflict`]
    /// when the record's `seq` is taken by different content.
    pub fn upload(&self, record: &RunRecord) -> Result<CellReceipt, RemoteError> {
        let label = record.label.as_deref().unwrap_or("run");
        let body = self.expect_ok(label, "PUT", "/runs", record_line(record).trim_end())?;
        let ack: ReceiptAck = self.parse(&body)?;
        Ok(CellReceipt {
            run_id: ack.run_id,
            seq: ack.seq,
        })
    }

    /// Archives a run whose `seq` the server assigns: fetch the next free
    /// seq, upload, and retry on a lost race (another writer took it).
    ///
    /// # Errors
    ///
    /// As [`RemoteStore::upload`]; a conflict that persists across many
    /// re-fetches is reported rather than looped forever.
    pub fn archive_run(
        &self,
        label: Option<String>,
        config: &ExperimentConfig,
        measurements: Vec<BenchmarkMeasurement>,
    ) -> Result<CellReceipt, RemoteError> {
        let mut last = None;
        for _ in 0..16 {
            let seq = self.next_seq()?;
            let record = RunRecord::new(seq, label.clone(), config, measurements.clone());
            match self.upload(&record) {
                Err(e @ RemoteError::Conflict { .. }) => last = Some(e),
                other => return other,
            }
        }
        Err(last.expect("conflict retry loop exits early unless a conflict was seen"))
    }

    /// Fetches the server archive (optionally only the last `n` runs) as
    /// verified records — every line's length and content hash is
    /// re-checked locally, so transit corruption is detected.
    ///
    /// # Errors
    ///
    /// Transport failures after retries; a line failing verification is a
    /// [`RemoteError::Protocol`].
    pub fn history(&self, last: Option<usize>) -> Result<Vec<RunRecord>, RemoteError> {
        let path = match last {
            Some(n) => format!("/history?last={n}"),
            None => "/history".to_string(),
        };
        let body = self.expect_ok("history", "GET", &path, "")?;
        body.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                parse_record_line(line).map_err(|e| RemoteError::Protocol {
                    url: self.url.clone(),
                    message: format!("corrupt record in transit: {e}"),
                })
            })
            .collect()
    }

    /// Runs the regression gate server-side (`POST /check`). The request
    /// carries the locally-measured benchmarks; the baseline comes from
    /// the server's authoritative history.
    ///
    /// # Errors
    ///
    /// Transport failures after retries and server-reported errors (e.g.
    /// an empty server archive → 404).
    pub fn check(&self, request: &JsonValue) -> Result<JsonValue, RemoteError> {
        let body = serde_json::to_string(&RawRef(request)).expect("plain data");
        let resp = self.expect_ok("check", "POST", "/check", &body)?;
        self.parse::<RawValue>(&resp).map(|RawValue(v)| v)
    }

    /// Runs changepoint analysis server-side (`POST /trend`).
    ///
    /// # Errors
    ///
    /// Transport failures after retries and server-reported errors.
    pub fn trend(&self, request: &JsonValue) -> Result<JsonValue, RemoteError> {
        let body = serde_json::to_string(&RawRef(request)).expect("plain data");
        let resp = self.expect_ok("trend", "POST", "/trend", &body)?;
        self.parse::<RawValue>(&resp).map(|RawValue(v)| v)
    }

    /// Appends `record` to the spool unless a record with the same label
    /// is already there (idempotent, like the server).
    fn spool_append(&self, record: &RunRecord) -> Result<usize, RemoteError> {
        let mut guard = self.spool.lock().expect("spool lock");
        let spool = guard.as_mut().ok_or_else(|| RemoteError::NoSpool {
            url: self.url.clone(),
        })?;
        let label = record.label.as_deref();
        if !spool.runs().any(|r| r.label.as_deref() == label) {
            spool
                .append_record(record.clone())
                .map_err(RemoteError::Spool)?;
        }
        Ok(spool.len())
    }

    /// Replays every spooled run to the server in `seq` order. The spool
    /// is only cleared after *all* records are acknowledged — re-replaying
    /// an already-delivered record is harmless (the server dedups by
    /// content id), losing one is not.
    ///
    /// # Errors
    ///
    /// Spool I/O failures. Delivery failures are not errors: the records
    /// stay spooled and the count of remaining runs is returned.
    pub fn flush(&self) -> Result<(u32, u32), RemoteError> {
        let pending: Vec<RunRecord> = {
            let guard = self.spool.lock().expect("spool lock");
            let Some(spool) = guard.as_ref() else {
                return Ok((0, 0));
            };
            let mut runs: Vec<RunRecord> = spool.runs().cloned().collect();
            runs.sort_by_key(|r| r.seq);
            runs
        };
        if pending.is_empty() {
            return Ok((0, 0));
        }
        let mut replayed: u32 = 0;
        for record in &pending {
            match self.upload(record) {
                Ok(_) => replayed += 1,
                Err(_) => break,
            }
        }
        let remaining = pending.len() as u32 - replayed;
        if remaining == 0 {
            let mut guard = self.spool.lock().expect("spool lock");
            if let Some(spool) = guard.as_mut() {
                spool.compact(Some(0)).map_err(RemoteError::Spool)?;
            }
        }
        if replayed > 0 {
            self.emit(ExperimentEvent::SpoolReplayed {
                replayed,
                remaining,
                url: self.url.clone(),
            });
        }
        Ok((replayed, remaining))
    }
}

/// Serialize adapter for a borrowed [`JsonValue`].
struct RawRef<'a>(&'a JsonValue);

impl Serialize for RawRef<'_> {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

impl CellSink for RemoteStore {
    fn archive_cell(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
    ) -> Result<CellReceipt, String> {
        let label = cell.id.canonical();
        let record = RunRecord::new(
            cell.index as u64,
            Some(label.clone()),
            &cell.config,
            vec![measurement.clone()],
        );
        match self.upload(&record) {
            Ok(receipt) => {
                // The server is reachable: opportunistically drain any
                // backlog from an earlier outage.
                if self.spooled() > 0 {
                    self.flush().map_err(|e| e.to_string())?;
                }
                Ok(receipt)
            }
            // A seq conflict is campaign misuse (two different campaigns
            // writing the same archive), not a transient fault — spooling
            // it would just fail again on replay.
            Err(e @ RemoteError::Conflict { .. }) => Err(e.to_string()),
            Err(_) => {
                let receipt = CellReceipt {
                    run_id: record.id.clone(),
                    seq: record.seq,
                };
                let spooled = self.spool_append(&record).map_err(|e| e.to_string())?;
                self.emit(ExperimentEvent::ServerDegraded {
                    label,
                    spooled: spooled as u32,
                });
                Ok(receipt)
            }
        }
    }

    fn completed_cell(&self, cell: &Cell) -> Result<Option<CellReceipt>, String> {
        let label = cell.id.canonical();
        // The spool is authoritative for anything not yet delivered.
        {
            let guard = self.spool.lock().expect("spool lock");
            if let Some(spool) = guard.as_ref() {
                if let Some(r) = spool
                    .runs()
                    .find(|r| r.label.as_deref() == Some(label.as_str()))
                {
                    return Ok(Some(CellReceipt {
                        run_id: r.id.clone(),
                        seq: r.seq,
                    }));
                }
            }
        }
        match self.exchange(&label, "GET", &format!("/completed?label={label}"), "") {
            Ok((200, body)) => {
                let ack: ReceiptAck = self.parse(&body).map_err(|e| e.to_string())?;
                Ok(Some(CellReceipt {
                    run_id: ack.run_id,
                    seq: ack.seq,
                }))
            }
            Ok(_) => Ok(None),
            // Unknown is safe: cells re-execute idempotently.
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ArchiveServer;
    use rigor::campaign::CampaignSpec;
    use rigor::measurement::BenchmarkMeasurement;
    use rigor::{CollectingObserver, ExperimentConfig, NetFaultPlan};
    use rigor_workloads::Size;
    use std::net::TcpListener;
    use std::thread;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rigor-serve-{tag}-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(2)
            .with_iterations(3)
            .with_size(Size::Small)
            .with_seed(5)
    }

    fn measurement(benchmark: &str) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: benchmark.to_string(),
            engine: "interp".to_string(),
            invocations: vec![],
            censored: vec![],
            quarantined: false,
        }
    }

    fn cells() -> Vec<Cell> {
        CampaignSpec::new(config())
            .with_benchmarks(["sieve"])
            .with_seeds(vec![5, 6])
            .cells()
            .unwrap()
    }

    /// Starts a server over a fresh store; returns (url, handle, join).
    fn start_server(
        dir: &std::path::Path,
        faults: Option<NetFaultPlan>,
    ) -> (String, crate::server::ServerHandle, thread::JoinHandle<()>) {
        let mut server = ArchiveServer::bind("127.0.0.1:0", dir).unwrap();
        if let Some(plan) = faults {
            server = server.with_fault_plan(plan);
        }
        let handle = server.handle();
        let url = format!("127.0.0.1:{}", handle.addr().port());
        let join = thread::spawn(move || server.serve().unwrap());
        (url, handle, join)
    }

    fn fast_client(url: &str) -> RemoteStore {
        RemoteStore::connect(url)
            .with_timeout(Duration::from_millis(500))
            .with_retries(2)
            .with_backoff_base(Duration::from_millis(1))
            .with_seed(7)
    }

    #[test]
    fn upload_is_idempotent_and_history_verifies() {
        let store_dir = temp_dir("server-roundtrip");
        let (url, handle, join) = start_server(&store_dir, None);
        let client = fast_client(&url);

        assert_eq!(client.ping().unwrap(), 0);
        assert_eq!(client.next_seq().unwrap(), 0);

        let record = RunRecord::new(0, Some("a/b".into()), &config(), vec![measurement("sieve")]);
        let first = client.upload(&record).unwrap();
        let replay = client.upload(&record).unwrap();
        assert_eq!(first, replay, "re-upload returns the original receipt");
        assert_eq!(first.run_id, record.id);
        assert_eq!(client.next_seq().unwrap(), 1);

        // Different content at the same seq is a conflict.
        let clash = RunRecord::new(0, Some("c/d".into()), &config(), vec![measurement("fib")]);
        assert!(matches!(
            client.upload(&clash).unwrap_err(),
            RemoteError::Conflict { .. }
        ));

        let history = client.history(None).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].id, record.id);
        assert_eq!(history[0].label.as_deref(), Some("a/b"));

        handle.stop();
        join.join().unwrap();
        std::fs::remove_dir_all(&store_dir).ok();
    }

    #[test]
    fn unreachable_server_spools_and_reconnect_replays() {
        // Grab a port that is then closed again: connection refused.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = dead.local_addr().unwrap().port();
        drop(dead);

        let spool_dir = temp_dir("client-spool");
        let observer = Arc::new(CollectingObserver::default());
        let client = fast_client(&format!("127.0.0.1:{port}"))
            .with_retries(1)
            .with_breaker_threshold(2)
            .with_observer(observer.clone())
            .with_spool(&spool_dir)
            .unwrap();

        let cells = cells();
        let m = measurement("sieve");
        let a = client.archive_cell(&cells[0], &m).unwrap();
        let b = client.archive_cell(&cells[1], &m).unwrap();
        assert_eq!(client.spooled(), 2);
        assert_eq!(a.seq, cells[0].index as u64);
        assert_ne!(a.run_id, b.run_id);

        // Spooled cells answer the resume query locally.
        assert_eq!(client.completed_cell(&cells[0]).unwrap(), Some(a.clone()));

        // The breaker tripped after two failed operations.
        let events = observer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::CircuitOpened { failures: 2, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::ServerDegraded { .. })));

        // Server comes up on the same port; flush drains the spool.
        let store_dir = temp_dir("client-spool-server");
        let server = ArchiveServer::bind(&format!("127.0.0.1:{port}"), &store_dir).unwrap();
        let handle = server.handle();
        let join = thread::spawn(move || server.serve().unwrap());

        // The breaker is open; operations probe through every Nth call.
        let (replayed, remaining) = loop {
            let r = client.flush().unwrap();
            if r.0 > 0 || client.spooled() == 0 {
                break r;
            }
        };
        assert_eq!((replayed, remaining), (2, 0));
        assert_eq!(client.spooled(), 0);
        assert_eq!(client.ping().unwrap(), 2);
        assert!(observer
            .events()
            .iter()
            .any(|e| matches!(e, ExperimentEvent::SpoolReplayed { replayed: 2, .. })));

        // Receipts issued offline match what the server now holds.
        assert_eq!(client.completed_cell(&cells[0]).unwrap(), Some(a));

        handle.stop();
        join.join().unwrap();
        std::fs::remove_dir_all(&spool_dir).ok();
        std::fs::remove_dir_all(&store_dir).ok();
    }

    #[test]
    fn open_breaker_fails_fast_without_touching_the_network() {
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = dead.local_addr().unwrap().port();
        drop(dead);

        let client = fast_client(&format!("127.0.0.1:{port}"))
            .with_retries(0)
            .with_breaker_threshold(1)
            .with_probe_every(1000);
        assert!(client.ping().is_err());
        let start = std::time::Instant::now();
        for _ in 0..50 {
            assert!(matches!(
                client.ping().unwrap_err(),
                RemoteError::CircuitOpen { .. }
            ));
        }
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "fail-fast ops must not hit the connect timeout"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let client = RemoteStore::connect("127.0.0.1:1")
            .with_backoff_base(Duration::from_millis(10))
            .with_seed(42);
        let again = RemoteStore::connect("127.0.0.1:1")
            .with_backoff_base(Duration::from_millis(10))
            .with_seed(42);
        for attempt in 1..=4 {
            assert_eq!(client.backoff(3, attempt), again.backoff(3, attempt));
        }
        // Jitter is bounded to [0.5, 1.5]× the exponential schedule, so
        // attempt n+2 always outgrows attempt n.
        assert!(client.backoff(3, 3) > client.backoff(3, 1));
        assert!(client.backoff(3, 4) > client.backoff(3, 2));
        let other = RemoteStore::connect("127.0.0.1:1")
            .with_backoff_base(Duration::from_millis(10))
            .with_seed(43);
        assert_ne!(
            (1..=4).map(|a| client.backoff(3, a)).collect::<Vec<_>>(),
            (1..=4).map(|a| other.backoff(3, a)).collect::<Vec<_>>(),
            "different seeds give different jitter streams"
        );
    }
}
